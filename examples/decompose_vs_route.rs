//! Route-then-decompose vs colour-aware routing on one ISPD-2019-like case —
//! one row of Table III of the paper.
//!
//! ```bash
//! cargo run --release --example decompose_vs_route [case-index] [scale]
//! ```

use mr_tpl::decompose::{DecomposeConfig, Decomposer};
use mr_tpl::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let case_idx: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let scale: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1.0);

    let params = if (scale - 1.0).abs() < f64::EPSILON {
        CaseParams::ispd19_like(case_idx)
    } else {
        CaseParams::ispd19_like(case_idx).scaled(scale)
    };
    let design = params.generate();
    let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);

    println!("case {} ({} nets)", design.name(), design.nets().len());

    // Baseline: colour-blind routing followed by layout decomposition.
    let routed = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);
    let decomposed =
        Decomposer::new(DecomposeConfig::default()).decompose(&design, &routed.solution);
    println!(
        "route-then-decompose: conflicts {:5}  stitches {:5}  ({} features, {} graph edges)",
        decomposed.stats.conflicts,
        decomposed.stats.stitches,
        decomposed.stats.features,
        decomposed.stats.edges
    );

    // Mr.TPL: colours are decided during routing.
    let ours = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
    println!(
        "Mr.TPL              : conflicts {:5}  stitches {:5}",
        ours.stats.conflicts, ours.stats.stitches
    );
}
