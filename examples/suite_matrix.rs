//! Fan a method × case matrix over worker threads with the `tpl-harness`
//! scheduler and print both the per-job records and the JSON report.
//!
//! ```bash
//! cargo run --release --example suite_matrix [case-index] [scale]
//! ```
//!
//! Runs the Table II method pairing (DAC'12 baseline vs Mr.TPL) on the given
//! case of both ISPD-like suites with two workers — the smallest end-to-end
//! tour of the execution engine behind `mrtpl-bench`.

use mr_tpl::harness::{run_matrix, InputProvenance, MethodRegistry, RunOptions, RunReport};
use mr_tpl::ispd::{run_suite, Suite};

fn main() {
    let mut args = std::env::args().skip(1);
    let case_idx: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .filter(|i| (1..=10).contains(i))
        .unwrap_or(1);
    let scale: f64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .filter(|s: &f64| s.is_finite() && *s > 0.0)
        .unwrap_or(0.5);

    let registry = MethodRegistry::builtin();
    let methods = registry.select("dac12,mrtpl").expect("built-in methods");
    let mut cases = run_suite(Suite::Ispd18, &[case_idx], scale);
    cases.extend(run_suite(Suite::Ispd19, &[case_idx], scale));

    let options = RunOptions {
        jobs: 2,
        ..RunOptions::default()
    };
    let records = run_matrix(&methods, &cases, &options);

    println!("{} jobs over {} workers:", records.len(), options.jobs);
    for job in &records {
        match job.record() {
            Some(r) => println!(
                "  {:<28} {:<8} conflicts {:4}  stitches {:4}  cost {:.4e}  {:.2}s",
                job.case, job.method, r.conflicts, r.stitches, r.cost, r.runtime_seconds
            ),
            None => println!(
                "  {:<28} {:<8} FAILED: {}",
                job.case,
                job.method,
                job.error().unwrap_or("?")
            ),
        }
    }

    let report = RunReport {
        suite: "ispd18+ispd19".to_string(),
        input: InputProvenance::Synthetic,
        scale,
        jobs: options.jobs,
        net_jobs: options.net_jobs,
        deterministic: options.deterministic,
        methods: methods.iter().map(|m| m.name().to_string()).collect(),
        records,
    };
    println!("\nJSON report:\n{}", report.to_json());
}
