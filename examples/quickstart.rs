//! Quickstart: generate a benchmark, run global routing, run Mr.TPL, print
//! the headline metrics.
//!
//! ```bash
//! cargo run --release --example quickstart [case-index] [scale]
//! ```

use mr_tpl::prelude::*;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let case_idx: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let scale: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1.0);

    // 1. Generate a synthetic ISPD-2018-like benchmark case.
    let params = if (scale - 1.0).abs() < f64::EPSILON {
        CaseParams::ispd18_like(case_idx)
    } else {
        CaseParams::ispd18_like(case_idx).scaled(scale)
    };
    let design = params.generate();
    let stats = design.stats();
    println!("case            : {}", design.name());
    println!(
        "die             : {} x {} dbu, {} layers",
        design.die().width(),
        design.die().height(),
        stats.num_layers
    );
    println!(
        "nets            : {} ({} multi-pin, max {} pins)",
        stats.num_nets, stats.multi_pin_nets, stats.max_pins_per_net
    );

    // 2. Global routing produces route guides.
    let t0 = Instant::now();
    let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
    println!(
        "global routing  : {} guide regions in {:.2}s",
        guides.total_regions(),
        t0.elapsed().as_secs_f64()
    );

    // 3. Mr.TPL: triple-patterning-aware detailed routing of multi-pin nets.
    let t1 = Instant::now();
    let result = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
    let elapsed = t1.elapsed().as_secs_f64();

    println!("detailed routing: {:.2}s", elapsed);
    println!("wirelength      : {}", result.solution.total_wirelength());
    println!("vias            : {}", result.solution.total_vias());
    println!("color conflicts : {}", result.stats.conflicts);
    println!("stitches        : {}", result.stats.stitches);
    println!("failed nets     : {}", result.stats.failed_nets);
    println!("rrr iterations  : {}", result.stats.rrr_iterations);
}
