//! Diagnostic example: break the colour conflicts of a Mr.TPL run down by
//! feature kind (wire-wire, wire-pin, pin-pin) and by layer.
//!
//! ```bash
//! cargo run --release --example conflict_breakdown [case-index] [scale]
//! ```

use mr_tpl::color::FeatureKind;
use mr_tpl::prelude::*;

fn kind_name(kind: FeatureKind) -> &'static str {
    match kind {
        FeatureKind::Wire => "wire",
        FeatureKind::Pin => "pin",
        FeatureKind::Obstacle => "obstacle",
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let case_idx: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let scale: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1.0);

    let params = if (scale - 1.0).abs() < f64::EPSILON {
        CaseParams::ispd18_like(case_idx)
    } else {
        CaseParams::ispd18_like(case_idx).scaled(scale)
    };
    let design = params.generate();
    let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
    let result = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);

    println!(
        "case {}: {} conflicts, {} stitches",
        design.name(),
        result.stats.conflicts,
        result.stats.stitches
    );
    println!("conflict history : {:?}", result.stats.conflict_history);

    let features = result.layout.features();
    let mut by_kind: std::collections::BTreeMap<(String, String), usize> = Default::default();
    let mut by_layer: std::collections::BTreeMap<usize, usize> = Default::default();
    for c in result.layout.conflicts() {
        let mut kinds = [
            kind_name(features[c.a].kind).to_string(),
            kind_name(features[c.b].kind).to_string(),
        ];
        kinds.sort();
        *by_kind
            .entry((kinds[0].clone(), kinds[1].clone()))
            .or_default() += 1;
        *by_layer.entry(c.layer.index()).or_default() += 1;
    }
    println!("-- by feature kind --");
    for ((a, b), n) in &by_kind {
        println!("  {a:>8} / {b:<8} : {n}");
    }
    println!("-- by layer --");
    for (layer, n) in &by_layer {
        println!("  M{:<2} : {n}", layer + 1);
    }
}
