//! A narrated reproduction of Fig. 3 of the paper: routing a single 4-pin net
//! with Mr.TPL next to two pre-coloured neighbour wires (mask 2 and mask 3),
//! showing how the colour state evolves and where the final masks land.
//!
//! ```bash
//! cargo run --release --example fig3_walkthrough
//! ```

use mr_tpl::color::{ColorMap, ColorState, Feature, Mask};
use mr_tpl::core::{backtrace, search, ColorCostCache, MrTplConfig, NetBuffers, SearchContext};
use mr_tpl::design::{DesignBuilder, LayerId, NetId, RouteGuides, Technology};
use mr_tpl::geom::Rect;
use mr_tpl::grid::{DenseBitSet, GridGraph, GridState, PinCoverage};
use tpl_color::ColorSetArena;

fn main() {
    // A small layout mirroring Fig. 3: a 4-pin net (pins 1..4) that must be
    // routed while two already-coloured wires (mask 2 = green, mask 3 = blue)
    // run through the middle of its bounding box.
    let tech = Technology::ispd_like(2);
    let mut builder = DesignBuilder::new("fig3", tech, Rect::from_coords(0, 0, 400, 400));
    let p1 = builder.add_pin_shape("pin1", 0, Rect::from_coords(26, 306, 34, 314));
    let p2 = builder.add_pin_shape("pin2", 0, Rect::from_coords(26, 106, 34, 114));
    let p3 = builder.add_pin_shape("pin3", 0, Rect::from_coords(346, 306, 354, 314));
    let p4 = builder.add_pin_shape("pin4", 0, Rect::from_coords(346, 106, 354, 114));
    let net = builder.add_net("fig3_net", vec![p1, p2, p3, p4]);
    let design = builder.build().expect("valid design");

    let grid = GridGraph::build(&design);
    let gstate = GridState::new(&grid, &design);
    let coverage = PinCoverage::build(&grid, &design);
    let mut map = ColorMap::new(design.die(), 2, design.tech().dcolor());

    // The two pre-coloured neighbour wires of Fig. 3 (mask 2 and mask 3).
    // They run across the middle of the net's bounding box on both routing
    // layers, so any connection between the upper and lower pins has to pass
    // within `Dcolor` of them and the colour state is forced to narrow.
    for layer in [0u32, 1u32] {
        map.insert(Feature::wire(
            NetId::new(7),
            LayerId::new(layer),
            Rect::from_coords(80, 196, 400, 204),
            Some(Mask::Green),
        ));
        map.insert(Feature::wire(
            NetId::new(8),
            LayerId::new(layer),
            Rect::from_coords(0, 236, 320, 244),
            Some(Mask::Blue),
        ));
    }

    let config = MrTplConfig::default();
    let guides = RouteGuides::new(design.nets().len());
    let in_guide = DenseBitSet::full(grid.num_vertices());
    let ctx = SearchContext {
        grid: &grid,
        state: &gstate,
        coverage: &coverage,
        design: &design,
        config: &config,
        net,
        in_guide: &in_guide,
        map: &map,
    };
    let _ = &guides;

    let mut buffers = NetBuffers::new(grid.num_vertices());
    let mut cache = ColorCostCache::new(&grid);
    let mut arena = ColorSetArena::new();
    buffers.begin_net();
    cache.begin_net();

    println!("Fig. 3 walkthrough: routing the 4-pin net\n");
    println!("step 0: seed the queue with the vertices covered by pin1, color state 111");

    let mut tree: Vec<_> = coverage.vertices(p1).to_vec();
    let mut unreached = vec![p2, p3, p4];
    let mut step = 1;
    while !unreached.is_empty() {
        let sources: Vec<_> = tree
            .iter()
            .map(|&v| {
                let state = buffers
                    .ver_set(v)
                    .map(|vs| arena.seg_state(arena.seg_of(vs)))
                    .unwrap_or_else(ColorState::all);
                (v, state)
            })
            .collect();
        let Some((dst, pin)) = search(&ctx, &mut buffers, &mut cache, &sources, &unreached) else {
            println!("  no path found — layout infeasible");
            break;
        };
        let reached_state = buffers.state(dst);
        let path = backtrace(&mut buffers, &mut arena, dst);
        println!(
            "step {step}: reached {} — color state at the pin is {} ({} candidate mask{})",
            design.pin(pin).name(),
            reached_state,
            reached_state.len(),
            if reached_state.len() == 1 { "" } else { "s" }
        );
        let seg = arena.seg_of(buffers.ver_set(dst).expect("on path"));
        println!(
            "         backtrace groups {} vertices; segment color-set state is now {}",
            path.len(),
            arena.seg_state(seg)
        );
        for &v in &path {
            if !tree.contains(&v) {
                tree.push(v);
            }
        }
        unreached.retain(|p| *p != pin);
        step += 1;
    }

    // Final mask decision per segSet.
    println!("\nfinal layout (like Fig. 3(g)):");
    let mut seen = std::collections::BTreeSet::new();
    for &v in &tree {
        if let Some(vs) = buffers.ver_set(v) {
            let seg = arena.seg_of(vs);
            if seen.insert(seg) {
                let state = arena.seg_state(seg);
                let mask = state.first().unwrap_or(Mask::Red);
                println!(
                    "  segment color-set {:?}: state {} -> printed on mask {} ",
                    seg, state, mask
                );
            }
        }
    }
    println!("\nneighbour wires keep mask 2 (green) and mask 3 (blue); the routed net");
    println!("split into segment color-sets exactly where the colour state had to change,");
    println!("which is where the paper's Fig. 3 introduces its stitch.");
}
