//! Compare Mr.TPL against the DAC'12 TPL-aware baseline on one case.
//!
//! ```bash
//! cargo run --release --example compare_methods [case-index] [scale]
//! ```
//!
//! Prints conflicts, stitches, ISPD cost and runtime for both routers — one
//! row of Table II of the paper.

use mr_tpl::dac12::{Dac12Config, Dac12Router};
use mr_tpl::ispd::{score_solution, ScoreWeights};
use mr_tpl::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let case_idx: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let scale: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1.0);

    let params = if (scale - 1.0).abs() < f64::EPSILON {
        CaseParams::ispd18_like(case_idx)
    } else {
        CaseParams::ispd18_like(case_idx).scaled(scale)
    };
    let design = params.generate();
    let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
    let weights = ScoreWeights::default();

    println!("case {} ({} nets)", design.name(), design.nets().len());

    let dac = Dac12Router::new(Dac12Config::default()).route(&design, &guides);
    let dac_cost = score_solution(&design, &guides, &dac.solution, &weights);
    println!(
        "DAC'12 baseline : conflicts {:5}  stitches {:5}  cost {:.4e}  runtime {:.2}s",
        dac.stats.conflicts,
        dac.stats.stitches,
        dac_cost.total(),
        dac.stats.runtime_seconds
    );

    let ours = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
    let ours_cost = score_solution(&design, &guides, &ours.solution, &weights);
    println!(
        "Mr.TPL          : conflicts {:5}  stitches {:5}  cost {:.4e}  runtime {:.2}s",
        ours.stats.conflicts,
        ours.stats.stitches,
        ours_cost.total(),
        ours.stats.runtime_seconds
    );
    if ours.stats.runtime_seconds > 0.0 {
        println!(
            "speedup         : {:.2}x",
            dac.stats.runtime_seconds / ours.stats.runtime_seconds
        );
    }
}
