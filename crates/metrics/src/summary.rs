//! Per-case records and suite-level summaries.

use tpl_grid::Outcome;

/// The evaluation record of one benchmark case for one method.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CaseRecord {
    /// Case name.
    pub case: String,
    /// Colour conflicts.
    pub conflicts: usize,
    /// Stitches.
    pub stitches: usize,
    /// ISPD-style routing cost.
    pub cost: f64,
    /// Wall-clock runtime in seconds.
    pub runtime_seconds: f64,
    /// Total routed wirelength in database units.
    pub wirelength: i64,
    /// Total via count.
    pub vias: usize,
    /// Total search-graph nodes popped (search effort; `0` for methods that
    /// do not run a graph search).  Unlike `runtime_seconds` this counter is
    /// machine- and worker-count-independent, which is what the committed
    /// perf baselines regress against.
    pub search_nodes: usize,
    /// Rip-up-and-reroute iterations executed (`0` for single-pass methods).
    pub rrr_iterations: usize,
    /// How the routing run ended: `Complete` (the default), `Degraded` after
    /// a search-node budget trip (the record then describes a best-so-far
    /// partial solution), or `Aborted` on deadline/cancellation.
    pub outcome: Outcome,
}

/// Relative improvement of `ours` over `baseline`, in percent.
///
/// Matches the paper's convention: positive means `ours` is smaller (better).
/// When the baseline is zero the improvement is reported as zero (the paper
/// marks those entries "zero / no comparison").
pub fn improvement_percent(baseline: f64, ours: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - ours) / baseline * 100.0
    }
}

/// Baseline/ours runtime ratio, guarding against a zero denominator.
pub fn safe_speedup(baseline_seconds: f64, ours_seconds: f64) -> f64 {
    if ours_seconds <= 0.0 {
        0.0
    } else {
        baseline_seconds / ours_seconds
    }
}

/// Column-wise totals of a whole suite for one method, the "sum" half of the
/// paper's "Average" row.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SuiteTotals {
    /// Number of cases summed.
    pub cases: usize,
    /// Total colour conflicts.
    pub conflicts: usize,
    /// Total stitches.
    pub stitches: usize,
    /// Total ISPD-style cost.
    pub cost: f64,
    /// Total wall-clock runtime in seconds.
    pub runtime_seconds: f64,
    /// Total routed wirelength in database units.
    pub wirelength: i64,
    /// Total via count.
    pub vias: usize,
    /// Total search-graph nodes popped.
    pub search_nodes: usize,
    /// Total rip-up-and-reroute iterations.
    pub rrr_iterations: usize,
}

impl SuiteTotals {
    /// Sums the records of one method over a suite.
    pub fn from_records(records: &[CaseRecord]) -> SuiteTotals {
        let mut totals = SuiteTotals {
            cases: records.len(),
            ..SuiteTotals::default()
        };
        for r in records {
            totals.conflicts += r.conflicts;
            totals.stitches += r.stitches;
            totals.cost += r.cost;
            totals.runtime_seconds += r.runtime_seconds;
            totals.wirelength += r.wirelength;
            totals.vias += r.vias;
            totals.search_nodes += r.search_nodes;
            totals.rrr_iterations += r.rrr_iterations;
        }
        totals
    }
}

/// Geometric-mean runtime ratio `baseline / ours` over paired records, the
/// way the paper's "Average" row aggregates speedups.
///
/// Pairs where either runtime is non-positive are skipped (a zero wall-clock
/// has no meaningful ratio); if no pair remains the result is `0.0`, matching
/// the zero-baseline convention of [`improvement_percent`].
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn geomean_speedup(baseline: &[CaseRecord], ours: &[CaseRecord]) -> f64 {
    assert_eq!(baseline.len(), ours.len(), "paired records required");
    let ratios: Vec<f64> = baseline
        .iter()
        .zip(ours.iter())
        .filter(|(b, o)| b.runtime_seconds > 0.0 && o.runtime_seconds > 0.0)
        .map(|(b, o)| (b.runtime_seconds / o.runtime_seconds).ln())
        .collect();
    if ratios.is_empty() {
        0.0
    } else {
        (ratios.iter().sum::<f64>() / ratios.len() as f64).exp()
    }
}

/// Aggregate of a whole suite: average improvements over all cases where the
/// baseline has data, exactly like the `avg.` row of the paper's tables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SuiteSummary {
    /// Mean baseline conflicts.
    pub baseline_conflicts: f64,
    /// Mean conflicts of our method.
    pub ours_conflicts: f64,
    /// Mean conflict improvement in percent (over cases with a non-zero
    /// baseline).
    pub conflict_improvement: f64,
    /// Mean baseline stitches.
    pub baseline_stitches: f64,
    /// Mean stitches of our method.
    pub ours_stitches: f64,
    /// Mean stitch improvement in percent.
    pub stitch_improvement: f64,
    /// Mean cost improvement in percent.
    pub cost_improvement: f64,
    /// Mean speedup (baseline runtime / ours).
    pub speedup: f64,
    /// Geometric-mean speedup over cases where both runtimes are positive.
    pub geomean_speedup: f64,
}

impl SuiteSummary {
    /// Builds the summary from paired per-case records (same order).
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    pub fn from_records(baseline: &[CaseRecord], ours: &[CaseRecord]) -> SuiteSummary {
        assert_eq!(baseline.len(), ours.len(), "paired records required");
        let n = baseline.len().max(1) as f64;
        let mean = |f: &dyn Fn(&CaseRecord) -> f64, records: &[CaseRecord]| {
            records.iter().map(f).sum::<f64>() / n
        };
        let avg_improvement = |f: &dyn Fn(&CaseRecord) -> f64| {
            let pairs: Vec<(f64, f64)> = baseline
                .iter()
                .zip(ours.iter())
                .map(|(b, o)| (f(b), f(o)))
                .filter(|(b, _)| *b > 0.0)
                .collect();
            if pairs.is_empty() {
                0.0
            } else {
                pairs
                    .iter()
                    .map(|(b, o)| improvement_percent(*b, *o))
                    .sum::<f64>()
                    / pairs.len() as f64
            }
        };
        let avg_speedup = {
            let pairs: Vec<f64> = baseline
                .iter()
                .zip(ours.iter())
                .filter(|(b, o)| b.runtime_seconds > 0.0 && o.runtime_seconds > 0.0)
                .map(|(b, o)| safe_speedup(b.runtime_seconds, o.runtime_seconds))
                .collect();
            if pairs.is_empty() {
                0.0
            } else {
                pairs.iter().sum::<f64>() / pairs.len() as f64
            }
        };
        SuiteSummary {
            baseline_conflicts: mean(&|r| r.conflicts as f64, baseline),
            ours_conflicts: mean(&|r| r.conflicts as f64, ours),
            conflict_improvement: avg_improvement(&|r| r.conflicts as f64),
            baseline_stitches: mean(&|r| r.stitches as f64, baseline),
            ours_stitches: mean(&|r| r.stitches as f64, ours),
            stitch_improvement: avg_improvement(&|r| r.stitches as f64),
            cost_improvement: avg_improvement(&|r| r.cost),
            speedup: avg_speedup,
            geomean_speedup: geomean_speedup(baseline, ours),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(case: &str, conflicts: usize, stitches: usize, cost: f64, rt: f64) -> CaseRecord {
        CaseRecord {
            case: case.into(),
            conflicts,
            stitches,
            cost,
            runtime_seconds: rt,
            ..CaseRecord::default()
        }
    }

    #[test]
    fn improvement_follows_paper_convention() {
        assert_eq!(improvement_percent(100.0, 20.0), 80.0);
        assert_eq!(improvement_percent(0.0, 5.0), 0.0);
        assert_eq!(improvement_percent(50.0, 50.0), 0.0);
        assert!(improvement_percent(10.0, 20.0) < 0.0);
    }

    #[test]
    fn speedup_guards_zero_division() {
        assert_eq!(safe_speedup(10.0, 2.0), 5.0);
        assert_eq!(safe_speedup(10.0, 0.0), 0.0);
    }

    #[test]
    fn suite_summary_averages_match_hand_computation() {
        let baseline = vec![
            rec("t1", 10, 100, 1000.0, 10.0),
            rec("t2", 0, 50, 2000.0, 20.0),
        ];
        let ours = vec![rec("t1", 5, 25, 900.0, 2.0), rec("t2", 0, 10, 1900.0, 4.0)];
        let s = SuiteSummary::from_records(&baseline, &ours);
        assert_eq!(s.baseline_conflicts, 5.0);
        assert_eq!(s.ours_conflicts, 2.5);
        // Only t1 has a non-zero conflict baseline: 50% improvement.
        assert_eq!(s.conflict_improvement, 50.0);
        // Stitches: (75% + 80%) / 2.
        assert!((s.stitch_improvement - 77.5).abs() < 1e-9);
        assert_eq!(s.speedup, 5.0);
        assert!(s.cost_improvement > 0.0);
    }

    #[test]
    #[should_panic(expected = "paired records")]
    fn summary_requires_paired_records() {
        SuiteSummary::from_records(&[], &[rec("x", 0, 0, 0.0, 0.0)]);
    }

    #[test]
    fn zero_baseline_reports_zero_improvement_regardless_of_ours() {
        // The paper marks zero-baseline entries "no comparison": the
        // improvement is 0 whether ours is also zero, better-than-nothing
        // impossible, or strictly worse.
        assert_eq!(improvement_percent(0.0, 0.0), 0.0);
        assert_eq!(improvement_percent(0.0, 1.0), 0.0);
        assert_eq!(improvement_percent(0.0, 1.0e9), 0.0);
        // A non-zero baseline with a zero ours is a full 100% improvement.
        assert_eq!(improvement_percent(7.0, 0.0), 100.0);
    }

    #[test]
    fn all_zero_baselines_yield_zero_suite_improvement() {
        let baseline = vec![rec("t1", 0, 0, 0.0, 0.0), rec("t2", 0, 0, 0.0, 0.0)];
        let ours = vec![rec("t1", 3, 1, 5.0, 1.0), rec("t2", 4, 2, 6.0, 1.0)];
        let s = SuiteSummary::from_records(&baseline, &ours);
        assert_eq!(s.conflict_improvement, 0.0);
        assert_eq!(s.stitch_improvement, 0.0);
        assert_eq!(s.cost_improvement, 0.0);
        assert_eq!(s.speedup, 0.0);
        assert_eq!(s.geomean_speedup, 0.0);
    }

    #[test]
    fn totals_sum_every_column() {
        let mut a = rec("t1", 2, 10, 100.0, 1.5);
        a.wirelength = 1000;
        a.vias = 7;
        a.search_nodes = 500;
        a.rrr_iterations = 1;
        let mut b = rec("t2", 3, 20, 200.0, 2.5);
        b.wirelength = 2000;
        b.vias = 13;
        b.search_nodes = 700;
        b.rrr_iterations = 2;
        let t = SuiteTotals::from_records(&[a, b]);
        assert_eq!(
            t,
            SuiteTotals {
                cases: 2,
                conflicts: 5,
                stitches: 30,
                cost: 300.0,
                runtime_seconds: 4.0,
                wirelength: 3000,
                vias: 20,
                search_nodes: 1200,
                rrr_iterations: 3,
            }
        );
        assert_eq!(SuiteTotals::from_records(&[]), SuiteTotals::default());
    }

    #[test]
    fn geomean_speedup_is_the_geometric_mean_of_ratios() {
        let baseline = vec![rec("t1", 0, 0, 0.0, 8.0), rec("t2", 0, 0, 0.0, 2.0)];
        let ours = vec![rec("t1", 0, 0, 0.0, 2.0), rec("t2", 0, 0, 0.0, 1.0)];
        // Ratios 4 and 2 -> geomean sqrt(8).
        assert!((geomean_speedup(&baseline, &ours) - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn geomean_speedup_skips_non_positive_runtimes() {
        let baseline = vec![rec("t1", 0, 0, 0.0, 0.0), rec("t2", 0, 0, 0.0, 6.0)];
        let ours = vec![rec("t1", 0, 0, 0.0, 1.0), rec("t2", 0, 0, 0.0, 2.0)];
        assert!((geomean_speedup(&baseline, &ours) - 3.0).abs() < 1e-12);
        // No valid pair at all -> 0, the zero-baseline convention.
        let zeros = vec![rec("t1", 0, 0, 0.0, 0.0)];
        let ones = vec![rec("t1", 0, 0, 0.0, 1.0)];
        assert_eq!(geomean_speedup(&zeros, &ones), 0.0);
    }
}
