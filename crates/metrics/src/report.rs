//! Plain-text table rendering.

/// One row of a rendered table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableRow {
    /// The cells of the row, already formatted.
    pub cells: Vec<String>,
}

impl TableRow {
    /// Creates a row from anything stringly.
    pub fn new<I, S>(cells: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TableRow {
            cells: cells.into_iter().map(Into::into).collect(),
        }
    }
}

/// Renders a header plus rows as an aligned plain-text table.
///
/// # Examples
///
/// ```
/// use tpl_metrics::{format_table, TableRow};
/// let text = format_table(
///     &["case", "conflicts"],
///     &[TableRow::new(["test1", "0"]), TableRow::new(["test2", "12"])],
/// );
/// assert!(text.contains("test2"));
/// ```
pub fn format_table(header: &[&str], rows: &[TableRow]) -> String {
    let num_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.cells.iter().enumerate().take(num_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            out.push_str(&format!("{cell:>width$}  ", width = w));
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    render(&header_cells, &widths, &mut out);
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    render(&sep, &widths, &mut out);
    for row in rows {
        render(&row.cells, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_right_aligned_and_padded() {
        let text = format_table(
            &["case", "value"],
            &[
                TableRow::new(["a", "1"]),
                TableRow::new(["long_case_name", "123456"]),
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("case"));
        assert!(lines[1].starts_with("-"));
        // All lines have equal length (aligned columns).
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width));
    }

    #[test]
    fn missing_cells_render_empty() {
        let text = format_table(&["a", "b"], &[TableRow::new(["only"])]);
        assert!(text.contains("only"));
    }
}
