//! Evaluation metrics and report tables for the Mr.TPL reproduction.
//!
//! The crate turns raw router outputs into the rows of the paper's tables:
//! per-case conflict/stitch/cost/runtime records, improvement percentages and
//! plain-text table rendering used by the `table2`/`table3` binaries of
//! `tpl-bench`.

#![warn(missing_docs)]

mod report;
mod summary;

pub use report::{format_table, TableRow};
pub use summary::{
    geomean_speedup, improvement_percent, safe_speedup, CaseRecord, SuiteSummary, SuiteTotals,
};

use tpl_color::{ColoredLayout, Feature, Mask};
use tpl_design::{Design, NetId, RoutingSolution};

/// Builds a coloured layout from a routing solution plus a per-net,
/// per-segment mask assignment (wires and pins).
///
/// Routers that already maintain an incremental colour map return their own
/// [`ColoredLayout`]; this helper exists for post-hoc colourings (e.g. a
/// decomposition of a colour-blind router's output stored separately).
pub fn layout_from_assignment(
    design: &Design,
    solution: &RoutingSolution,
    segment_masks: &[Vec<Option<Mask>>],
    pin_masks: &dyn Fn(NetId, usize) -> Option<Mask>,
) -> ColoredLayout {
    let mut layout = ColoredLayout::new(
        design.die(),
        design.tech().num_layers(),
        design.tech().dcolor(),
    );
    for (net_id, routed) in solution.iter() {
        for (i, seg) in routed.segments.iter().enumerate() {
            let mask = segment_masks
                .get(net_id.index())
                .and_then(|m| m.get(i))
                .copied()
                .flatten();
            layout.add(Feature::wire(net_id, seg.layer, seg.rect(), mask));
        }
    }
    for pin in design.pins() {
        let net = pin.net();
        for (k, (layer, rect)) in pin.shapes().iter().enumerate() {
            layout.add(Feature::pin(net, *layer, *rect, pin_masks(net, k)));
        }
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_design::{DesignBuilder, LayerId, RouteSegment, RoutedNet, Technology};
    use tpl_geom::{Point, Rect, Segment};

    #[test]
    fn layout_from_assignment_collects_wires_and_pins() {
        let mut b = DesignBuilder::new(
            "m",
            Technology::ispd_like(2),
            Rect::from_coords(0, 0, 400, 400),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(200, 0, 210, 10));
        let net = b.add_net("n", vec![p0, p1]);
        let design = b.build().unwrap();

        let mut sol = RoutingSolution::new(1);
        let mut rn = RoutedNet::new();
        rn.segments.push(RouteSegment::new(
            LayerId::new(0),
            Segment::new(Point::new(5, 5), Point::new(205, 5)),
            8,
        ));
        sol.set(net, rn);
        let masks = vec![vec![Some(Mask::Green)]];
        let layout = layout_from_assignment(&design, &sol, &masks, &|_, _| Some(Mask::Green));
        assert_eq!(layout.features().len(), 3);
        assert_eq!(layout.count_conflicts(), 0);
        assert_eq!(layout.count_stitches(), 0);
    }
}
