//! A dense, word-packed bitset over grid vertices.

/// A fixed-size bitset packed into 64-bit words.
///
/// The routers keep one bit per grid vertex for blockages and per-net guide
/// membership; packing them 64-to-a-word keeps these masks resident in cache
/// while many worker threads read them concurrently, and makes clearing a
/// whole mask a `memset` instead of a per-element loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// Creates a bitset of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bitset of `len` bits, all set.
    pub fn full(len: usize) -> Self {
        let mut set = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        set.clear_tail();
        set
    }

    /// Zeroes the bits of the last partial word beyond `len`.
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the bitset has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Sets every bit.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.clear_tail();
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_clear_round_trip() {
        let mut s = DenseBitSet::new(130);
        assert_eq!(s.len(), 130);
        assert!(!s.get(0) && !s.get(129));
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.get(0) && s.get(64) && s.get(129));
        assert!(!s.get(1) && !s.get(65));
        assert_eq!(s.count_ones(), 3);
        s.remove(64);
        assert!(!s.get(64));
        s.clear_all();
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn full_sets_exactly_len_bits() {
        for len in [0, 1, 63, 64, 65, 128, 200] {
            let s = DenseBitSet::full(len);
            assert_eq!(s.count_ones(), len, "len = {len}");
            let mut t = DenseBitSet::new(len);
            t.set_all();
            assert_eq!(t, s);
        }
        assert!(DenseBitSet::new(0).is_empty());
    }
}
