//! The immutable routing grid graph.

use tpl_design::{Design, LayerId};
use tpl_geom::{Axis, Dbu, Dir, Point, Rect};

/// Dense identifier of a grid vertex.
///
/// Vertices are numbered layer-major, then row-major
/// (`id = layer * nx * ny + iy * nx + ix`), so a `Vec` indexed by
/// [`VertexId::index`] is the natural per-vertex storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Creates a vertex id from its raw value.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw value as a dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The uniform 3-D routing grid built from a design.
///
/// Every layer shares the same x/y track sets (the canonical technology has a
/// single pitch), so a vertex exists at each track crossing of each layer and
/// vias connect vertically aligned vertices of adjacent layers.
#[derive(Clone, Debug)]
pub struct GridGraph {
    num_layers: usize,
    nx: usize,
    ny: usize,
    pitch: Dbu,
    x0: Dbu,
    y0: Dbu,
    die: Rect,
    layer_axes: Vec<Axis>,
    wire_widths: Vec<Dbu>,
}

impl GridGraph {
    /// Builds the grid for a design.
    ///
    /// # Panics
    ///
    /// Panics if the die is too small to hold a single track in either axis.
    pub fn build(design: &Design) -> Self {
        let tech = design.tech();
        let die = design.die();
        let pitch = tech.layers()[0].pitch;
        let offset = tech.layers()[0].offset;
        let x0 = die.lo.x + offset;
        let y0 = die.lo.y + offset;
        let nx = ((die.hi.x - x0) / pitch + 1).max(0) as usize;
        let ny = ((die.hi.y - y0) / pitch + 1).max(0) as usize;
        assert!(nx > 0 && ny > 0, "die {die} holds no tracks");
        GridGraph {
            num_layers: tech.num_layers(),
            nx,
            ny,
            pitch,
            x0,
            y0,
            die,
            layer_axes: tech.layers().iter().map(|l| l.axis).collect(),
            wire_widths: tech.layers().iter().map(|l| l.width).collect(),
        }
    }

    /// Number of layers.
    #[inline]
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Number of x track positions (vertical track lines).
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of y track positions (horizontal track lines).
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_layers * self.nx * self.ny
    }

    /// The track pitch.
    #[inline]
    pub fn pitch(&self) -> Dbu {
        self.pitch
    }

    /// The die the grid covers.
    #[inline]
    pub fn die(&self) -> Rect {
        self.die
    }

    /// The preferred axis of a layer.
    #[inline]
    pub fn layer_axis(&self, layer: LayerId) -> Axis {
        self.layer_axes[layer.index()]
    }

    /// The default wire width of a layer.
    #[inline]
    pub fn wire_width(&self, layer: LayerId) -> Dbu {
        self.wire_widths[layer.index()]
    }

    /// Builds a vertex id from its grid coordinates.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the coordinates are out of range.
    #[inline]
    pub fn vertex(&self, layer: usize, ix: usize, iy: usize) -> VertexId {
        debug_assert!(layer < self.num_layers && ix < self.nx && iy < self.ny);
        VertexId::new((layer * self.nx * self.ny + iy * self.nx + ix) as u32)
    }

    /// Decomposes a vertex id into `(layer, ix, iy)`.
    #[inline]
    pub fn coords(&self, v: VertexId) -> (usize, usize, usize) {
        let per_layer = self.nx * self.ny;
        let layer = v.index() / per_layer;
        let rem = v.index() % per_layer;
        (layer, rem % self.nx, rem / self.nx)
    }

    /// The layer of a vertex.
    #[inline]
    pub fn layer_of(&self, v: VertexId) -> LayerId {
        LayerId::from(self.coords(v).0)
    }

    /// The physical location of a vertex.
    #[inline]
    pub fn point_of(&self, v: VertexId) -> Point {
        let (_, ix, iy) = self.coords(v);
        Point::new(
            self.x0 + ix as Dbu * self.pitch,
            self.y0 + iy as Dbu * self.pitch,
        )
    }

    /// The x coordinate of track `ix`.
    #[inline]
    pub fn x_of(&self, ix: usize) -> Dbu {
        self.x0 + ix as Dbu * self.pitch
    }

    /// The y coordinate of track `iy`.
    #[inline]
    pub fn y_of(&self, iy: usize) -> Dbu {
        self.y0 + iy as Dbu * self.pitch
    }

    /// The nearest track index to coordinate `x` (clamped to the grid).
    #[inline]
    pub fn ix_near(&self, x: Dbu) -> usize {
        let raw = (x - self.x0 + self.pitch / 2).div_euclid(self.pitch);
        raw.clamp(0, self.nx as Dbu - 1) as usize
    }

    /// The nearest track index to coordinate `y` (clamped to the grid).
    #[inline]
    pub fn iy_near(&self, y: Dbu) -> usize {
        let raw = (y - self.y0 + self.pitch / 2).div_euclid(self.pitch);
        raw.clamp(0, self.ny as Dbu - 1) as usize
    }

    /// The neighbouring vertex in direction `dir`, if it exists.
    #[inline]
    pub fn neighbor(&self, v: VertexId, dir: Dir) -> Option<VertexId> {
        let (layer, ix, iy) = self.coords(v);
        match dir {
            Dir::East => (ix + 1 < self.nx).then(|| self.vertex(layer, ix + 1, iy)),
            Dir::West => (ix > 0).then(|| self.vertex(layer, ix - 1, iy)),
            Dir::North => (iy + 1 < self.ny).then(|| self.vertex(layer, ix, iy + 1)),
            Dir::South => (iy > 0).then(|| self.vertex(layer, ix, iy - 1)),
            Dir::Up => (layer + 1 < self.num_layers).then(|| self.vertex(layer + 1, ix, iy)),
            Dir::Down => (layer > 0).then(|| self.vertex(layer - 1, ix, iy)),
        }
    }

    /// Iterates over all `(dir, neighbor)` pairs of a vertex.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (Dir, VertexId)> + '_ {
        Dir::ALL
            .into_iter()
            .filter_map(move |d| self.neighbor(v, d).map(|n| (d, n)))
    }

    /// `true` when moving from a vertex in `dir` runs against the preferred
    /// axis of its layer.
    #[inline]
    pub fn is_wrong_way(&self, v: VertexId, dir: Dir) -> bool {
        match dir.axis() {
            Some(axis) => axis != self.layer_axes[self.coords(v).0],
            None => false,
        }
    }

    /// All vertices (on every layer present in `layers`) whose point lies
    /// within `rect` expanded by half a pitch.
    pub fn vertices_in_rect(&self, layer: LayerId, rect: &Rect) -> Vec<VertexId> {
        let halo = self.pitch / 2;
        let r = rect.expanded(halo);
        let ix_lo = self.ix_near(r.lo.x);
        let ix_hi = self.ix_near(r.hi.x);
        let iy_lo = self.iy_near(r.lo.y);
        let iy_hi = self.iy_near(r.hi.y);
        let mut out = Vec::new();
        for iy in iy_lo..=iy_hi {
            for ix in ix_lo..=ix_hi {
                let p = Point::new(self.x_of(ix), self.y_of(iy));
                if r.contains(&p) {
                    out.push(self.vertex(layer.index(), ix, iy));
                }
            }
        }
        out
    }

    /// Iterates over every vertex id.
    pub fn iter_vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices() as u32).map(VertexId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_design::{DesignBuilder, Technology};

    fn grid() -> GridGraph {
        let mut b = DesignBuilder::new(
            "g",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 200, 200),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(150, 150, 160, 160));
        b.add_net("n", vec![p0, p1]);
        GridGraph::build(&b.build().unwrap())
    }

    #[test]
    fn grid_dimensions_follow_die_and_pitch() {
        let g = grid();
        // Die 200 wide, offset 10, pitch 20 -> tracks at 10,30,...,190 = 10.
        assert_eq!(g.nx(), 10);
        assert_eq!(g.ny(), 10);
        assert_eq!(g.num_layers(), 3);
        assert_eq!(g.num_vertices(), 300);
    }

    #[test]
    fn vertex_roundtrip_and_point() {
        let g = grid();
        let v = g.vertex(2, 3, 4);
        assert_eq!(g.coords(v), (2, 3, 4));
        assert_eq!(g.layer_of(v), LayerId::new(2));
        assert_eq!(g.point_of(v), Point::new(10 + 3 * 20, 10 + 4 * 20));
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let g = grid();
        let corner = g.vertex(0, 0, 0);
        let dirs: Vec<Dir> = g.neighbors(corner).map(|(d, _)| d).collect();
        assert!(dirs.contains(&Dir::East));
        assert!(dirs.contains(&Dir::North));
        assert!(dirs.contains(&Dir::Up));
        assert!(!dirs.contains(&Dir::West));
        assert!(!dirs.contains(&Dir::South));
        assert!(!dirs.contains(&Dir::Down));

        let top = g.vertex(2, 9, 9);
        let dirs: Vec<Dir> = g.neighbors(top).map(|(d, _)| d).collect();
        assert!(!dirs.contains(&Dir::Up));
        assert!(!dirs.contains(&Dir::East));
        assert!(!dirs.contains(&Dir::North));
    }

    #[test]
    fn neighbor_is_inverse_of_opposite() {
        let g = grid();
        for v in [g.vertex(1, 5, 5), g.vertex(0, 0, 9), g.vertex(2, 9, 0)] {
            for (d, n) in g.neighbors(v) {
                assert_eq!(g.neighbor(n, d.opposite()), Some(v));
            }
        }
    }

    #[test]
    fn wrong_way_detection_follows_layer_axis() {
        let g = grid();
        // Layer 0 is horizontal: east/west are preferred, north/south wrong.
        let v = g.vertex(0, 5, 5);
        assert!(!g.is_wrong_way(v, Dir::East));
        assert!(g.is_wrong_way(v, Dir::North));
        // Layer 1 is vertical.
        let v1 = g.vertex(1, 5, 5);
        assert!(g.is_wrong_way(v1, Dir::East));
        assert!(!g.is_wrong_way(v1, Dir::South));
        // Vias are never wrong-way.
        assert!(!g.is_wrong_way(v, Dir::Up));
    }

    #[test]
    fn nearest_track_lookup_clamps() {
        let g = grid();
        assert_eq!(g.ix_near(-100), 0);
        assert_eq!(g.ix_near(10), 0);
        assert_eq!(g.ix_near(29), 1);
        assert_eq!(g.ix_near(10_000), g.nx() - 1);
    }

    #[test]
    fn vertices_in_rect_cover_pin_shapes() {
        let g = grid();
        // Pin at (0,0)-(10,10) covers the track crossing at (10,10).
        let vs = g.vertices_in_rect(LayerId::new(0), &Rect::from_coords(0, 0, 10, 10));
        assert!(vs.contains(&g.vertex(0, 0, 0)));
        // A large rect covers many vertices.
        let vs = g.vertices_in_rect(LayerId::new(1), &Rect::from_coords(0, 0, 60, 60));
        assert!(vs.len() >= 9);
    }
}
