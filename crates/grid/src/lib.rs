//! Track-based 3-D detailed routing grid graph.
//!
//! This crate plays the role of Dr.CU's grid/track substrate: it turns a
//! [`tpl_design::Design`] into a uniform grid graph whose vertices are track
//! crossings on each metal layer and whose edges are planar steps (preferred
//! or wrong-way) and vias between adjacent layers.  On top of the immutable
//! [`GridGraph`] sits the mutable [`GridState`] holding blockages, net
//! occupancy and negotiation history, plus helpers to map pins onto covered
//! vertices and to convert vertex paths into routed geometry.
//!
//! All routers in the workspace (the TPL-unaware Dr.CU-like baseline, the
//! DAC'12 vertex-splitting baseline and Mr.TPL itself) share this substrate,
//! which keeps the Table II runtime comparison apples-to-apples.
//!
//! # Examples
//!
//! ```
//! use tpl_grid::GridGraph;
//! use tpl_ispd::CaseParams;
//!
//! let design = CaseParams::ispd18_like(1).scaled(0.3).generate();
//! let grid = GridGraph::build(&design);
//! assert!(grid.num_vertices() > 0);
//! ```

#![warn(missing_docs)]

mod bitset;
mod bucket;
mod budget;
mod costs;
mod epoch;
mod graph;
mod kernel;
mod path;
mod pins;
mod state;

pub use bitset::DenseBitSet;
pub use bucket::BucketQueue;
pub use budget::{CancelToken, Degradation, Outcome, RouteBudget, StopReason};
pub use costs::CostParams;
pub use epoch::EpochStamps;
pub use graph::{GridGraph, VertexId};
pub use kernel::{Frontier, SearchConfig};
pub use path::path_to_routed_net;
pub use pins::PinCoverage;
pub use state::GridState;
