//! Converting vertex paths into routed geometry.

use crate::{GridGraph, VertexId};
use tpl_design::{RouteSegment, RoutedNet, ViaInstance};
use tpl_geom::Segment;

/// Converts a sequence of grid-adjacent vertices into wire segments and vias.
///
/// Consecutive vertices must be grid neighbours (one planar step or one via
/// apart); maximal straight runs on a layer are merged into single segments.
/// The produced geometry is appended to `out`, so a multi-pin net routed as
/// several pin-to-tree paths accumulates into one [`RoutedNet`].
///
/// # Panics
///
/// Panics if two consecutive vertices are not grid neighbours.
pub fn path_to_routed_net(grid: &GridGraph, path: &[VertexId], out: &mut RoutedNet) {
    if path.len() < 2 {
        return;
    }
    let mut run_start = 0usize;
    for i in 1..path.len() {
        let prev = path[i - 1];
        let curr = path[i];
        let (pl, px, py) = grid.coords(prev);
        let (cl, cx, cy) = grid.coords(curr);
        let step_planar =
            pl == cl && ((px as i64 - cx as i64).abs() + (py as i64 - cy as i64).abs() == 1);
        let step_via = px == cx && py == cy && (pl as i64 - cl as i64).abs() == 1;
        assert!(
            step_planar || step_via,
            "path vertices {prev} and {curr} are not adjacent"
        );

        if step_via {
            // Flush the planar run ending at `prev`.
            flush_run(grid, &path[run_start..i], out);
            let lower = pl.min(cl);
            out.vias.push(ViaInstance::new(
                tpl_design::LayerId::from(lower),
                grid.point_of(prev),
            ));
            run_start = i;
        } else {
            // Check whether the direction changed relative to the run, in
            // which case the run is flushed up to `prev` and a new one starts
            // there (the corner vertex belongs to both runs).
            if i >= run_start + 2 {
                let (_, sx, sy) = grid.coords(path[run_start]);
                let same_row = sy == py && py == cy;
                let same_col = sx == px && px == cx;
                if !(same_row || same_col) {
                    flush_run(grid, &path[run_start..i], out);
                    run_start = i - 1;
                }
            }
        }
    }
    flush_run(grid, &path[run_start..], out);
}

fn flush_run(grid: &GridGraph, run: &[VertexId], out: &mut RoutedNet) {
    if run.len() < 2 {
        return;
    }
    let first = run[0];
    let last = run[run.len() - 1];
    let layer = grid.layer_of(first);
    debug_assert_eq!(layer, grid.layer_of(last));
    let a = grid.point_of(first);
    let b = grid.point_of(last);
    if a == b {
        return;
    }
    out.segments.push(RouteSegment::new(
        layer,
        Segment::new(a, b),
        grid.wire_width(layer),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_design::{DesignBuilder, Technology};
    use tpl_geom::{Point, Rect};

    fn grid() -> GridGraph {
        let mut b = DesignBuilder::new(
            "g",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 300, 300),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(200, 200, 210, 210));
        b.add_net("n", vec![p0, p1]);
        GridGraph::build(&b.build().unwrap())
    }

    #[test]
    fn straight_run_becomes_one_segment() {
        let g = grid();
        let path: Vec<VertexId> = (0..5).map(|i| g.vertex(0, i, 3)).collect();
        let mut rn = RoutedNet::new();
        path_to_routed_net(&g, &path, &mut rn);
        assert_eq!(rn.segments.len(), 1);
        assert_eq!(rn.vias.len(), 0);
        assert_eq!(
            rn.segments[0].seg,
            Segment::new(Point::new(10, 70), Point::new(90, 70))
        );
        assert_eq!(rn.wirelength(), 80);
    }

    #[test]
    fn corner_splits_into_two_segments() {
        let g = grid();
        let mut path: Vec<VertexId> = (0..4).map(|i| g.vertex(0, i, 0)).collect();
        path.extend((1..3).map(|j| g.vertex(0, 3, j)));
        let mut rn = RoutedNet::new();
        path_to_routed_net(&g, &path, &mut rn);
        assert_eq!(rn.segments.len(), 2);
        assert_eq!(rn.wirelength(), 3 * 20 + 2 * 20);
    }

    #[test]
    fn via_steps_produce_via_instances() {
        let g = grid();
        let path = vec![
            g.vertex(0, 2, 2),
            g.vertex(0, 3, 2),
            g.vertex(1, 3, 2),
            g.vertex(1, 3, 3),
            g.vertex(1, 3, 4),
        ];
        let mut rn = RoutedNet::new();
        path_to_routed_net(&g, &path, &mut rn);
        assert_eq!(rn.vias.len(), 1);
        assert_eq!(rn.vias[0].lower_layer.index(), 0);
        assert_eq!(rn.segments.len(), 2);
        assert_eq!(rn.wirelength(), 20 + 40);
    }

    #[test]
    fn single_vertex_or_empty_paths_produce_nothing() {
        let g = grid();
        let mut rn = RoutedNet::new();
        path_to_routed_net(&g, &[], &mut rn);
        path_to_routed_net(&g, &[g.vertex(0, 0, 0)], &mut rn);
        assert!(rn.is_empty());
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn non_adjacent_vertices_panic() {
        let g = grid();
        let mut rn = RoutedNet::new();
        path_to_routed_net(&g, &[g.vertex(0, 0, 0), g.vertex(0, 5, 5)], &mut rn);
    }

    #[test]
    fn consecutive_vias_are_both_emitted() {
        let g = grid();
        let path = vec![g.vertex(0, 1, 1), g.vertex(1, 1, 1), g.vertex(2, 1, 1)];
        let mut rn = RoutedNet::new();
        path_to_routed_net(&g, &path, &mut rn);
        assert_eq!(rn.vias.len(), 2);
        assert!(rn.segments.is_empty());
    }
}
