//! Mutable per-vertex routing state (blockages, occupancy, history).

use crate::{DenseBitSet, GridGraph, VertexId};
use tpl_design::{Design, NetId};

/// Sentinel for "no net occupies this vertex" in the dense occupancy array.
const FREE: u32 = u32::MAX;

/// Mutable state layered over a [`GridGraph`]: obstacle blockages, net
/// occupancy of vertices, and the negotiation history cost used by rip-up
/// and reroute.
///
/// All three components are dense, index-addressed arrays so that many
/// search threads can read them concurrently without pointer chasing:
/// blockages are one bit per vertex ([`DenseBitSet`]), occupancy is one
/// sentinel-coded `u32` per vertex (half the footprint of
/// `Option<NetId>`), and history is one `f64` per vertex.
#[derive(Clone, Debug)]
pub struct GridState {
    blocked: DenseBitSet,
    occupant: Vec<u32>,
    history: Vec<f64>,
}

impl GridState {
    /// Creates the state for a grid, marking vertices blocked by design
    /// obstacles.
    ///
    /// A vertex is blocked when its point falls within an obstacle expanded
    /// by half the wire width plus the layer spacing minus one database unit
    /// (i.e. a wire centred on the vertex would violate spacing to the
    /// obstacle).
    pub fn new(grid: &GridGraph, design: &Design) -> Self {
        let mut blocked = DenseBitSet::new(grid.num_vertices());
        for obs in design.obstacles() {
            let layer = design.tech().layer(obs.layer);
            let margin = layer.width / 2 + layer.spacing - 1;
            let region = obs.rect.expanded(margin);
            for v in grid.vertices_in_rect(obs.layer, &obs.rect.expanded(margin)) {
                // `vertices_in_rect` already adds a half-pitch halo for pin
                // snapping; re-check the exact margin here.
                if region.contains(&grid.point_of(v)) {
                    blocked.insert(v.index());
                }
            }
        }
        Self {
            blocked,
            occupant: vec![FREE; grid.num_vertices()],
            history: vec![0.0; grid.num_vertices()],
        }
    }

    /// `true` if the vertex is blocked by an obstacle.
    #[inline]
    pub fn is_blocked(&self, v: VertexId) -> bool {
        self.blocked.get(v.index())
    }

    /// The net currently occupying the vertex, if any.
    #[inline]
    pub fn occupant(&self, v: VertexId) -> Option<NetId> {
        match self.occupant[v.index()] {
            FREE => None,
            raw => Some(NetId::new(raw)),
        }
    }

    /// `true` if the vertex is occupied by a net other than `net`.
    #[inline]
    pub fn is_occupied_by_other(&self, v: VertexId, net: NetId) -> bool {
        let raw = self.occupant[v.index()];
        raw != FREE && raw != net.0
    }

    /// Marks a vertex as used by a net (commit of a routed path).
    #[inline]
    pub fn occupy(&mut self, v: VertexId, net: NetId) {
        debug_assert!(net.0 != FREE, "net id collides with the FREE sentinel");
        self.occupant[v.index()] = net.0;
    }

    /// Releases every vertex owned by `net` (rip-up).  Returns the number of
    /// vertices released.
    ///
    /// This scans the whole grid; callers that track the vertices a net
    /// occupies should prefer [`release_vertices`](Self::release_vertices),
    /// which is `O(net)` instead of `O(grid)`.
    pub fn release_net(&mut self, net: NetId) -> usize {
        let mut released = 0;
        for slot in self.occupant.iter_mut() {
            if *slot == net.0 {
                *slot = FREE;
                released += 1;
            }
        }
        released
    }

    /// Releases the given vertices if (and only if) `net` owns them,
    /// returning the number released.  The `O(net)` rip-up used by routers
    /// that remember each net's committed vertex list.
    pub fn release_vertices(&mut self, vertices: &[VertexId], net: NetId) -> usize {
        let mut released = 0;
        for v in vertices {
            let slot = &mut self.occupant[v.index()];
            if *slot == net.0 {
                *slot = FREE;
                released += 1;
            }
        }
        tpl_trace::counter!("grid.ripped_vertices", released);
        released
    }

    /// The accumulated history cost of a vertex.
    #[inline]
    pub fn history(&self, v: VertexId) -> f64 {
        self.history[v.index()]
    }

    /// Adds to the history cost of a vertex (negotiated congestion).
    #[inline]
    pub fn add_history(&mut self, v: VertexId, amount: f64) {
        self.history[v.index()] += amount;
    }

    /// Clears all occupancy while keeping blockages and history.
    pub fn clear_occupancy(&mut self) {
        self.occupant.fill(FREE);
    }

    /// Number of occupied vertices (mostly useful for tests and reports).
    pub fn occupied_count(&self) -> usize {
        self.occupant.iter().filter(|o| **o != FREE).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_design::{DesignBuilder, Technology};
    use tpl_geom::Rect;

    fn design_with_obstacle() -> Design {
        let mut b = DesignBuilder::new(
            "s",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 200, 200),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(150, 150, 160, 160));
        b.add_net("n", vec![p0, p1]);
        b.add_obstacle(1, Rect::from_coords(60, 60, 140, 140));
        b.build().unwrap()
    }

    #[test]
    fn obstacles_block_covered_vertices_only_on_their_layer() {
        let d = design_with_obstacle();
        let g = GridGraph::build(&d);
        let s = GridState::new(&g, &d);
        // Vertex inside the obstacle on layer 1 is blocked.
        let inside = g.vertex(1, g.ix_near(100), g.iy_near(100));
        assert!(s.is_blocked(inside));
        // Same position on layer 0 is free.
        let below = g.vertex(0, g.ix_near(100), g.iy_near(100));
        assert!(!s.is_blocked(below));
        // Far corner on layer 1 is free.
        let corner = g.vertex(1, 0, 0);
        assert!(!s.is_blocked(corner));
    }

    #[test]
    fn occupancy_lifecycle() {
        let d = design_with_obstacle();
        let g = GridGraph::build(&d);
        let mut s = GridState::new(&g, &d);
        let v = g.vertex(0, 2, 2);
        let net = NetId::new(0);
        let other = NetId::new(1);
        assert_eq!(s.occupant(v), None);
        s.occupy(v, net);
        assert_eq!(s.occupant(v), Some(net));
        assert!(!s.is_occupied_by_other(v, net));
        assert!(s.is_occupied_by_other(v, other));
        assert_eq!(s.occupied_count(), 1);
        assert_eq!(s.release_net(net), 1);
        assert_eq!(s.occupant(v), None);
    }

    #[test]
    fn release_vertices_only_touches_the_owners_slots() {
        let d = design_with_obstacle();
        let g = GridGraph::build(&d);
        let mut s = GridState::new(&g, &d);
        let mine = g.vertex(0, 1, 1);
        let theirs = g.vertex(0, 2, 2);
        let stale = g.vertex(0, 3, 3);
        s.occupy(mine, NetId::new(0));
        s.occupy(theirs, NetId::new(1));
        // Releasing a list that includes another net's vertex and a free one
        // only frees our own.
        assert_eq!(s.release_vertices(&[mine, theirs, stale], NetId::new(0)), 1);
        assert_eq!(s.occupant(mine), None);
        assert_eq!(s.occupant(theirs), Some(NetId::new(1)));
        assert_eq!(s.occupied_count(), 1);
    }

    #[test]
    fn history_accumulates() {
        let d = design_with_obstacle();
        let g = GridGraph::build(&d);
        let mut s = GridState::new(&g, &d);
        let v = g.vertex(0, 1, 1);
        assert_eq!(s.history(v), 0.0);
        s.add_history(v, 2.5);
        s.add_history(v, 1.0);
        assert_eq!(s.history(v), 3.5);
    }

    #[test]
    fn clear_occupancy_keeps_blockages() {
        let d = design_with_obstacle();
        let g = GridGraph::build(&d);
        let mut s = GridState::new(&g, &d);
        let blocked = g.vertex(1, g.ix_near(100), g.iy_near(100));
        s.occupy(g.vertex(0, 1, 1), NetId::new(0));
        s.clear_occupancy();
        assert_eq!(s.occupied_count(), 0);
        assert!(s.is_blocked(blocked));
    }
}
