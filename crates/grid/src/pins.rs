//! Mapping pins onto the grid vertices they cover.

use crate::{GridGraph, VertexId};
use tpl_design::{Design, NetId, PinId};

/// Pre-computed pin-to-vertex coverage for a design.
///
/// A pin covers every grid vertex on one of its shape layers whose point lies
/// within the shape expanded by half a pitch; this guarantees at least one
/// access vertex even for off-grid pins.  Routers use the coverage both to
/// seed searches (sources) and to detect when a search has reached an
/// unconnected pin (targets), mirroring `get_covered_vertices` in
/// Algorithm 1 of the paper.
#[derive(Clone, Debug)]
pub struct PinCoverage {
    per_pin: Vec<Vec<VertexId>>,
    /// For each vertex: the pin covering it, if any (first pin wins; the
    /// generator never lets pins of different nets overlap).
    vertex_pin: Vec<Option<PinId>>,
}

impl PinCoverage {
    /// Computes the coverage of every pin of the design.
    pub fn build(grid: &GridGraph, design: &Design) -> Self {
        let mut per_pin: Vec<Vec<VertexId>> = Vec::with_capacity(design.pins().len());
        let mut vertex_pin: Vec<Option<PinId>> = vec![None; grid.num_vertices()];
        for pin in design.pins() {
            let mut covered = Vec::new();
            for (layer, rect) in pin.shapes() {
                for v in grid.vertices_in_rect(*layer, rect) {
                    covered.push(v);
                }
            }
            covered.sort_unstable();
            covered.dedup();
            // Guarantee at least one access point: snap the shape centre to
            // the nearest vertex on the shape's layer.
            if covered.is_empty() {
                if let Some((layer, rect)) = pin.shapes().first() {
                    let c = rect.center();
                    let v = grid.vertex(layer.index(), grid.ix_near(c.x), grid.iy_near(c.y));
                    covered.push(v);
                }
            }
            for v in &covered {
                if vertex_pin[v.index()].is_none() {
                    vertex_pin[v.index()] = Some(pin.id());
                }
            }
            per_pin.push(covered);
        }
        Self {
            per_pin,
            vertex_pin,
        }
    }

    /// The vertices covered by a pin.
    ///
    /// # Panics
    ///
    /// Panics if the pin id is out of range.
    #[inline]
    pub fn vertices(&self, pin: PinId) -> &[VertexId] {
        &self.per_pin[pin.index()]
    }

    /// The pin covering a vertex, if any.
    #[inline]
    pub fn pin_at(&self, v: VertexId) -> Option<PinId> {
        self.vertex_pin[v.index()]
    }

    /// The pin of net `net` covering vertex `v`, if any.
    pub fn net_pin_at(&self, design: &Design, net: NetId, v: VertexId) -> Option<PinId> {
        self.pin_at(v).filter(|p| design.pin(*p).net() == net)
    }

    /// Number of pins covered.
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.per_pin.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_design::{DesignBuilder, Technology};
    use tpl_geom::Rect;

    fn setup() -> (Design, GridGraph, PinCoverage) {
        let mut b = DesignBuilder::new(
            "p",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 400, 400),
        );
        // Pin centred on the track crossing (30, 30).
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(26, 26, 34, 34));
        // Off-grid pin between crossings.
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(218, 218, 222, 222));
        // Large pin covering several crossings on layer 1.
        let p2 = b.add_pin_shape("c", 1, Rect::from_coords(100, 100, 180, 120));
        b.add_net("n0", vec![p0, p1, p2]);
        let d = b.build().unwrap();
        let g = GridGraph::build(&d);
        let cov = PinCoverage::build(&g, &d);
        (d, g, cov)
    }

    #[test]
    fn on_grid_pin_covers_its_crossing() {
        let (_, g, cov) = setup();
        let expected = g.vertex(0, 1, 1); // x=30, y=30
        assert!(cov.vertices(PinId::new(0)).contains(&expected));
        assert_eq!(cov.pin_at(expected), Some(PinId::new(0)));
    }

    #[test]
    fn off_grid_pin_still_gets_an_access_vertex() {
        let (_, _, cov) = setup();
        assert!(!cov.vertices(PinId::new(1)).is_empty());
    }

    #[test]
    fn wide_pin_covers_multiple_vertices_on_its_layer() {
        let (_, g, cov) = setup();
        let vs = cov.vertices(PinId::new(2));
        assert!(
            vs.len() >= 4,
            "wide pin should cover several crossings, got {vs:?}"
        );
        for v in vs {
            assert_eq!(g.layer_of(*v).index(), 1);
        }
    }

    #[test]
    fn net_pin_lookup_filters_by_net() {
        let (d, g, cov) = setup();
        let v = g.vertex(0, 1, 1);
        assert_eq!(cov.net_pin_at(&d, NetId::new(0), v), Some(PinId::new(0)));
        // A vertex not covered by any pin.
        let empty = g.vertex(2, 0, 0);
        assert_eq!(cov.net_pin_at(&d, NetId::new(0), empty), None);
    }
}
