//! Generation-stamped validity tracking for reusable search buffers.
//!
//! A search kernel that runs thousands of times per case cannot afford to
//! re-initialise O(V) scratch vectors before every run.  [`EpochStamps`]
//! implements the classic generation-counter trick: every slot carries the
//! epoch in which it was last written, and bumping the epoch invalidates all
//! slots in O(1).  The wrap-around case (`u32::MAX` epochs) is handled by
//! clearing the stamp array once and restarting, so stale stamps from a
//! previous lap can never alias a fresh epoch.

/// Per-slot generation stamps with O(1) bulk invalidation.
///
/// A slot is *fresh* when its stamp equals the current epoch.  Callers mark a
/// slot fresh with [`EpochStamps::touch`] after writing the payload arrays it
/// guards, and must treat the payload as garbage whenever
/// [`EpochStamps::is_fresh`] is false.
#[derive(Debug, Clone)]
pub struct EpochStamps {
    epoch: u32,
    stamp: Vec<u32>,
}

impl EpochStamps {
    /// Creates stamps for `len` slots, all stale until the first `begin`.
    pub fn new(len: usize) -> Self {
        Self {
            // Slots start at 0 and the first `begin` moves the epoch to 1,
            // so a freshly-built instance has no accidentally-fresh slot.
            epoch: 0,
            stamp: vec![0; len],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Grows the slot count to at least `len` (new slots are stale).
    pub fn resize(&mut self, len: usize) {
        if len > self.stamp.len() {
            // 0 is never the current epoch (begin() starts at 1), so new
            // slots are stale regardless of how many epochs have passed.
            self.stamp.resize(len, 0);
        }
    }

    /// Starts a new epoch, invalidating every slot in O(1).
    ///
    /// On `u32` exhaustion the stamp array is cleared once and the counter
    /// restarts at 1, so stamps written billions of epochs ago can never
    /// collide with the new epoch.
    pub fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Current epoch value (diagnostic; tests use it to observe rollover).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Jumps the epoch counter to `epoch`.
    ///
    /// Test hook for exercising the `u32` wrap without 2^32 `begin` calls;
    /// production code has no reason to call this.
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// True when slot `i` was touched in the current epoch.
    #[inline]
    pub fn is_fresh(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    /// Marks slot `i` fresh for the current epoch.
    #[inline]
    pub fn touch(&mut self, i: usize) {
        self.stamp[i] = self.epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_invalidates_all_slots() {
        let mut s = EpochStamps::new(4);
        s.begin();
        s.touch(1);
        s.touch(3);
        assert!(s.is_fresh(1));
        assert!(s.is_fresh(3));
        assert!(!s.is_fresh(0));
        s.begin();
        for i in 0..4 {
            assert!(!s.is_fresh(i), "slot {i} must be stale after begin");
        }
    }

    #[test]
    fn rollover_clears_stale_stamps() {
        let mut s = EpochStamps::new(3);
        s.begin();
        s.touch(0);
        // Jump to the last representable epoch and touch a different slot.
        s.force_epoch(u32::MAX - 1);
        s.begin(); // epoch == u32::MAX
        assert_eq!(s.epoch(), u32::MAX);
        s.touch(1);
        assert!(s.is_fresh(1));
        // The next begin wraps: every stamp (including the one written at
        // u32::MAX and the ancient one at 1) must read stale.
        s.begin();
        assert_eq!(s.epoch(), 1);
        for i in 0..3 {
            assert!(!s.is_fresh(i), "slot {i} leaked across the wrap");
        }
        // And the restarted counter behaves normally.
        s.touch(2);
        assert!(s.is_fresh(2));
    }

    #[test]
    fn resize_adds_stale_slots() {
        let mut s = EpochStamps::new(1);
        s.begin();
        s.touch(0);
        s.resize(3);
        assert_eq!(s.len(), 3);
        assert!(s.is_fresh(0));
        assert!(!s.is_fresh(1));
        assert!(!s.is_fresh(2));
    }
}
