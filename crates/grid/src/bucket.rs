//! Monotone bucket (Dial) priority queue for quantised search keys.
//!
//! Shortest-path search over the routing grid pushes entries whose keys are
//! already quantised integers (`cost * key_resolution`).  A binary heap pays
//! O(log n) per operation and churns one allocation-heavy `Vec` behind the
//! scenes; Dial's bucket queue exploits the bounded key step of grid search
//! to make push and pop O(1) amortised.
//!
//! # Exact pop-order equivalence
//!
//! [`BucketQueue`] is a drop-in replacement for
//! `BinaryHeap<Reverse<(u64, u32)>>`: it pops live entries in exactly
//! ascending `(key, id)` order, *unconditionally*.  Three mechanisms make the
//! order exact rather than merely bucket-approximate:
//!
//! * every bucket is itself a small binary min-heap ordered by `(key, id)`,
//!   so ties and sub-bucket ordering match the global heap;
//! * a push whose bucket lies at or below the pop cursor is clamped into the
//!   cursor bucket — its key is smaller than every entry in later buckets, so
//!   the per-bucket heap still pops it in exact global order;
//! * entries beyond the `span`-bucket window go to an overflow binary heap
//!   whose keys are all `≥ (window_base + span) << shift`, i.e. strictly
//!   after every window entry; when the window drains the queue re-bases on
//!   the overflow minimum and migrates the now-in-range entries.
//!
//! This is what lets the `bucket_queue` config knob guarantee byte-identical
//! deterministic reports: flipping it changes only constants, never the
//! expansion order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A `(key, id)` entry; smaller keys pop first, ids break ties ascending.
type Entry = (u64, u32);

#[inline]
fn heap_push(bucket: &mut Vec<Entry>, entry: Entry) {
    bucket.push(entry);
    let mut i = bucket.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if bucket[parent] <= bucket[i] {
            break;
        }
        bucket.swap(parent, i);
        i = parent;
    }
}

#[inline]
fn heap_pop(bucket: &mut Vec<Entry>) -> Option<Entry> {
    let last = bucket.len().checked_sub(1)?;
    bucket.swap(0, last);
    let top = bucket.pop();
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut min = i;
        if l < bucket.len() && bucket[l] < bucket[min] {
            min = l;
        }
        if r < bucket.len() && bucket[r] < bucket[min] {
            min = r;
        }
        if min == i {
            break;
        }
        bucket.swap(i, min);
        i = min;
    }
    top
}

/// Windowed Dial queue with per-bucket min-heaps and binary-heap overflow.
///
/// See the module docs for the exact-order argument.  `shift` sets the key
/// width of one bucket (`1 << shift` key units) and `span` the number of
/// buckets kept addressable before entries spill to the overflow heap.
#[derive(Debug)]
pub struct BucketQueue {
    shift: u32,
    span: u64,
    /// Ring of buckets; absolute bucket `b` lives at `slots[b % span]`.
    slots: Vec<Vec<Entry>>,
    /// Absolute bucket index of the window start.
    window_base: u64,
    /// Absolute bucket index the next pop scans from (≥ `window_base`).
    cursor: u64,
    /// Live entries currently stored in `slots`.
    in_window: usize,
    /// Entries whose bucket fell outside the window at push time.
    overflow: BinaryHeap<Reverse<Entry>>,
    /// True once the window has been based on the first pushed key.
    primed: bool,
    /// Statistics: high-water mark of total live entries.
    max_len: usize,
    /// Statistics: pushes that landed in the overflow heap.
    overflow_pushes: u64,
}

impl BucketQueue {
    /// Creates an empty queue with `1 << shift` key units per bucket and a
    /// window of `span` buckets before the overflow heap takes over.
    pub fn new(shift: u32, span: usize) -> Self {
        let span = span.max(1);
        Self {
            shift,
            span: span as u64,
            slots: vec![Vec::new(); span],
            window_base: 0,
            cursor: 0,
            in_window: 0,
            overflow: BinaryHeap::new(),
            primed: false,
            max_len: 0,
            overflow_pushes: 0,
        }
    }

    /// Total number of live entries.
    pub fn len(&self) -> usize {
        self.in_window + self.overflow.len()
    }

    /// True when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of live entries since the last [`BucketQueue::clear`].
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Number of pushes that spilled to the overflow heap since the last
    /// [`BucketQueue::clear`].
    pub fn overflow_pushes(&self) -> u64 {
        self.overflow_pushes
    }

    /// Removes all entries and resets statistics, keeping allocations.
    pub fn clear(&mut self) {
        if self.in_window > 0 {
            for slot in &mut self.slots {
                slot.clear();
            }
        }
        self.overflow.clear();
        self.window_base = 0;
        self.cursor = 0;
        self.in_window = 0;
        self.primed = false;
        self.max_len = 0;
        self.overflow_pushes = 0;
    }

    /// Pushes an entry.  O(1) amortised for in-window keys.
    pub fn push(&mut self, key: u64, id: u32) {
        let bucket = key >> self.shift;
        if !self.primed {
            // Base the window on the first key so searches whose costs start
            // high (e.g. A* lower bounds) still use the buckets.
            self.primed = true;
            self.window_base = bucket;
            self.cursor = bucket;
        }
        // Clamp at the cursor: a key below the cursor bucket is smaller than
        // every entry in later buckets, so the cursor bucket's heap pops it
        // in exact global order anyway.
        let bucket = bucket.max(self.cursor);
        if bucket - self.window_base >= self.span {
            self.overflow.push(Reverse((key, id)));
            self.overflow_pushes += 1;
        } else {
            heap_push(&mut self.slots[(bucket % self.span) as usize], (key, id));
            self.in_window += 1;
        }
        self.max_len = self.max_len.max(self.len());
    }

    /// Pops the live entry with the smallest `(key, id)`.
    pub fn pop(&mut self) -> Option<Entry> {
        if self.in_window == 0 && !self.migrate() {
            return None;
        }
        while self.slots[(self.cursor % self.span) as usize].is_empty() {
            self.cursor += 1;
        }
        let entry = heap_pop(&mut self.slots[(self.cursor % self.span) as usize]);
        debug_assert!(entry.is_some());
        self.in_window -= 1;
        entry
    }

    /// Re-bases the window on the overflow minimum and pulls every overflow
    /// entry that now fits.  Returns false when the queue is exhausted.
    fn migrate(&mut self) -> bool {
        let Some(Reverse((min_key, _))) = self.overflow.peek() else {
            return false;
        };
        let base = min_key >> self.shift;
        self.window_base = base;
        self.cursor = base;
        while let Some(&Reverse((key, _))) = self.overflow.peek() {
            let bucket = key >> self.shift;
            if bucket - base >= self.span {
                break;
            }
            let Some(Reverse(entry)) = self.overflow.pop() else {
                unreachable!("peeked entry vanished");
            };
            heap_push(&mut self.slots[(bucket % self.span) as usize], entry);
            self.in_window += 1;
        }
        self.in_window > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so the comparison test needs no external RNG.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    /// Drives the bucket queue and a binary heap with the same interleaved
    /// push/pop sequence and demands identical pop order.
    fn check_equivalence(shift: u32, span: usize, seed: u64, ops: usize, key_range: u64) {
        let mut bq = BucketQueue::new(shift, span);
        let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        let mut rng = XorShift(seed);
        let mut floor = 0u64; // keep keys loosely monotone like a real search
        for i in 0..ops {
            let roll = rng.next();
            if !roll.is_multiple_of(3) || heap.is_empty() {
                let key = floor + rng.next() % key_range;
                let id = (rng.next() % 97) as u32;
                bq.push(key, id);
                heap.push(Reverse((key, id)));
            } else {
                let expected = heap.pop().map(|Reverse(e)| e);
                let got = bq.pop();
                assert_eq!(got, expected, "divergence at op {i} (seed {seed})");
                if let Some((k, _)) = got {
                    floor = k;
                }
            }
        }
        while let Some(Reverse(expected)) = heap.pop() {
            assert_eq!(bq.pop(), Some(expected), "drain divergence (seed {seed})");
        }
        assert_eq!(bq.pop(), None);
    }

    #[test]
    fn pop_order_matches_binary_heap() {
        for seed in 1..8 {
            check_equivalence(4, 16, seed, 2000, 1 << 9);
        }
    }

    #[test]
    fn pop_order_matches_binary_heap_with_heavy_overflow() {
        // Tiny window + huge key range: almost everything spills to the
        // overflow heap and must still pop in exact order.
        for seed in 1..8 {
            check_equivalence(2, 4, seed, 1500, 1 << 20);
        }
    }

    #[test]
    fn non_monotone_pushes_still_pop_in_order() {
        // Push far below the cursor after popping: the clamp rule must keep
        // the global order exact.
        let mut bq = BucketQueue::new(4, 8);
        bq.push(1000, 1);
        bq.push(2000, 2);
        assert_eq!(bq.pop(), Some((1000, 1)));
        bq.push(5, 3); // way below the cursor bucket
        bq.push(1500, 4);
        assert_eq!(bq.pop(), Some((5, 3)));
        assert_eq!(bq.pop(), Some((1500, 4)));
        assert_eq!(bq.pop(), Some((2000, 2)));
        assert_eq!(bq.pop(), None);
    }

    #[test]
    fn equal_keys_pop_in_id_order() {
        let mut bq = BucketQueue::new(4, 8);
        for id in [7u32, 3, 9, 1] {
            bq.push(64, id);
        }
        assert_eq!(bq.pop(), Some((64, 1)));
        assert_eq!(bq.pop(), Some((64, 3)));
        assert_eq!(bq.pop(), Some((64, 7)));
        assert_eq!(bq.pop(), Some((64, 9)));
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut bq = BucketQueue::new(4, 8);
        bq.push(10, 1);
        bq.push(1 << 30, 2); // overflow
        assert!(bq.overflow_pushes() > 0);
        bq.clear();
        assert!(bq.is_empty());
        assert_eq!(bq.max_len(), 0);
        assert_eq!(bq.overflow_pushes(), 0);
        bq.push(3, 5);
        assert_eq!(bq.pop(), Some((3, 5)));
        assert_eq!(bq.pop(), None);
    }

    #[test]
    fn occupancy_high_water_mark_is_tracked() {
        let mut bq = BucketQueue::new(4, 8);
        bq.push(1, 1);
        bq.push(2, 2);
        bq.push(3, 3);
        bq.pop();
        bq.pop();
        assert_eq!(bq.max_len(), 3);
        assert_eq!(bq.len(), 1);
    }
}
