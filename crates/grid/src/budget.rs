//! Route budgets, cancellation, and graded outcomes.
//!
//! A [`RouteBudget`] bounds a routing run three ways:
//!
//! * **Search nodes** — a cap on frontier pops, the unit `search_nodes`
//!   statistics already count.  Node accounting is *deterministic*: the
//!   routers charge committed work at batch barriers only, so where the
//!   budget trips is a pure function of the input, independent of worker
//!   count or interleaving.
//! * **Deadline** — an optional wall-clock [`Instant`]; cooperative checks
//!   run at expansion granularity (every few thousand pops).  Wall clock is
//!   inherently nondeterministic, so deadlines are meant for services, not
//!   for byte-compared reports.
//! * **Cancellation** — an optional shared [`CancelToken`] another thread
//!   may flip at any time, checked alongside the deadline.
//!
//! Routers report how a run ended as an [`Outcome`]: budget exhaustion
//! degrades the run (best-so-far partial results, [`Outcome::Degraded`]),
//! while a deadline or cancellation aborts it ([`Outcome::Aborted`]) — in
//! both cases the router returns normally instead of running away or
//! panicking.  [`Degradation`] names the progressively cheaper search
//! configurations the harness ladder retries with after a budget trip or a
//! panic.

use crate::kernel::SearchConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a routing run stopped before completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StopReason {
    /// The search-node budget ran out (deterministic).
    SearchNodes,
    /// The wall-clock deadline passed (nondeterministic by nature).
    Deadline,
    /// The [`CancelToken`] was flipped.
    Cancelled,
}

impl StopReason {
    /// Stable lower-case label (`search_nodes` / `deadline` / `cancelled`).
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::SearchNodes => "search_nodes",
            StopReason::Deadline => "deadline",
            StopReason::Cancelled => "cancelled",
        }
    }
}

/// How a routing run ended, carried in the routers' statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// The run finished everything it set out to do.
    #[default]
    Complete,
    /// The run stopped early on a budget limit but returns its best-so-far
    /// partial result (unrouted nets are simply absent, never corrupt).
    Degraded(StopReason),
    /// The run was cut short by a deadline or cancellation; partial results
    /// are still structurally valid.
    Aborted(StopReason),
}

impl Outcome {
    /// `true` for [`Outcome::Complete`].
    pub fn is_complete(&self) -> bool {
        *self == Outcome::Complete
    }

    /// Combines two phases of one run: the worst outcome wins (`Aborted`
    /// over `Degraded` over `Complete`; the derived order encodes this).
    pub fn merge(self, other: Outcome) -> Outcome {
        self.max(other)
    }

    /// Stable lower-case label (`complete` / `degraded` / `aborted`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Outcome::Complete => "complete",
            Outcome::Degraded(_) => "degraded",
            Outcome::Aborted(_) => "aborted",
        }
    }

    /// The stop reason, for non-complete outcomes.
    pub fn reason(&self) -> Option<StopReason> {
        match self {
            Outcome::Complete => None,
            Outcome::Degraded(r) | Outcome::Aborted(r) => Some(*r),
        }
    }

    /// The outcome a router reports for `reason`: budget exhaustion
    /// degrades the run, deadline/cancellation abort it.
    pub fn from_stop(reason: StopReason) -> Outcome {
        match reason {
            StopReason::SearchNodes => Outcome::Degraded(reason),
            StopReason::Deadline | StopReason::Cancelled => Outcome::Aborted(reason),
        }
    }
}

/// Shared flag that cancels in-flight routing cooperatively.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every router holding a clone stops at its
    /// next cooperative check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once [`cancel`](CancelToken::cancel) was called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Limits of one routing run.  The default is unlimited — routers behave
/// exactly as if no budget existed.
#[derive(Clone, Debug, Default)]
pub struct RouteBudget {
    /// Cap on search-node pops (deterministic; charged at batch barriers).
    pub max_search_nodes: Option<u64>,
    /// Wall-clock cut-off (nondeterministic; cooperative checks).
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag shared with the caller.
    pub cancel: Option<CancelToken>,
}

impl RouteBudget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget capping search-node pops at `max`.
    pub fn with_max_search_nodes(max: u64) -> Self {
        Self {
            max_search_nodes: Some(max),
            ..Self::default()
        }
    }

    /// `true` when no limit is set at all.
    pub fn is_unlimited(&self) -> bool {
        self.max_search_nodes.is_none() && self.deadline.is_none() && self.cancel.is_none()
    }

    /// Search nodes still available after `used` committed pops
    /// (`u64::MAX` when uncapped).
    pub fn remaining_nodes(&self, used: u64) -> u64 {
        match self.max_search_nodes {
            Some(max) => max.saturating_sub(used),
            None => u64::MAX,
        }
    }

    /// The wall-clock/cancellation check routers run cooperatively:
    /// `Some(reason)` once the deadline passed or the token was cancelled.
    pub fn interrupted(&self) -> Option<StopReason> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopReason::Deadline);
        }
        None
    }
}

/// One rung of the harness's graceful-degradation ladder: progressively
/// cheaper search configurations retried after a budget trip or a panic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Degradation {
    /// The requested configuration, unchanged.
    #[default]
    None,
    /// Goal-directed A* disabled (pure Dijkstra order).
    NoAStar,
    /// A* disabled plus a coarser key quantisation (fewer distinct keys,
    /// shorter frontier scans).
    CoarseKey,
    /// All of the above plus sequential net routing (`net_jobs = 1`),
    /// ruling out any parallel-infrastructure interference.
    Sequential,
}

impl Degradation {
    /// The ladder in escalation order, starting at the requested config.
    pub fn ladder() -> [Degradation; 4] {
        [
            Degradation::None,
            Degradation::NoAStar,
            Degradation::CoarseKey,
            Degradation::Sequential,
        ]
    }

    /// Stable lower-case label (`none` / `no_a_star` / `coarse_key` /
    /// `sequential`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Degradation::None => "none",
            Degradation::NoAStar => "no_a_star",
            Degradation::CoarseKey => "coarse_key",
            Degradation::Sequential => "sequential",
        }
    }

    /// Applies this rung to a search configuration.  `Sequential`
    /// additionally forces `net_jobs = 1`, which the harness applies at the
    /// parallelism level (see
    /// [`degraded_net_jobs`](Degradation::degraded_net_jobs)).
    pub fn apply(&self, config: SearchConfig) -> SearchConfig {
        match self {
            Degradation::None => config,
            Degradation::NoAStar => SearchConfig {
                a_star: false,
                ..config
            },
            Degradation::CoarseKey | Degradation::Sequential => SearchConfig {
                a_star: false,
                key_resolution: (config.key_resolution / 4.0).max(1.0),
                bucket_shift: config.bucket_shift.saturating_sub(2).max(1),
                ..config
            },
        }
    }

    /// The intra-case worker count of this rung: the requested `net_jobs`
    /// until the `Sequential` rung forces 1.
    pub fn degraded_net_jobs(&self, requested: usize) -> usize {
        match self {
            Degradation::Sequential => 1,
            _ => requested.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn default_budget_is_unlimited_and_never_interrupts() {
        let budget = RouteBudget::default();
        assert!(budget.is_unlimited());
        assert_eq!(budget.remaining_nodes(0), u64::MAX);
        assert_eq!(budget.remaining_nodes(u64::MAX), u64::MAX);
        assert_eq!(budget.interrupted(), None);
    }

    #[test]
    fn node_budget_saturates_at_zero() {
        let budget = RouteBudget::with_max_search_nodes(100);
        assert!(!budget.is_unlimited());
        assert_eq!(budget.remaining_nodes(0), 100);
        assert_eq!(budget.remaining_nodes(40), 60);
        assert_eq!(budget.remaining_nodes(100), 0);
        assert_eq!(budget.remaining_nodes(1000), 0);
    }

    #[test]
    fn cancellation_and_deadline_interrupt() {
        let token = CancelToken::new();
        let budget = RouteBudget {
            cancel: Some(token.clone()),
            ..RouteBudget::default()
        };
        assert_eq!(budget.interrupted(), None);
        token.cancel();
        assert_eq!(budget.interrupted(), Some(StopReason::Cancelled));

        let passed = RouteBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..RouteBudget::default()
        };
        assert_eq!(passed.interrupted(), Some(StopReason::Deadline));
    }

    #[test]
    fn outcomes_merge_worst_wins() {
        use Outcome::*;
        use StopReason::*;
        assert_eq!(Complete.merge(Complete), Complete);
        assert_eq!(Complete.merge(Degraded(SearchNodes)), Degraded(SearchNodes));
        assert_eq!(
            Degraded(SearchNodes).merge(Aborted(Cancelled)),
            Aborted(Cancelled)
        );
        assert_eq!(
            Aborted(Deadline).merge(Degraded(SearchNodes)),
            Aborted(Deadline)
        );
        assert!(Complete.is_complete());
        assert!(!Degraded(SearchNodes).is_complete());
        assert_eq!(Degraded(SearchNodes).as_str(), "degraded");
        assert_eq!(Aborted(Cancelled).reason(), Some(Cancelled));
        assert_eq!(Outcome::from_stop(SearchNodes), Degraded(SearchNodes));
        assert_eq!(Outcome::from_stop(Deadline), Aborted(Deadline));
        assert_eq!(Outcome::from_stop(Cancelled), Aborted(Cancelled));
    }

    #[test]
    fn ladder_escalates_and_applies_cheaper_configs() {
        let base = SearchConfig::default();
        let ladder = Degradation::ladder();
        assert_eq!(ladder[0], Degradation::None);
        assert_eq!(ladder[0].apply(base), base);
        assert!(!ladder[1].apply(base).a_star);
        assert_eq!(ladder[1].apply(base).key_resolution, base.key_resolution);
        let coarse = ladder[2].apply(base);
        assert!(!coarse.a_star);
        assert!(coarse.key_resolution < base.key_resolution);
        assert!(coarse.bucket_shift < base.bucket_shift);
        assert_eq!(ladder[3].apply(base), coarse);
        assert_eq!(ladder[2].degraded_net_jobs(8), 8);
        assert_eq!(ladder[3].degraded_net_jobs(8), 1);
        assert_eq!(Degradation::Sequential.as_str(), "sequential");
    }
}
