//! Shared configuration and frontier for the shortest-path search kernels.
//!
//! Both routers — the colour-state search in `mrtpl-core` and the maze
//! fallback in `tpl-global` — quantise costs to integer keys and expand a
//! best-first frontier.  [`SearchConfig`] carries the kernel knobs (goal
//! direction, queue choice, key resolution, bucket geometry) and
//! [`Frontier`] dispatches between the exact-order [`BucketQueue`] and a
//! plain binary heap.
//!
//! # Determinism contract
//!
//! * `bucket_queue` on/off never changes results: the bucket queue pops in
//!   exactly the binary heap's `(key, id)` order (see [`crate::bucket`]).
//! * `a_star` on/off preserves path cost (the heuristic is admissible and
//!   consistent) but may pick a different equal-cost path where tie-breaking
//!   depends on expansion order; kernels that need knob-independent output
//!   (the global maze) drain the frontier through the goal key and rebuild
//!   the path with a canonical backtrace instead of trusting `prev` order.

use crate::bucket::BucketQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tuning knobs for the shortest-path search kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Goal-directed search: add an admissible Manhattan lower bound to the
    /// nearest target when ordering the frontier.  Routers may scope when
    /// goal direction engages (the Mr.TPL router keeps its initial pass in
    /// pure-Dijkstra order and steers only negotiation reroutes).
    pub a_star: bool,
    /// Use the monotone bucket queue instead of a binary heap.
    pub bucket_queue: bool,
    /// Key units per cost unit when quantising `f64` costs to `u64` keys.
    pub key_resolution: f64,
    /// `log2` key units per bucket of the bucket queue.
    pub bucket_shift: u32,
    /// Buckets kept addressable before entries spill to the overflow heap.
    pub bucket_span: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            a_star: true,
            bucket_queue: true,
            // Matches the historical `(cost * 256.0) as u64` quantisation of
            // the detailed router.
            key_resolution: 256.0,
            // One bucket ≈ 4096 key units; the minimum planar step of the
            // detailed grid is ~5120 key units, so consecutive expansions
            // land a bucket or so apart and cursor scans stay short.
            bucket_shift: 12,
            bucket_span: 1024,
        }
    }
}

impl SearchConfig {
    /// Quantises a cost to its integer search key.
    #[inline]
    pub fn key(&self, cost: f64) -> u64 {
        (cost * self.key_resolution) as u64
    }
}

/// Best-first frontier: bucket queue or binary heap, identical pop order.
#[derive(Debug)]
pub enum Frontier {
    /// Monotone bucket queue (exact `(key, id)` order).
    Bucket(BucketQueue),
    /// Plain binary heap over `Reverse<(key, id)>`.
    Heap {
        /// The heap itself.
        heap: BinaryHeap<Reverse<(u64, u32)>>,
        /// High-water mark of live entries since the last clear.
        max_len: usize,
    },
}

impl Frontier {
    /// Builds the frontier the config asks for.
    pub fn for_config(config: &SearchConfig) -> Self {
        tpl_fault::point!("grid.frontier");
        if config.bucket_queue {
            Frontier::Bucket(BucketQueue::new(config.bucket_shift, config.bucket_span))
        } else {
            Frontier::Heap {
                heap: BinaryHeap::new(),
                max_len: 0,
            }
        }
    }

    /// Pushes a `(key, id)` entry.
    #[inline]
    pub fn push(&mut self, key: u64, id: u32) {
        match self {
            Frontier::Bucket(q) => q.push(key, id),
            Frontier::Heap { heap, max_len } => {
                heap.push(Reverse((key, id)));
                *max_len = (*max_len).max(heap.len());
            }
        }
    }

    /// Pops the smallest `(key, id)` entry.
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, u32)> {
        match self {
            Frontier::Bucket(q) => q.pop(),
            Frontier::Heap { heap, .. } => heap.pop().map(|Reverse(e)| e),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        match self {
            Frontier::Bucket(q) => q.len(),
            Frontier::Heap { heap, .. } => heap.len(),
        }
    }

    /// True when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all entries and resets statistics, keeping allocations.
    pub fn clear(&mut self) {
        match self {
            Frontier::Bucket(q) => q.clear(),
            Frontier::Heap { heap, max_len } => {
                heap.clear();
                *max_len = 0;
            }
        }
    }

    /// High-water mark of live entries since the last clear.
    pub fn max_len(&self) -> usize {
        match self {
            Frontier::Bucket(q) => q.max_len(),
            Frontier::Heap { max_len, .. } => *max_len,
        }
    }

    /// Pushes that spilled to the bucket queue's overflow heap (0 for the
    /// binary-heap frontier).
    pub fn overflow_pushes(&self) -> u64 {
        match self {
            Frontier::Bucket(q) => q.overflow_pushes(),
            Frontier::Heap { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_key_matches_historical_quantisation() {
        let config = SearchConfig::default();
        assert_eq!(config.key(1.0), 256);
        assert_eq!(config.key(20.0), 5120);
        assert_eq!(config.key(0.0), 0);
    }

    #[test]
    fn both_frontiers_pop_in_identical_order() {
        let bucket_cfg = SearchConfig::default();
        let heap_cfg = SearchConfig {
            bucket_queue: false,
            ..bucket_cfg
        };
        let mut a = Frontier::for_config(&bucket_cfg);
        let mut b = Frontier::for_config(&heap_cfg);
        let entries = [(512u64, 4u32), (512, 1), (8, 2), (4096, 0), (8, 9)];
        for (k, id) in entries {
            a.push(k, id);
            b.push(k, id);
        }
        for _ in 0..entries.len() {
            assert_eq!(a.pop(), b.pop());
        }
        assert_eq!(a.pop(), None);
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn clear_resets_both_variants() {
        for bucket in [true, false] {
            let cfg = SearchConfig {
                bucket_queue: bucket,
                ..SearchConfig::default()
            };
            let mut f = Frontier::for_config(&cfg);
            f.push(10, 1);
            f.push(20, 2);
            assert_eq!(f.max_len(), 2);
            f.clear();
            assert!(f.is_empty());
            assert_eq!(f.max_len(), 0);
        }
    }
}
