//! Shared cost-model parameters.

use tpl_geom::Dbu;

/// Parameters of the traditional (non-colour) part of the routing cost.
///
/// These correspond to `Cost_trad` in Eq. (1) of the paper and are shared by
/// the TPL-unaware baseline, the DAC'12 baseline and Mr.TPL so that runtime
/// and quality comparisons isolate the colour-handling strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// Cost per database unit of preferred-direction wire.
    pub unit_wire: f64,
    /// Multiplier applied to wrong-way (non-preferred axis) wire.
    pub wrong_way_mult: f64,
    /// Cost of one via.
    pub via: f64,
    /// Additional cost per database unit of wire outside the route guide.
    pub out_of_guide: f64,
    /// Cost of stepping onto a vertex already occupied by another net.
    /// Kept finite so negotiation-based rip-up and reroute can resolve it.
    pub occupied: f64,
    /// Cost of stepping onto a blocked (obstacle) vertex.  Effectively
    /// infinite.
    pub blocked: f64,
    /// Multiplier for accumulated history cost during negotiation.
    pub history_weight: f64,
    /// Extra multiplier applied to planar wire on the lowest layer (M1).
    /// Real detailed routers keep M1 for pin access; through-routing on M1
    /// runs straight past foreign pins and is the main source of
    /// wire-to-pin colour conflicts, so it is discouraged.
    pub base_layer_mult: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            unit_wire: 1.0,
            wrong_way_mult: 2.0,
            via: 40.0,
            out_of_guide: 1.0,
            occupied: 5_000.0,
            blocked: 1.0e12,
            history_weight: 1.0,
            base_layer_mult: 4.0,
        }
    }
}

impl CostParams {
    /// The cost of `len` database units of wire, preferred direction.
    #[inline]
    pub fn wire_cost(&self, len: Dbu) -> f64 {
        self.unit_wire * len as f64
    }

    /// The cost of `len` database units of wrong-way wire.
    #[inline]
    pub fn wrong_way_cost(&self, len: Dbu) -> f64 {
        self.unit_wire * self.wrong_way_mult * len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrong_way_is_more_expensive() {
        let p = CostParams::default();
        assert!(p.wrong_way_cost(20) > p.wire_cost(20));
        assert_eq!(p.wire_cost(20), 20.0);
    }

    #[test]
    fn blocked_dwarfs_everything_else() {
        let p = CostParams::default();
        assert!(p.blocked > p.occupied * 1000.0);
    }
}
