//! Property-based tests for the grid substrate.

use proptest::prelude::*;
use tpl_design::RoutedNet;
use tpl_grid::{path_to_routed_net, GridGraph, PinCoverage, VertexId};
use tpl_ispd::CaseParams;

fn small_grid() -> (tpl_design::Design, GridGraph) {
    let design = CaseParams::ispd18_like(1).scaled(0.4).generate();
    let grid = GridGraph::build(&design);
    (design, grid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coords_roundtrip(raw in 0u32..10_000) {
        let (_, grid) = small_grid();
        let v = VertexId::new(raw % grid.num_vertices() as u32);
        let (l, x, y) = grid.coords(v);
        prop_assert_eq!(grid.vertex(l, x, y), v);
    }

    #[test]
    fn neighbors_are_symmetric(raw in 0u32..10_000) {
        let (_, grid) = small_grid();
        let v = VertexId::new(raw % grid.num_vertices() as u32);
        for (dir, n) in grid.neighbors(v) {
            prop_assert_eq!(grid.neighbor(n, dir.opposite()), Some(v));
            // Neighbouring points are exactly one pitch apart for planar
            // moves and identical for vias.
            let dp = grid.point_of(v).manhattan(&grid.point_of(n));
            if dir.is_via() {
                prop_assert_eq!(dp, 0);
            } else {
                prop_assert_eq!(dp, grid.pitch());
            }
        }
    }

    #[test]
    fn random_walk_paths_convert_to_consistent_geometry(
        seed in any::<u64>(),
        len in 2usize..60,
    ) {
        let (_, grid) = small_grid();
        // Deterministic pseudo-random walk over the grid.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut v = VertexId::new((next() % grid.num_vertices()) as u32);
        let mut path = vec![v];
        let mut planar_steps = 0i64;
        let mut via_steps = 0usize;
        for _ in 0..len {
            let neighbors: Vec<_> = grid.neighbors(v).collect();
            let (dir, n) = neighbors[next() % neighbors.len()];
            // Avoid immediately backtracking to keep runs interesting but
            // still valid.
            if path.len() >= 2 && path[path.len() - 2] == n {
                continue;
            }
            if dir.is_via() { via_steps += 1; } else { planar_steps += 1; }
            path.push(n);
            v = n;
        }
        let mut rn = RoutedNet::new();
        path_to_routed_net(&grid, &path, &mut rn);
        prop_assert_eq!(rn.wirelength(), planar_steps * grid.pitch());
        prop_assert_eq!(rn.via_count(), via_steps);
    }
}

#[test]
fn every_pin_of_the_benchmark_gets_coverage() {
    let (design, grid) = small_grid();
    let cov = PinCoverage::build(&grid, &design);
    for pin in design.pins() {
        let vs = cov.vertices(pin.id());
        assert!(!vs.is_empty(), "pin {} has no access vertex", pin.name());
        for v in vs {
            // Coverage stays on the pin's layer set.
            let layer = grid.layer_of(*v);
            assert!(
                pin.shapes().iter().any(|(l, _)| *l == layer),
                "pin {} covered on foreign layer",
                pin.name()
            );
        }
    }
}
