//! Property-based tests for the colour substrate.

use proptest::prelude::*;
use tpl_color::{ColorMap, ColorState, ColoredLayout, Feature, Mask};
use tpl_design::{LayerId, NetId};
use tpl_geom::Rect;

fn arb_state() -> impl Strategy<Value = ColorState> {
    (0u8..8).prop_map(ColorState::from_bits)
}

fn arb_mask() -> impl Strategy<Value = Mask> {
    (0usize..3).prop_map(Mask::from_index)
}

proptest! {
    #[test]
    fn intersection_is_subset_of_both(a in arb_state(), b in arb_state()) {
        let i = a.intersect(b);
        for m in i.candidates() {
            prop_assert!(a.contains(m));
            prop_assert!(b.contains(m));
        }
        prop_assert!(i.len() <= a.len().min(b.len()));
    }

    #[test]
    fn union_contains_both(a in arb_state(), b in arb_state()) {
        let u = a.union(b);
        for m in a.candidates().chain(b.candidates()) {
            prop_assert!(u.contains(m));
        }
        prop_assert_eq!(a.shares_color(b), !a.intersect(b).is_empty());
    }

    #[test]
    fn with_and_without_are_inverse(a in arb_state(), m in arb_mask()) {
        prop_assert!(a.with(m).contains(m));
        prop_assert!(!a.without(m).contains(m));
        prop_assert_eq!(a.with(m).without(m), a.without(m));
    }

    #[test]
    fn single_agrees_with_len(a in arb_state()) {
        match a.single() {
            Some(m) => {
                prop_assert_eq!(a.len(), 1);
                prop_assert!(a.contains(m));
            }
            None => prop_assert!(a.len() != 1),
        }
    }

    #[test]
    fn display_roundtrips_through_bits(a in arb_state()) {
        let text = a.to_string();
        let bits = u8::from_str_radix(&text, 2).unwrap();
        prop_assert_eq!(ColorState::from_bits(bits), a);
    }

    /// Random wire soup: the number of conflicts counted by ColoredLayout
    /// equals a brute-force O(n^2) recount, and colouring every wire with a
    /// distinct-mask greedy scheme never *increases* conflicts relative to
    /// all-same-mask colouring.
    #[test]
    fn conflict_count_matches_bruteforce(
        wires in prop::collection::vec(
            (0u32..6, 0i64..30, 0i64..30, 1i64..10, any::<bool>(), 0usize..3),
            1..25
        )
    ) {
        let die = Rect::from_coords(0, 0, 2000, 2000);
        let dcolor = 45;
        let mut layout = ColoredLayout::new(die, 2, dcolor);
        let mut features = Vec::new();
        for (net, gx, gy, len, horizontal, mask) in wires {
            let x = gx * 20;
            let y = gy * 20;
            let rect = if horizontal {
                Rect::from_coords(x, y, x + len * 20, y + 8)
            } else {
                Rect::from_coords(x, y, x + 8, y + len * 20)
            };
            let f = Feature::wire(NetId::new(net), LayerId::new(0), rect, Some(Mask::from_index(mask)));
            features.push(f);
            layout.add(f);
        }
        // Brute force recount.
        let mut expected = 0;
        for i in 0..features.len() {
            for j in (i + 1)..features.len() {
                let (a, b) = (&features[i], &features[j]);
                if a.net != b.net
                    && a.mask == b.mask
                    && a.rect.spacing_to(&b.rect) < dcolor
                {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(layout.count_conflicts(), expected);
    }

    /// The ColorMap's mask pressure around a rectangle equals a brute-force
    /// recount over the inserted features.
    #[test]
    fn mask_pressure_matches_bruteforce(
        wires in prop::collection::vec(
            (0u32..5, 0i64..40, 0i64..40, 1i64..8, 0usize..3),
            1..20
        ),
        query in (0i64..40, 0i64..40, 1i64..8),
    ) {
        let die = Rect::from_coords(0, 0, 2000, 2000);
        let dcolor = 45;
        let mut map = ColorMap::new(die, 2, dcolor);
        let mut features = Vec::new();
        for (net, gx, gy, len, mask) in wires {
            let rect = Rect::from_coords(gx * 20, gy * 20, gx * 20 + len * 20, gy * 20 + 8);
            let f = Feature::wire(NetId::new(net), LayerId::new(0), rect, Some(Mask::from_index(mask)));
            features.push(f);
            map.insert(f);
        }
        let qrect = Rect::from_coords(query.0 * 20, query.1 * 20, query.0 * 20 + query.2 * 20, query.1 * 20 + 8);
        let qnet = NetId::new(99);
        let pressure = map.mask_pressure(qnet, LayerId::new(0), &qrect);
        let mut expected = [0usize; 3];
        for f in &features {
            if f.rect.spacing_to(&qrect) < dcolor {
                expected[f.mask.unwrap().index()] += 1;
            }
        }
        prop_assert_eq!(pressure, expected);
    }

    /// Removing a net from the ColorMap removes exactly its features.
    #[test]
    fn remove_net_is_exact(
        wires in prop::collection::vec((0u32..4, 0i64..40, 0i64..40, 0usize..3), 1..30),
        victim in 0u32..4,
    ) {
        let die = Rect::from_coords(0, 0, 2000, 2000);
        let mut map = ColorMap::new(die, 1, 45);
        let mut victim_count = 0;
        for (net, gx, gy, mask) in &wires {
            let rect = Rect::from_coords(gx * 20, gy * 20, gx * 20 + 20, gy * 20 + 8);
            map.insert(Feature::wire(NetId::new(*net), LayerId::new(0), rect, Some(Mask::from_index(*mask))));
            if *net == victim {
                victim_count += 1;
            }
        }
        let before = map.len();
        let removed = map.remove_net(NetId::new(victim));
        prop_assert_eq!(removed, victim_count);
        prop_assert_eq!(map.len(), before - victim_count);
        // No live feature of the victim remains.
        prop_assert!(map.live_features().all(|f| f.net != Some(NetId::new(victim))));
    }
}
