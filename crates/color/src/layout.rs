//! Counting conflicts and stitches on a finished, coloured layout.

use crate::{Feature, FeatureKind, Mask};
use tpl_design::{LayerId, NetId};
use tpl_geom::{BinIndex, Dbu, Rect};

/// A colour conflict: two features of different nets printed on the same mask
/// closer than `Dcolor`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictPair {
    /// Index of the first feature (into the layout's feature list).
    pub a: usize,
    /// Index of the second feature.
    pub b: usize,
    /// The layer the conflict happens on.
    pub layer: LayerId,
    /// The shared mask.
    pub mask: Mask,
}

/// A stitch: two touching features of the *same* net on the same layer
/// printed on different masks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StitchSite {
    /// The net the stitch belongs to.
    pub net: NetId,
    /// The layer of the stitch.
    pub layer: LayerId,
    /// The index of the first feature.
    pub a: usize,
    /// The index of the second feature.
    pub b: usize,
}

/// Aggregate statistics of a coloured layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayoutStats {
    /// Number of colour conflicts (unordered feature pairs).
    pub conflicts: usize,
    /// Number of stitches.
    pub stitches: usize,
    /// Number of features that never received a mask.
    pub uncolored: usize,
    /// Total number of features.
    pub features: usize,
}

/// A fully coloured layout ready for evaluation.
///
/// The evaluation mirrors the paper's tables: the **conflict** column counts
/// unordered pairs of different-net features on the same layer and the same
/// mask with spacing below `Dcolor`; the **stitch** column counts mask
/// changes inside a net (touching same-net features with different masks).
///
/// # Examples
///
/// ```
/// use tpl_color::{ColoredLayout, Feature, Mask};
/// use tpl_design::{LayerId, NetId};
/// use tpl_geom::Rect;
///
/// let mut layout = ColoredLayout::new(Rect::from_coords(0, 0, 1000, 1000), 2, 45);
/// layout.add(Feature::wire(NetId::new(0), LayerId::new(0),
///     Rect::from_coords(0, 0, 200, 8), Some(Mask::Red)));
/// layout.add(Feature::wire(NetId::new(1), LayerId::new(0),
///     Rect::from_coords(0, 20, 200, 28), Some(Mask::Red)));
/// assert_eq!(layout.count_conflicts(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ColoredLayout {
    die: Rect,
    num_layers: usize,
    dcolor: Dbu,
    features: Vec<Feature>,
}

impl ColoredLayout {
    /// Creates an empty layout.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers` is zero or `dcolor` is not positive.
    pub fn new(die: Rect, num_layers: usize, dcolor: Dbu) -> Self {
        assert!(num_layers > 0 && dcolor > 0, "invalid layout parameters");
        Self {
            die,
            num_layers,
            dcolor,
            features: Vec::new(),
        }
    }

    /// Adds a feature and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the feature's layer is out of range.
    pub fn add(&mut self, feature: Feature) -> usize {
        assert!(feature.layer.index() < self.num_layers);
        self.features.push(feature);
        self.features.len() - 1
    }

    /// The features of the layout.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// The colour-spacing distance used for conflict counting.
    pub fn dcolor(&self) -> Dbu {
        self.dcolor
    }

    fn layer_indexes(&self) -> Vec<BinIndex> {
        let bin = (4 * self.dcolor).max(64);
        let mut idx: Vec<BinIndex> = (0..self.num_layers)
            .map(|_| BinIndex::new(self.die, bin))
            .collect();
        for (i, f) in self.features.iter().enumerate() {
            idx[f.layer.index()].insert(i as u64, f.rect);
        }
        idx
    }

    fn conflict_pairs(&self, include_pin_pairs: bool) -> Vec<ConflictPair> {
        let idx = self.layer_indexes();
        let mut out = Vec::new();
        for (i, f) in self.features.iter().enumerate() {
            let (Some(net_i), Some(mask_i)) = (f.net, f.mask) else {
                continue;
            };
            let window = f.rect.expanded(self.dcolor - 1);
            for j in idx[f.layer.index()].query(&window) {
                let j = j as usize;
                if j <= i {
                    continue;
                }
                let g = &self.features[j];
                let (Some(net_j), Some(mask_j)) = (g.net, g.mask) else {
                    continue;
                };
                if net_i == net_j || mask_i != mask_j {
                    continue;
                }
                let both_pins = f.kind == FeatureKind::Pin && g.kind == FeatureKind::Pin;
                if both_pins != include_pin_pairs {
                    continue;
                }
                if f.rect.spacing_to(&g.rect) < self.dcolor {
                    out.push(ConflictPair {
                        a: i,
                        b: j,
                        layer: f.layer,
                        mask: mask_i,
                    });
                }
            }
        }
        out
    }

    /// All routing-induced colour conflicts, each unordered pair reported
    /// once.
    ///
    /// Pairs where *both* features are pins are excluded here: pin geometry
    /// is a fixed input that no router (or decomposer working on a routed
    /// layout) can change, so such conflicts are a property of the benchmark
    /// rather than of the routing/colouring method.  They are available
    /// separately through [`ColoredLayout::input_conflicts`], and every
    /// method in the evaluation is measured under the same rule.
    pub fn conflicts(&self) -> Vec<ConflictPair> {
        self.conflict_pairs(false)
    }

    /// Pin-to-pin colour conflicts (intrinsic to the input pin fabric).
    pub fn input_conflicts(&self) -> Vec<ConflictPair> {
        self.conflict_pairs(true)
    }

    /// Number of routing-induced colour conflicts.
    pub fn count_conflicts(&self) -> usize {
        self.conflicts().len()
    }

    /// All stitches, each unordered pair reported once.
    ///
    /// Only wire and pin features participate; a mask change against an
    /// obstacle is not a stitch.
    pub fn stitches(&self) -> Vec<StitchSite> {
        let idx = self.layer_indexes();
        let mut out = Vec::new();
        for (i, f) in self.features.iter().enumerate() {
            let (Some(net_i), Some(mask_i)) = (f.net, f.mask) else {
                continue;
            };
            if f.kind == FeatureKind::Obstacle {
                continue;
            }
            for j in idx[f.layer.index()].query(&f.rect) {
                let j = j as usize;
                if j <= i {
                    continue;
                }
                let g = &self.features[j];
                let (Some(net_j), Some(mask_j)) = (g.net, g.mask) else {
                    continue;
                };
                if g.kind == FeatureKind::Obstacle {
                    continue;
                }
                if net_i != net_j || mask_i == mask_j {
                    continue;
                }
                if f.rect.intersects(&g.rect) {
                    out.push(StitchSite {
                        net: net_i,
                        layer: f.layer,
                        a: i,
                        b: j,
                    });
                }
            }
        }
        out
    }

    /// Number of stitches.
    pub fn count_stitches(&self) -> usize {
        self.stitches().len()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> LayoutStats {
        LayoutStats {
            conflicts: self.count_conflicts(),
            stitches: self.count_stitches(),
            uncolored: self
                .features
                .iter()
                .filter(|f| f.net.is_some() && f.mask.is_none())
                .count(),
            features: self.features.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> ColoredLayout {
        ColoredLayout::new(Rect::from_coords(0, 0, 1000, 1000), 3, 45)
    }

    fn wire(net: u32, layer: u32, rect: Rect, mask: Mask) -> Feature {
        Feature::wire(NetId::new(net), LayerId::new(layer), rect, Some(mask))
    }

    #[test]
    fn same_mask_close_wires_conflict() {
        let mut l = layout();
        l.add(wire(0, 0, Rect::from_coords(0, 0, 200, 8), Mask::Red));
        l.add(wire(1, 0, Rect::from_coords(0, 20, 200, 28), Mask::Red));
        assert_eq!(l.count_conflicts(), 1);
        assert_eq!(l.conflicts()[0].mask, Mask::Red);
    }

    #[test]
    fn different_masks_do_not_conflict() {
        let mut l = layout();
        l.add(wire(0, 0, Rect::from_coords(0, 0, 200, 8), Mask::Red));
        l.add(wire(1, 0, Rect::from_coords(0, 20, 200, 28), Mask::Green));
        assert_eq!(l.count_conflicts(), 0);
    }

    #[test]
    fn far_apart_same_mask_wires_do_not_conflict() {
        let mut l = layout();
        l.add(wire(0, 0, Rect::from_coords(0, 0, 200, 8), Mask::Red));
        l.add(wire(1, 0, Rect::from_coords(0, 60, 200, 68), Mask::Red));
        assert_eq!(l.count_conflicts(), 0);
    }

    #[test]
    fn same_net_never_conflicts_with_itself() {
        let mut l = layout();
        l.add(wire(0, 0, Rect::from_coords(0, 0, 200, 8), Mask::Red));
        l.add(wire(0, 0, Rect::from_coords(0, 20, 200, 28), Mask::Red));
        assert_eq!(l.count_conflicts(), 0);
    }

    #[test]
    fn conflicts_are_per_layer() {
        let mut l = layout();
        l.add(wire(0, 0, Rect::from_coords(0, 0, 200, 8), Mask::Blue));
        l.add(wire(1, 1, Rect::from_coords(0, 20, 200, 28), Mask::Blue));
        assert_eq!(l.count_conflicts(), 0);
    }

    #[test]
    fn four_packed_wires_cannot_avoid_a_conflict_with_three_masks() {
        // The Fig. 1(a) situation: four parallel wires on adjacent tracks
        // (pitch 20 < dcolor 45 even two tracks apart).  Whatever the masks,
        // at least one pair conflicts; with a "best" colouring exactly one.
        let mut l = layout();
        l.add(wire(0, 0, Rect::from_coords(0, 0, 400, 8), Mask::Red));
        l.add(wire(1, 0, Rect::from_coords(0, 20, 400, 28), Mask::Green));
        l.add(wire(2, 0, Rect::from_coords(0, 40, 400, 48), Mask::Blue));
        l.add(wire(3, 0, Rect::from_coords(0, 60, 400, 68), Mask::Green));
        // Wires at y=20 and y=60 are 32 apart (< 45) and share green.
        assert_eq!(l.count_conflicts(), 1);
    }

    #[test]
    fn touching_same_net_different_masks_is_a_stitch() {
        let mut l = layout();
        l.add(wire(0, 0, Rect::from_coords(0, 0, 100, 8), Mask::Red));
        l.add(wire(0, 0, Rect::from_coords(100, 0, 200, 8), Mask::Green));
        assert_eq!(l.count_stitches(), 1);
        assert_eq!(l.count_conflicts(), 0);
        let s = l.stitches();
        assert_eq!(s[0].net, NetId::new(0));
    }

    #[test]
    fn touching_same_net_same_mask_is_not_a_stitch() {
        let mut l = layout();
        l.add(wire(0, 0, Rect::from_coords(0, 0, 100, 8), Mask::Red));
        l.add(wire(0, 0, Rect::from_coords(100, 0, 200, 8), Mask::Red));
        assert_eq!(l.count_stitches(), 0);
    }

    #[test]
    fn disjoint_same_net_different_masks_is_not_a_stitch() {
        let mut l = layout();
        l.add(wire(0, 0, Rect::from_coords(0, 0, 100, 8), Mask::Red));
        l.add(wire(0, 0, Rect::from_coords(300, 0, 400, 8), Mask::Green));
        assert_eq!(l.count_stitches(), 0);
    }

    #[test]
    fn uncolored_features_are_reported_in_stats() {
        let mut l = layout();
        l.add(Feature::wire(
            NetId::new(0),
            LayerId::new(0),
            Rect::from_coords(0, 0, 100, 8),
            None,
        ));
        l.add(wire(1, 0, Rect::from_coords(0, 20, 100, 28), Mask::Red));
        let stats = l.stats();
        assert_eq!(stats.uncolored, 1);
        assert_eq!(stats.features, 2);
        assert_eq!(stats.conflicts, 0);
    }

    #[test]
    fn pin_to_pin_pairs_are_reported_as_input_conflicts_only() {
        let mut l = layout();
        l.add(Feature::pin(
            NetId::new(0),
            LayerId::new(0),
            Rect::from_coords(0, 0, 8, 8),
            Some(Mask::Red),
        ));
        l.add(Feature::pin(
            NetId::new(1),
            LayerId::new(0),
            Rect::from_coords(0, 30, 8, 38),
            Some(Mask::Red),
        ));
        // Fixed pin geometry: not counted as a routing conflict...
        assert_eq!(l.count_conflicts(), 0);
        // ...but visible through the input-conflict accessor.
        assert_eq!(l.input_conflicts().len(), 1);
        // A wire next to a same-mask pin is a routing conflict.
        l.add(wire(2, 0, Rect::from_coords(0, 60, 200, 68), Mask::Red));
        assert_eq!(l.count_conflicts(), 1);
    }

    #[test]
    fn obstacles_do_not_create_stitches() {
        let mut l = layout();
        l.add(wire(0, 0, Rect::from_coords(0, 0, 100, 8), Mask::Red));
        l.add(Feature::obstacle(
            LayerId::new(0),
            Rect::from_coords(100, 0, 200, 8),
            Some(Mask::Green),
        ));
        assert_eq!(l.count_stitches(), 0);
    }
}
