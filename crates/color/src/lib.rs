//! Colour state, mask model, conflict and stitch machinery for triple
//! patterning lithography.
//!
//! The crate provides the building blocks Mr.TPL and the baselines share:
//!
//! * [`Mask`] — the three TPL masks (red, green, blue).
//! * [`ColorState`] — the paper's 3-bit candidate set (Table I): during path
//!   search a wire segment may still be printable on several masks at once.
//! * [`ColorSetArena`], [`VerSetId`], [`SegSetId`] — the vertice colour-set /
//!   segment colour-set structures of Algorithm 3 (backtrace); a `segSet`
//!   is a stitch-free region whose colour state is the intersection of its
//!   members, and a stitch is exactly a boundary between two `segSet`s.
//! * [`ColorMap`] — an incremental spatial map of already-coloured features,
//!   answering "how many features of another net with mask *m* lie within
//!   `Dcolor` of this rectangle?", the quantity behind `Cost_color` in
//!   Eq. (1).
//! * [`ColoredLayout`] — a finished, fully coloured layout on which colour
//!   conflicts and stitches are counted for the evaluation tables.
//!
//! # Examples
//!
//! ```
//! use tpl_color::{ColorState, Mask};
//!
//! let s = ColorState::all();
//! let t = s.without(Mask::Green);
//! assert_eq!(t.to_string(), "101");
//! assert_eq!(t.candidates().count(), 2);
//! assert_eq!(t.intersect(ColorState::from_mask(Mask::Red)).single(), Some(Mask::Red));
//! ```

#![warn(missing_docs)]

mod colormap;
mod layout;
mod mask;
mod sets;
mod state;

pub use colormap::{ColorMap, Feature, FeatureKind};
pub use layout::{ColoredLayout, ConflictPair, LayoutStats, StitchSite};
pub use mask::Mask;
pub use sets::{ColorSetArena, SegSetId, VerSetId};
pub use state::ColorState;
