//! Vertice colour-sets and segment colour-sets (Definitions 2 and 3).

use crate::{ColorState, Mask};

/// Identifier of a vertice colour-set (`verSet`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VerSetId(pub u32);

/// Identifier of a segment colour-set (`segSet`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegSetId(pub u32);

#[derive(Clone, Debug)]
struct VerSet {
    state: ColorState,
    seg: SegSetId,
    members: usize,
}

#[derive(Clone, Debug)]
struct SegSet {
    state: ColorState,
    assigned: Option<Mask>,
}

/// Arena holding the verSet / segSet structures used by the backtrace phase
/// (Algorithm 3).
///
/// * A **verSet** groups vertices that were searched consecutively, are
///   adjacent on the layout and share the same colour state.
/// * A **segSet** groups verSets that can be printed on one mask without a
///   stitch; two connected vertices belong to different segSets only when a
///   stitch is introduced between them.
///
/// The arena only tracks states and membership counts; the router keeps the
/// per-vertex pointer (`verSetPtr` in the paper) itself.
///
/// # Examples
///
/// ```
/// use tpl_color::{ColorSetArena, ColorState, Mask};
/// let mut arena = ColorSetArena::new();
/// let v = arena.make_ver_set(ColorState::all());
/// let seg = arena.seg_of(v);
/// arena.narrow_seg_state(seg, ColorState::from_mask(Mask::Red));
/// assert_eq!(arena.seg_state(seg).single(), Some(Mask::Red));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ColorSetArena {
    ver_sets: Vec<VerSet>,
    seg_sets: Vec<SegSet>,
}

impl ColorSetArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fresh verSet (and its own fresh segSet) with the given
    /// colour state, mirroring `make_verSet` / `make_segSet` in Algorithm 3.
    pub fn make_ver_set(&mut self, state: ColorState) -> VerSetId {
        let seg = SegSetId(self.seg_sets.len() as u32);
        self.seg_sets.push(SegSet {
            state,
            assigned: None,
        });
        let ver = VerSetId(self.ver_sets.len() as u32);
        self.ver_sets.push(VerSet {
            state,
            seg,
            members: 1,
        });
        ver
    }

    /// Number of verSets created so far.
    pub fn num_ver_sets(&self) -> usize {
        self.ver_sets.len()
    }

    /// Number of segSets created so far.
    pub fn num_seg_sets(&self) -> usize {
        self.seg_sets.len()
    }

    /// The colour state of a verSet.
    pub fn ver_state(&self, id: VerSetId) -> ColorState {
        self.ver_sets[id.0 as usize].state
    }

    /// The segSet a verSet currently belongs to.
    pub fn seg_of(&self, id: VerSetId) -> SegSetId {
        self.ver_sets[id.0 as usize].seg
    }

    /// Moves a verSet into another segSet (the pointer rewrite of
    /// Algorithm 3, line 14).
    pub fn set_seg_of(&mut self, ver: VerSetId, seg: SegSetId) {
        self.ver_sets[ver.0 as usize].seg = seg;
    }

    /// Records one more vertex joining a verSet.
    pub fn add_member(&mut self, ver: VerSetId) {
        self.ver_sets[ver.0 as usize].members += 1;
    }

    /// Number of vertices recorded in a verSet.
    pub fn members(&self, ver: VerSetId) -> usize {
        self.ver_sets[ver.0 as usize].members
    }

    /// The colour state of a segSet.
    pub fn seg_state(&self, id: SegSetId) -> ColorState {
        self.seg_sets[id.0 as usize].state
    }

    /// Replaces the colour state of a segSet (`change_state` in Algorithm 3).
    pub fn change_seg_state(&mut self, id: SegSetId, state: ColorState) {
        self.seg_sets[id.0 as usize].state = state;
    }

    /// Narrows the colour state of a segSet by intersecting it with `state`.
    /// Returns the new state.  If the intersection would be empty the state
    /// is left unchanged and `None` is returned — the caller must introduce a
    /// stitch instead.
    pub fn narrow_seg_state(&mut self, id: SegSetId, state: ColorState) -> Option<ColorState> {
        let current = self.seg_sets[id.0 as usize].state;
        let narrowed = current.intersect(state);
        if narrowed.is_empty() {
            None
        } else {
            self.seg_sets[id.0 as usize].state = narrowed;
            Some(narrowed)
        }
    }

    /// Commits a final mask for a segSet.
    ///
    /// # Panics
    ///
    /// Panics if the mask is not allowed by the segSet's colour state (this
    /// would silently manufacture a conflict, so it is a programming error).
    pub fn assign_mask(&mut self, id: SegSetId, mask: Mask) {
        let set = &mut self.seg_sets[id.0 as usize];
        assert!(
            set.state.contains(mask) || set.state.is_empty(),
            "mask {mask} is not a candidate of segSet state {}",
            set.state
        );
        set.assigned = Some(mask);
    }

    /// The mask assigned to a segSet, if already committed.
    pub fn assigned_mask(&self, id: SegSetId) -> Option<Mask> {
        self.seg_sets[id.0 as usize].assigned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_ver_set_creates_matching_seg_set() {
        let mut a = ColorSetArena::new();
        let v = a.make_ver_set(ColorState::from_bits(0b110));
        assert_eq!(a.num_ver_sets(), 1);
        assert_eq!(a.num_seg_sets(), 1);
        assert_eq!(a.ver_state(v), ColorState::from_bits(0b110));
        assert_eq!(a.seg_state(a.seg_of(v)), ColorState::from_bits(0b110));
        assert_eq!(a.members(v), 1);
    }

    #[test]
    fn narrowing_keeps_non_empty_intersections() {
        let mut a = ColorSetArena::new();
        let v = a.make_ver_set(ColorState::all());
        let seg = a.seg_of(v);
        assert_eq!(
            a.narrow_seg_state(seg, ColorState::from_bits(0b101)),
            Some(ColorState::from_bits(0b101))
        );
        assert_eq!(
            a.narrow_seg_state(seg, ColorState::from_mask(Mask::Blue)),
            Some(ColorState::from_mask(Mask::Blue))
        );
        // Disjoint narrowing is rejected and does not modify the state.
        assert_eq!(
            a.narrow_seg_state(seg, ColorState::from_mask(Mask::Red)),
            None
        );
        assert_eq!(a.seg_state(seg), ColorState::from_mask(Mask::Blue));
    }

    #[test]
    fn ver_sets_can_be_rewired_to_another_seg_set() {
        let mut a = ColorSetArena::new();
        let v1 = a.make_ver_set(ColorState::all());
        let v2 = a.make_ver_set(ColorState::from_bits(0b011));
        let seg1 = a.seg_of(v1);
        a.set_seg_of(v2, seg1);
        assert_eq!(a.seg_of(v2), seg1);
    }

    #[test]
    fn mask_assignment_respects_candidates() {
        let mut a = ColorSetArena::new();
        let v = a.make_ver_set(ColorState::from_bits(0b011));
        let seg = a.seg_of(v);
        a.assign_mask(seg, Mask::Green);
        assert_eq!(a.assigned_mask(seg), Some(Mask::Green));
    }

    #[test]
    #[should_panic(expected = "not a candidate")]
    fn assigning_a_non_candidate_mask_panics() {
        let mut a = ColorSetArena::new();
        let v = a.make_ver_set(ColorState::from_bits(0b011));
        let seg = a.seg_of(v);
        a.assign_mask(seg, Mask::Red);
    }

    #[test]
    fn member_counting() {
        let mut a = ColorSetArena::new();
        let v = a.make_ver_set(ColorState::all());
        a.add_member(v);
        a.add_member(v);
        assert_eq!(a.members(v), 3);
    }
}
