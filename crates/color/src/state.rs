//! The 3-bit colour state of Table I.

use crate::Mask;
use std::fmt;

/// A set of candidate masks for a wire segment, encoded in three bits
/// (`100` = red, `010` = green, `001` = blue), exactly as in Table I of the
/// paper.
///
/// During Mr.TPL's search a segment can keep several candidates alive at
/// once; the backtrace phase narrows every segment to a single mask.
///
/// # Examples
///
/// ```
/// use tpl_color::{ColorState, Mask};
/// let s = ColorState::from_mask(Mask::Red).union(ColorState::from_mask(Mask::Blue));
/// assert_eq!(s.to_string(), "101");
/// assert!(s.contains(Mask::Red));
/// assert!(!s.contains(Mask::Green));
/// assert_eq!(s.intersect(ColorState::from_mask(Mask::Blue)).single(), Some(Mask::Blue));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColorState(u8);

impl ColorState {
    /// The empty state (`000`): no mask is allowed.  In the paper's Table I
    /// this encoding reads "none color is allowed"; during routing it marks a
    /// dead end that forces a stitch or a conflict.
    pub const NONE: ColorState = ColorState(0);
    /// The full state (`111`): any mask is allowed.
    pub const ALL: ColorState = ColorState(0b111);

    /// Creates a state from raw bits (only the low three bits are kept).
    #[inline]
    pub const fn from_bits(bits: u8) -> Self {
        ColorState(bits & 0b111)
    }

    /// The state containing every mask.
    #[inline]
    pub const fn all() -> Self {
        Self::ALL
    }

    /// The empty state.
    #[inline]
    pub const fn none() -> Self {
        Self::NONE
    }

    /// The state containing exactly one mask.
    #[inline]
    pub const fn from_mask(mask: Mask) -> Self {
        ColorState(mask.bit())
    }

    /// The raw 3-bit encoding.
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// `true` if the state allows `mask`.
    #[inline]
    pub const fn contains(self, mask: Mask) -> bool {
        self.0 & mask.bit() != 0
    }

    /// `true` if no mask is allowed.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of allowed masks (0..=3).
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Set intersection: masks allowed by both states.
    #[inline]
    pub const fn intersect(self, other: ColorState) -> ColorState {
        ColorState(self.0 & other.0)
    }

    /// Set union: masks allowed by either state.
    #[inline]
    pub const fn union(self, other: ColorState) -> ColorState {
        ColorState(self.0 | other.0)
    }

    /// The state with `mask` removed.
    #[inline]
    pub const fn without(self, mask: Mask) -> ColorState {
        ColorState(self.0 & !mask.bit())
    }

    /// The state with `mask` added.
    #[inline]
    pub const fn with(self, mask: Mask) -> ColorState {
        ColorState(self.0 | mask.bit())
    }

    /// `true` if the two states share at least one mask (the "has common
    /// color" test of Algorithm 3).
    #[inline]
    pub const fn shares_color(self, other: ColorState) -> bool {
        self.0 & other.0 != 0
    }

    /// If exactly one mask is allowed, returns it.
    #[inline]
    pub fn single(self) -> Option<Mask> {
        if self.len() == 1 {
            self.candidates().next()
        } else {
            None
        }
    }

    /// The first allowed mask in (red, green, blue) order, used for
    /// deterministic tie-breaking when committing a final colour.
    #[inline]
    pub fn first(self) -> Option<Mask> {
        self.candidates().next()
    }

    /// Iterates over the allowed masks in deterministic order.
    pub fn candidates(self) -> impl Iterator<Item = Mask> {
        Mask::ALL.into_iter().filter(move |m| self.contains(*m))
    }
}

impl From<Mask> for ColorState {
    #[inline]
    fn from(mask: Mask) -> Self {
        ColorState::from_mask(mask)
    }
}

impl fmt::Display for ColorState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:03b}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_encodings() {
        assert_eq!(ColorState::none().to_string(), "000");
        assert_eq!(ColorState::from_mask(Mask::Red).to_string(), "100");
        assert_eq!(ColorState::from_mask(Mask::Green).to_string(), "010");
        assert_eq!(ColorState::from_mask(Mask::Blue).to_string(), "001");
        assert_eq!(
            ColorState::from_mask(Mask::Red)
                .with(Mask::Green)
                .to_string(),
            "110"
        );
        assert_eq!(
            ColorState::from_mask(Mask::Red)
                .with(Mask::Blue)
                .to_string(),
            "101"
        );
        assert_eq!(
            ColorState::from_mask(Mask::Green)
                .with(Mask::Blue)
                .to_string(),
            "011"
        );
        assert_eq!(ColorState::all().to_string(), "111");
    }

    #[test]
    fn set_operations() {
        let rg = ColorState::from_bits(0b110);
        let gb = ColorState::from_bits(0b011);
        assert_eq!(rg.intersect(gb), ColorState::from_mask(Mask::Green));
        assert_eq!(rg.union(gb), ColorState::all());
        assert!(rg.shares_color(gb));
        assert!(!ColorState::from_mask(Mask::Red).shares_color(ColorState::from_mask(Mask::Blue)));
        assert_eq!(rg.without(Mask::Red), ColorState::from_mask(Mask::Green));
        assert_eq!(rg.len(), 2);
    }

    #[test]
    fn single_and_first() {
        assert_eq!(ColorState::from_mask(Mask::Blue).single(), Some(Mask::Blue));
        assert_eq!(ColorState::all().single(), None);
        assert_eq!(ColorState::all().first(), Some(Mask::Red));
        assert_eq!(ColorState::none().first(), None);
        assert_eq!(ColorState::none().single(), None);
    }

    #[test]
    fn from_bits_masks_high_bits() {
        assert_eq!(ColorState::from_bits(0xFF), ColorState::all());
    }

    #[test]
    fn candidates_iterate_in_order() {
        let s = ColorState::from_bits(0b101);
        let v: Vec<Mask> = s.candidates().collect();
        assert_eq!(v, vec![Mask::Red, Mask::Blue]);
    }

    #[test]
    fn empty_state_is_empty() {
        assert!(ColorState::none().is_empty());
        assert!(!ColorState::from_mask(Mask::Red).is_empty());
        assert_eq!(ColorState::none().len(), 0);
    }
}
