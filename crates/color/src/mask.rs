//! The three lithography masks.

use std::fmt;

/// One of the three TPL masks.
///
/// The paper encodes masks as bits of the colour state: red = `100`,
/// green = `010`, blue = `001`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mask {
    /// Mask 1 (bit `100`).
    Red,
    /// Mask 2 (bit `010`).
    Green,
    /// Mask 3 (bit `001`).
    Blue,
}

impl Mask {
    /// All masks in deterministic order.
    pub const ALL: [Mask; 3] = [Mask::Red, Mask::Green, Mask::Blue];

    /// Dense index 0..3, usable for lookup tables.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Mask::Red => 0,
            Mask::Green => 1,
            Mask::Blue => 2,
        }
    }

    /// The bit this mask occupies in a [`crate::ColorState`].
    #[inline]
    pub const fn bit(self) -> u8 {
        match self {
            Mask::Red => 0b100,
            Mask::Green => 0b010,
            Mask::Blue => 0b001,
        }
    }

    /// The mask with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 3`.
    #[inline]
    pub fn from_index(idx: usize) -> Mask {
        Mask::ALL[idx]
    }
}

impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mask::Red => "red",
            Mask::Green => "green",
            Mask::Blue => "blue",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_and_bits_are_consistent() {
        for (i, m) in Mask::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
            assert_eq!(Mask::from_index(i), *m);
        }
        assert_eq!(
            Mask::Red.bit() | Mask::Green.bit() | Mask::Blue.bit(),
            0b111
        );
    }

    #[test]
    #[should_panic]
    fn from_index_rejects_out_of_range() {
        Mask::from_index(3);
    }

    #[test]
    fn display_names() {
        assert_eq!(Mask::Red.to_string(), "red");
        assert_eq!(Mask::Blue.to_string(), "blue");
    }
}
