//! Incremental spatial map of coloured features.

use crate::Mask;
use tpl_design::{LayerId, NetId};
use tpl_geom::{BinIndex, Dbu, Rect};

/// What kind of layout object a feature represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureKind {
    /// A routed wire segment.
    Wire,
    /// A pin shape.
    Pin,
    /// A pre-placed obstacle.
    Obstacle,
}

/// A coloured (or not-yet-coloured) rectangle on one layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Feature {
    /// The owning net; `None` for obstacles.
    pub net: Option<NetId>,
    /// The layer the feature sits on.
    pub layer: LayerId,
    /// The feature geometry.
    pub rect: Rect,
    /// The mask the feature is printed on, if decided.
    pub mask: Option<Mask>,
    /// The feature kind.
    pub kind: FeatureKind,
}

impl Feature {
    /// A wire feature.
    pub fn wire(net: NetId, layer: LayerId, rect: Rect, mask: Option<Mask>) -> Self {
        Feature {
            net: Some(net),
            layer,
            rect,
            mask,
            kind: FeatureKind::Wire,
        }
    }

    /// A pin feature.
    pub fn pin(net: NetId, layer: LayerId, rect: Rect, mask: Option<Mask>) -> Self {
        Feature {
            net: Some(net),
            layer,
            rect,
            mask,
            kind: FeatureKind::Pin,
        }
    }

    /// An obstacle feature.
    pub fn obstacle(layer: LayerId, rect: Rect, mask: Option<Mask>) -> Self {
        Feature {
            net: None,
            layer,
            rect,
            mask,
            kind: FeatureKind::Obstacle,
        }
    }
}

/// An incremental spatial index of coloured features.
///
/// Routers insert each net's coloured wires as they commit them and query the
/// map while routing later nets: [`ColorMap::mask_pressure`] answers "how
/// many features of *other* nets printed on mask *m* lie within `Dcolor` of
/// this rectangle?" — the per-mask colour cost of Eq. (1).  Rip-up removes a
/// net's features again.
#[derive(Clone, Debug)]
pub struct ColorMap {
    dcolor: Dbu,
    per_layer: Vec<BinIndex>,
    features: Vec<Feature>,
    alive: Vec<bool>,
}

impl ColorMap {
    /// Creates an empty map covering `die` with `num_layers` layers and the
    /// given colour-spacing distance.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers` is zero or `dcolor` is not positive.
    pub fn new(die: Rect, num_layers: usize, dcolor: Dbu) -> Self {
        assert!(num_layers > 0, "need at least one layer");
        assert!(dcolor > 0, "dcolor must be positive");
        let bin = (4 * dcolor).max(64);
        Self {
            dcolor,
            per_layer: (0..num_layers).map(|_| BinIndex::new(die, bin)).collect(),
            features: Vec::new(),
            alive: Vec::new(),
        }
    }

    /// The colour-spacing distance the map was built with.
    #[inline]
    pub fn dcolor(&self) -> Dbu {
        self.dcolor
    }

    /// Number of live features.
    pub fn len(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// `true` when the map holds no live features.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a feature and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the feature's layer is out of range.
    pub fn insert(&mut self, feature: Feature) -> usize {
        assert!(
            feature.layer.index() < self.per_layer.len(),
            "feature layer {} out of range",
            feature.layer
        );
        let id = self.features.len();
        self.per_layer[feature.layer.index()].insert(id as u64, feature.rect);
        self.features.push(feature);
        self.alive.push(true);
        id
    }

    /// Removes every live feature of the given net (rip-up).  Returns how
    /// many features were removed.
    pub fn remove_net(&mut self, net: NetId) -> usize {
        let mut removed = 0;
        for (id, feature) in self.features.iter().enumerate() {
            if self.alive[id] && feature.net == Some(net) {
                self.alive[id] = false;
                self.per_layer[feature.layer.index()].remove(id as u64, feature.rect);
                removed += 1;
            }
        }
        removed
    }

    /// Live features of other nets within `dcolor` of `rect` on `layer`.
    ///
    /// Features belonging to `net` itself are excluded (a net never conflicts
    /// with itself), as are features without an assigned mask.
    pub fn colored_neighbors(
        &self,
        net: NetId,
        layer: LayerId,
        rect: &Rect,
    ) -> impl Iterator<Item = &Feature> {
        let window = rect.expanded(self.dcolor - 1);
        let ids = self.per_layer[layer.index()].query(&window);
        let dcolor = self.dcolor;
        let rect = *rect;
        ids.into_iter().filter_map(move |id| {
            let id = id as usize;
            if !self.alive[id] {
                return None;
            }
            let f = &self.features[id];
            if f.net == Some(net) || f.mask.is_none() {
                return None;
            }
            (f.rect.spacing_to(&rect) < dcolor).then_some(f)
        })
    }

    /// Per-mask pressure around a rectangle: `result[m]` is the number of
    /// live features of *other* nets printed on mask `m` within `dcolor`.
    pub fn mask_pressure(&self, net: NetId, layer: LayerId, rect: &Rect) -> [usize; 3] {
        let mut pressure = [0usize; 3];
        for f in self.colored_neighbors(net, layer, rect) {
            if let Some(mask) = f.mask {
                pressure[mask.index()] += 1;
            }
        }
        pressure
    }

    /// All live features (mostly for building the final [`crate::ColoredLayout`]).
    pub fn live_features(&self) -> impl Iterator<Item = &Feature> {
        self.features
            .iter()
            .enumerate()
            .filter(|(i, _)| self.alive[*i])
            .map(|(_, f)| f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> ColorMap {
        ColorMap::new(Rect::from_coords(0, 0, 1000, 1000), 3, 45)
    }

    #[test]
    fn insert_and_query_pressure() {
        let mut m = map();
        m.insert(Feature::wire(
            NetId::new(0),
            LayerId::new(1),
            Rect::from_coords(100, 100, 200, 108),
            Some(Mask::Red),
        ));
        m.insert(Feature::wire(
            NetId::new(1),
            LayerId::new(1),
            Rect::from_coords(100, 120, 200, 128),
            Some(Mask::Green),
        ));
        // Query as net 2 near the two wires.
        let p = m.mask_pressure(
            NetId::new(2),
            LayerId::new(1),
            &Rect::from_coords(100, 140, 200, 148),
        );
        // The green wire is 12 dbu away (< 45); the red one is 32 away (< 45).
        assert_eq!(p, [1, 1, 0]);
        // Far away there is no pressure.
        let p = m.mask_pressure(
            NetId::new(2),
            LayerId::new(1),
            &Rect::from_coords(600, 600, 700, 608),
        );
        assert_eq!(p, [0, 0, 0]);
        // On a different layer there is no pressure either.
        let p = m.mask_pressure(
            NetId::new(2),
            LayerId::new(2),
            &Rect::from_coords(100, 140, 200, 148),
        );
        assert_eq!(p, [0, 0, 0]);
    }

    #[test]
    fn own_net_features_are_ignored() {
        let mut m = map();
        m.insert(Feature::wire(
            NetId::new(0),
            LayerId::new(0),
            Rect::from_coords(0, 0, 100, 8),
            Some(Mask::Blue),
        ));
        let p = m.mask_pressure(
            NetId::new(0),
            LayerId::new(0),
            &Rect::from_coords(0, 20, 100, 28),
        );
        assert_eq!(p, [0, 0, 0]);
    }

    #[test]
    fn uncolored_features_exert_no_pressure() {
        let mut m = map();
        m.insert(Feature::pin(
            NetId::new(0),
            LayerId::new(0),
            Rect::from_coords(0, 0, 10, 10),
            None,
        ));
        let p = m.mask_pressure(
            NetId::new(1),
            LayerId::new(0),
            &Rect::from_coords(0, 20, 10, 30),
        );
        assert_eq!(p, [0, 0, 0]);
    }

    #[test]
    fn remove_net_erases_its_features() {
        let mut m = map();
        m.insert(Feature::wire(
            NetId::new(3),
            LayerId::new(0),
            Rect::from_coords(0, 0, 100, 8),
            Some(Mask::Red),
        ));
        m.insert(Feature::wire(
            NetId::new(4),
            LayerId::new(0),
            Rect::from_coords(0, 30, 100, 38),
            Some(Mask::Green),
        ));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove_net(NetId::new(3)), 1);
        assert_eq!(m.len(), 1);
        let p = m.mask_pressure(
            NetId::new(9),
            LayerId::new(0),
            &Rect::from_coords(0, 10, 100, 18),
        );
        assert_eq!(p, [0, 1, 0]);
    }

    #[test]
    fn exactly_dcolor_away_is_not_a_neighbor() {
        let mut m = map();
        m.insert(Feature::wire(
            NetId::new(0),
            LayerId::new(0),
            Rect::from_coords(0, 0, 100, 10),
            Some(Mask::Red),
        ));
        // Spacing exactly dcolor (45) is legal: rule is `< dcolor`.
        let p = m.mask_pressure(
            NetId::new(1),
            LayerId::new(0),
            &Rect::from_coords(0, 55, 100, 65),
        );
        assert_eq!(p, [0, 0, 0]);
        // One dbu closer violates.
        let p = m.mask_pressure(
            NetId::new(1),
            LayerId::new(0),
            &Rect::from_coords(0, 54, 100, 64),
        );
        assert_eq!(p, [1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inserting_on_a_missing_layer_panics() {
        let mut m = map();
        m.insert(Feature::wire(
            NetId::new(0),
            LayerId::new(9),
            Rect::from_coords(0, 0, 10, 10),
            Some(Mask::Red),
        ));
    }
}
