//! Structured errors with source positions.

use std::fmt;
use tpl_design::DesignError;

/// A syntax error in a LEF or DEF source, located by line and column.
///
/// Both coordinates are 1-based, the way editors display them.  The message
/// names what the parser expected or rejected at that position; the error
/// never carries partial parse state, so callers can safely retry with a
/// fixed input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token (the last line for end-of-file).
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// What went wrong, in terms of the grammar.
    pub message: String,
}

impl ParseError {
    /// Creates an error at a position.
    pub fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Any failure while turning LEF/DEF sources into a routable design.
#[derive(Debug)]
#[non_exhaustive]
pub enum LefDefError {
    /// A syntax error in the LEF source.
    Lef(ParseError),
    /// A syntax error in the DEF source.
    Def(ParseError),
    /// The sources parsed but are semantically unusable together (unknown
    /// layer/macro/pin references, mismatched units, unsupported features).
    Lower(String),
    /// The lowered data failed `tpl-design`'s own validation.
    Design(DesignError),
    /// A source file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
}

impl fmt::Display for LefDefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LefDefError::Lef(e) => write!(f, "LEF: {e}"),
            LefDefError::Def(e) => write!(f, "DEF: {e}"),
            LefDefError::Lower(m) => write!(f, "lowering: {m}"),
            LefDefError::Design(e) => write!(f, "design validation: {e}"),
            LefDefError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
        }
    }
}

impl std::error::Error for LefDefError {}

impl From<DesignError> for LefDefError {
    fn from(e: DesignError) -> Self {
        LefDefError::Design(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_displays_position_first() {
        let e = ParseError::new(12, 7, "expected `;`");
        assert_eq!(e.to_string(), "line 12, column 7: expected `;`");
    }

    #[test]
    fn lefdef_error_tags_the_source() {
        let e = LefDefError::Def(ParseError::new(1, 1, "x"));
        assert!(e.to_string().starts_with("DEF: line 1"));
        let e = LefDefError::Lower("units differ".into());
        assert!(e.to_string().contains("units differ"));
    }
}
