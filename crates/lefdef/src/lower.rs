//! Lowering a parsed (LEF, DEF) pair into the `tpl-design` model.
//!
//! The lowering is the semantic half of ingestion: it cross-checks the two
//! sources (units, layer/macro/pin references), resolves component pin
//! geometry to absolute coordinates and produces a validated
//! [`Design`] — plus a [`RoutingSolution`] when the DEF carries `+ ROUTED`
//! wiring.
//!
//! Conventions of the subset:
//!
//! * Only net-referenced pins become design pins (a [`Design`] pin always
//!   belongs to a net).  Unreferenced DEF pins and unreferenced macro pin
//!   ports are kept as **colourable obstacles** so their metal still blocks
//!   and colours the layout.
//! * Macro `OBS` shapes are routing **blockages** (non-colourable).
//! * `SPECIALNETS` shapes are colourable obstacles under `+ USE SIGNAL` and
//!   blockages under every other use class (power/ground rails are not
//!   subject to triple patterning in this model).
//! * The TPL colour distance comes from the LEF `TPLCOLORSPACING`
//!   statement; without it, the canonical 2.25 × (minimum pitch) of the
//!   synthetic suites is assumed.

use crate::def::{DefDesign, DefTerminal, DefWire};
use crate::lef::{LefLibrary, LefMacro};
use crate::LefDefError;
use std::collections::HashMap;
use tpl_design::{
    Design, DesignBuilder, Layer, LayerId, NetId, RouteSegment, RoutedNet, RoutingSolution,
    Technology, ViaInstance,
};
use tpl_geom::{Point, Rect, Segment};

/// The result of lowering: the design plus any pre-routed wiring.
#[derive(Clone, Debug)]
pub struct LoweredDesign {
    /// The validated design.
    pub design: Design,
    /// The `+ ROUTED` wiring of the DEF, when any net carried some.
    pub routing: Option<RoutingSolution>,
}

fn lower_err(message: impl Into<String>) -> LefDefError {
    LefDefError::Lower(message.into())
}

/// Lowers a parsed LEF library and DEF design into the `tpl-design` model.
///
/// # Errors
///
/// [`LefDefError::Lower`] on unit mismatches and dangling references,
/// [`LefDefError::Design`] when `tpl-design`'s own validation rejects the
/// result (e.g. single-pin nets, geometry outside the die).
pub fn lower(lef: &LefLibrary, def: &DefDesign) -> Result<LoweredDesign, LefDefError> {
    if lef.dbu_per_micron != def.dbu_per_micron {
        return Err(lower_err(format!(
            "unit mismatch: LEF has {} database units per micron, DEF has {}",
            lef.dbu_per_micron, def.dbu_per_micron
        )));
    }
    if lef.layers.is_empty() {
        return Err(lower_err("the LEF defines no ROUTING layers"));
    }

    // Technology: LEF layer order is the stack order.
    let layers: Vec<Layer> = lef
        .layers
        .iter()
        .map(|l| {
            Layer::new(
                l.name.clone(),
                l.axis,
                l.pitch,
                l.offset,
                l.width,
                l.spacing,
            )
        })
        .collect();
    let min_pitch = lef.layers.iter().map(|l| l.pitch).min().unwrap_or(1);
    // Saturating: parsed pitches are bounded, but a hand-built library with
    // an absurd pitch should fail technology validation, not overflow here.
    let dcolor = lef
        .dcolor
        .unwrap_or_else(|| min_pitch.saturating_mul(2).saturating_add(min_pitch / 4));
    let tech = Technology::new(layers, dcolor, lef.dbu_per_micron)?;
    let layer_ids: HashMap<&str, u32> = lef
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| (l.name.as_str(), i as u32))
        .collect();
    let layer_id = |name: &str, what: &str| -> Result<u32, LefDefError> {
        layer_ids
            .get(name)
            .copied()
            .ok_or_else(|| lower_err(format!("{what} references unknown layer `{name}`")))
    };

    let macros: HashMap<&str, &LefMacro> =
        lef.macros.iter().map(|m| (m.name.as_str(), m)).collect();

    // Which pin names the NETS section references.
    let mut referenced: HashMap<String, bool> = HashMap::new();
    for net in &def.nets {
        for term in &net.terminals {
            referenced.insert(terminal_name(term), false);
        }
    }

    let mut builder = DesignBuilder::new(def.name.clone(), tech, def.die);
    let mut pin_ids: HashMap<String, tpl_design::PinId> = HashMap::new();
    // Unreferenced metal collected as colourable obstacles, after the
    // special nets and macro obstructions.
    let mut leftover: Vec<(u32, Rect)> = Vec::new();

    // Top-level DEF pins, in file order.
    for pin in &def.pins {
        let mut shapes: Vec<(LayerId, Rect)> = Vec::new();
        for (layer, rect) in &pin.shapes {
            let id = layer_id(layer, &format!("pin {}", pin.name))?;
            shapes.push((
                LayerId::new(id),
                translate(*rect, pin.at, &format!("pin {}", pin.name))?,
            ));
        }
        if let Some(seen) = referenced.get_mut(pin.name.as_str()) {
            if shapes.is_empty() {
                return Err(lower_err(format!(
                    "pin {} is connected to a net but has no LAYER geometry",
                    pin.name
                )));
            }
            *seen = true;
            pin_ids.insert(pin.name.clone(), builder.add_pin(pin.name.clone(), shapes));
        } else {
            leftover.extend(shapes.into_iter().map(|(l, r)| (l.index() as u32, r)));
        }
    }

    // Component pins, in (component, macro pin) order.
    for comp in &def.components {
        let mac = macros.get(comp.macro_name.as_str()).ok_or_else(|| {
            lower_err(format!(
                "component {} references unknown macro `{}`",
                comp.name, comp.macro_name
            ))
        })?;
        for pin in &mac.pins {
            let name = format!("{}/{}", comp.name, pin.name);
            let mut shapes: Vec<(LayerId, Rect)> = Vec::new();
            for (layer, rect) in &pin.ports {
                let id = layer_id(layer, &format!("macro pin {name}"))?;
                shapes.push((
                    LayerId::new(id),
                    translate(*rect, comp.at, &format!("macro pin {name}"))?,
                ));
            }
            if let Some(seen) = referenced.get_mut(name.as_str()) {
                if shapes.is_empty() {
                    return Err(lower_err(format!(
                        "component pin {name} is connected to a net but its macro port is empty"
                    )));
                }
                *seen = true;
                pin_ids.insert(name.clone(), builder.add_pin(name, shapes));
            } else {
                leftover.extend(shapes.into_iter().map(|(l, r)| (l.index() as u32, r)));
            }
        }
    }

    if let Some((name, _)) = referenced.iter().find(|(_, seen)| !**seen) {
        return Err(lower_err(format!(
            "net terminal `{name}` matches no DEF pin and no placed component pin"
        )));
    }

    // Nets, in file order.
    for net in &def.nets {
        let ids = net
            .terminals
            .iter()
            .map(|t| pin_ids[&terminal_name(t)])
            .collect();
        builder.add_net(net.name.clone(), ids);
    }

    // Special nets: obstacles in file order, rects before wires.
    for snet in &def.special_nets {
        let colorable = snet.use_class == "SIGNAL";
        let mut add = |layer: u32, rect: Rect| {
            if colorable {
                builder.add_obstacle(layer, rect);
            } else {
                builder.add_blockage(layer, rect);
            }
        };
        for (layer, rect) in &snet.rects {
            add(
                layer_id(layer, &format!("special net {}", snet.name))?,
                *rect,
            );
        }
        for (layer, width, a, b) in &snet.wires {
            let id = layer_id(layer, &format!("special net {}", snet.name))?;
            check_axis_aligned(*a, *b, &format!("special net {}", snet.name))?;
            let rect = Segment::new(*a, *b).to_rect(*width);
            add(id, rect);
        }
    }

    // Macro obstructions: routing blockages.
    for comp in &def.components {
        let mac = macros[comp.macro_name.as_str()];
        for (layer, rect) in &mac.obs {
            let id = layer_id(layer, &format!("macro {} OBS", mac.name))?;
            builder.add_blockage(
                id,
                translate(*rect, comp.at, &format!("macro {} OBS", mac.name))?,
            );
        }
    }

    // Unreferenced pin metal, colourable.
    for (layer, rect) in leftover {
        builder.add_obstacle(layer, rect);
    }

    let design = builder.build()?;

    // Pre-routed wiring, when present.
    let has_wiring = def.nets.iter().any(|n| !n.routed.is_empty());
    let routing = if has_wiring {
        let mut solution = RoutingSolution::new(design.nets().len());
        for (idx, net) in def.nets.iter().enumerate() {
            if net.routed.is_empty() {
                continue;
            }
            let mut routed = RoutedNet::new();
            for wire in &net.routed {
                match wire {
                    DefWire::Segment { layer, a, b } => {
                        let id = layer_id(layer, &format!("net {} wiring", net.name))?;
                        check_axis_aligned(*a, *b, &format!("net {} wiring", net.name))?;
                        let width = design.tech().layer(LayerId::new(id)).width;
                        routed.segments.push(RouteSegment::new(
                            LayerId::new(id),
                            Segment::new(*a, *b),
                            width,
                        ));
                    }
                    DefWire::Via { layer, at } => {
                        let id = layer_id(layer, &format!("net {} wiring", net.name))?;
                        if id as usize + 1 >= design.tech().num_layers() {
                            return Err(lower_err(format!(
                                "net {} has a via on the top layer `{layer}`",
                                net.name
                            )));
                        }
                        routed.vias.push(ViaInstance::new(LayerId::new(id), *at));
                    }
                }
            }
            solution.set(NetId::from(idx), routed);
        }
        Some(solution)
    } else {
        None
    };

    Ok(LoweredDesign { design, routing })
}

/// The design-level pin name a terminal resolves to.
fn terminal_name(term: &DefTerminal) -> String {
    match term {
        DefTerminal::Pin(name) => name.clone(),
        DefTerminal::Component(inst, pin) => format!("{inst}/{pin}"),
    }
}

/// Rejects diagonal wiring (the model only supports Manhattan geometry).
fn check_axis_aligned(a: Point, b: Point, what: &str) -> Result<(), LefDefError> {
    if a.x == b.x || a.y == b.y {
        Ok(())
    } else {
        Err(lower_err(format!(
            "{what} contains a non-axis-aligned wire {a} -> {b}"
        )))
    }
}

/// Shifts a rectangle by a placement point, with checked arithmetic: the
/// parsers bound every coordinate to ±2^40, but `lower` is also a public
/// entry point for hand-built [`DefDesign`]s, so an overflowing placement
/// must come back as an error rather than a panic (debug) or a silently
/// wrapped rectangle (release).
fn translate(rect: Rect, by: Point, what: &str) -> Result<Rect, LefDefError> {
    let add = |a: i64, b: i64| {
        a.checked_add(b)
            .ok_or_else(|| lower_err(format!("{what}: placement overflows a coordinate")))
    };
    Ok(Rect::from_coords(
        add(rect.lo.x, by.x)?,
        add(rect.lo.y, by.y)?,
        add(rect.hi.x, by.x)?,
        add(rect.hi.y, by.y)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_def, parse_lef};

    const LEF: &str = "\
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
TPLCOLORSPACING 0.045 ;
LAYER M1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 0.02 ;
  OFFSET 0.01 ;
  WIDTH 0.008 ;
  SPACING 0.008 ;
END M1
LAYER M2
  TYPE ROUTING ;
  DIRECTION VERTICAL ;
  PITCH 0.02 ;
  OFFSET 0.01 ;
  WIDTH 0.008 ;
  SPACING 0.008 ;
END M2
MACRO buf
  SIZE 0.1 BY 0.1 ;
  PIN a
    PORT
      LAYER M1 ;
        RECT 0.006 0.006 0.014 0.014 ;
    END
  END a
  PIN z
    PORT
      LAYER M1 ;
        RECT 0.066 0.006 0.074 0.014 ;
    END
  END z
  OBS
    LAYER M2 ;
      RECT 0.02 0.04 0.08 0.06 ;
  END
END buf
END LIBRARY
";

    const DEF: &str = "\
DESIGN lowered ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 800 800 ) ;
COMPONENTS 1 ;
- u1 buf + PLACED ( 100 100 ) N ;
END COMPONENTS
PINS 2 ;
- in0 + NET n0 + LAYER M1 ( -4 -4 ) ( 4 4 ) + PLACED ( 110 310 ) N ;
- dangling + LAYER M2 ( 200 200 ) ( 208 208 ) ;
END PINS
NETS 1 ;
- n0 ( PIN in0 ) ( u1 a )
  + ROUTED M1 ( 110 310 ) ( 110 110 )
    NEW VIA M1 ( 110 310 ) ;
END NETS
SPECIALNETS 2 ;
- keepout + USE SIGNAL + RECT M2 ( 300 300 ) ( 360 360 ) ;
- vdd + ROUTED M2 20 ( 0 700 ) ( 800 700 ) ;
END SPECIALNETS
END DESIGN
";

    #[test]
    fn lowers_pins_components_and_obstacles() {
        let lef = parse_lef(LEF).unwrap();
        let def = parse_def(DEF).unwrap();
        let lowered = lower(&lef, &def).unwrap();
        let d = &lowered.design;
        assert_eq!(d.name(), "lowered");
        assert_eq!(d.tech().num_layers(), 2);
        assert_eq!(d.tech().dcolor(), 45);
        // in0 (placed) and u1/a; `dangling` and u1/z fall through to
        // obstacles.
        assert_eq!(d.pins().len(), 2);
        assert_eq!(d.pins()[0].name(), "in0");
        assert_eq!(
            d.pins()[0].shapes()[0].1,
            Rect::from_coords(106, 306, 114, 314)
        );
        assert_eq!(d.pins()[1].name(), "u1/a");
        assert_eq!(
            d.pins()[1].shapes()[0].1,
            Rect::from_coords(106, 106, 114, 114)
        );
        assert_eq!(d.nets().len(), 1);
        assert_eq!(d.nets()[0].pin_count(), 2);
        // Obstacles: keepout rect (colourable), vdd wire (blockage), macro
        // OBS (blockage), dangling pin + u1/z port (colourable).
        assert_eq!(d.obstacles().len(), 5);
        assert!(d.obstacles()[0].colorable);
        assert!(!d.obstacles()[1].colorable);
        // Wire rects get square line caps: ends extend by half the width.
        assert_eq!(d.obstacles()[1].rect, Rect::from_coords(-10, 690, 810, 710));
        assert!(!d.obstacles()[2].colorable);
        assert_eq!(d.obstacles()[2].rect, Rect::from_coords(120, 140, 180, 160));
        assert!(d.obstacles()[3].colorable);
        assert!(d.obstacles()[4].colorable);
        // The + ROUTED clause became a one-net solution.
        let routing = lowered.routing.expect("DEF carries wiring");
        assert_eq!(routing.routed_count(), 1);
        let rn = routing.get(NetId::new(0)).unwrap();
        assert_eq!(rn.segments.len(), 1);
        assert_eq!(rn.segments[0].width, 8);
        assert_eq!(rn.vias.len(), 1);
    }

    #[test]
    fn unit_mismatch_is_a_lower_error() {
        let lef = parse_lef(LEF).unwrap();
        let mut def = parse_def(DEF).unwrap();
        def.dbu_per_micron = 100;
        let err = lower(&lef, &def).unwrap_err();
        assert!(err.to_string().contains("unit mismatch"), "{err}");
    }

    #[test]
    fn unknown_terminal_is_a_lower_error() {
        let lef = parse_lef(LEF).unwrap();
        let mut def = parse_def(DEF).unwrap();
        def.nets[0]
            .terminals
            .push(DefTerminal::Component("u9".into(), "a".into()));
        let err = lower(&lef, &def).unwrap_err();
        assert!(err.to_string().contains("u9/a"), "{err}");
    }

    #[test]
    fn unknown_layer_is_a_lower_error() {
        let lef = parse_lef(LEF).unwrap();
        let mut def = parse_def(DEF).unwrap();
        def.pins[0].shapes[0].0 = "M9".to_string();
        let err = lower(&lef, &def).unwrap_err();
        assert!(err.to_string().contains("M9"), "{err}");
    }

    #[test]
    fn default_dcolor_is_2_25_pitches() {
        let lef_no_dcolor = LEF.replace("TPLCOLORSPACING 0.045 ;\n", "");
        let lef = parse_lef(&lef_no_dcolor).unwrap();
        let def = parse_def(DEF).unwrap();
        let lowered = lower(&lef, &def).unwrap();
        assert_eq!(lowered.design.tech().dcolor(), 45);
    }
}
