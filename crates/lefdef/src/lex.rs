//! Shared tokenizer and parse cursor for the LEF and DEF grammars.
//!
//! Both formats are whitespace-separated token streams with `#` line
//! comments, `;` statement terminators and parenthesised points.  The lexer
//! keeps `(`, `)` and `;` as standalone tokens even when glued to a word and
//! records the 1-based line/column of every token so parse errors point at
//! real source positions.

use crate::ParseError;
use tpl_geom::Dbu;

/// The largest coordinate/distance magnitude the subset accepts, in
/// database units (±2^40 ≈ 1.1 × 10^12, i.e. a die around a kilometre at
/// 1000 units per micron).  Anything a real design could need fits with
/// orders of magnitude to spare, and bounding every parsed number here
/// means downstream arithmetic — placement translation, wire line caps,
/// pitch maths — can never overflow an `i64`, so pathological inputs fail
/// as positioned parse errors instead of panicking or wrapping.
pub const COORD_LIMIT: Dbu = 1 << 40;

/// One token with its source position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text (never empty).
    pub text: &'a str,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column of the token's first character.
    pub col: usize,
}

/// Splits a source into tokens; `#` comments run to end of line.
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    let mut tokens = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let mut start: Option<usize> = None;
        for (i, ch) in line.char_indices() {
            let is_punct = matches!(ch, '(' | ')' | ';');
            if ch.is_whitespace() || is_punct {
                if let Some(s) = start.take() {
                    tokens.push(Token {
                        text: &line[s..i],
                        line: lineno + 1,
                        col: s + 1,
                    });
                }
                if is_punct {
                    tokens.push(Token {
                        text: &line[i..i + ch.len_utf8()],
                        line: lineno + 1,
                        col: i + 1,
                    });
                }
            } else if start.is_none() {
                start = Some(i);
            }
        }
        if let Some(s) = start {
            tokens.push(Token {
                text: &line[s..],
                line: lineno + 1,
                col: s + 1,
            });
        }
    }
    tokens
}

/// A cursor over the token stream with positioned error helpers.
pub struct Cursor<'a> {
    tokens: Vec<Token<'a>>,
    pos: usize,
    last_line: usize,
}

impl<'a> Cursor<'a> {
    /// Tokenizes a source and positions the cursor at its start.
    pub fn new(src: &'a str) -> Self {
        let tokens = tokenize(src);
        let last_line = src.lines().count().max(1);
        Cursor {
            tokens,
            pos: 0,
            last_line,
        }
    }

    /// The next token without consuming it.
    pub fn peek(&self) -> Option<Token<'a>> {
        self.tokens.get(self.pos).copied()
    }

    /// Consumes and returns the next token, or errors at end of file.
    pub fn next(&mut self, expected: &str) -> Result<Token<'a>, ParseError> {
        match self.tokens.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(*t)
            }
            None => Err(self.eof(expected)),
        }
    }

    /// Consumes the next token, requiring its exact text.
    pub fn expect(&mut self, text: &str) -> Result<(), ParseError> {
        let t = self.next(&format!("`{text}`"))?;
        if t.text == text {
            Ok(())
        } else {
            Err(err_at(t, format!("expected `{text}`, found `{}`", t.text)))
        }
    }

    /// `true` when the next token matches, consuming it.
    pub fn eat(&mut self, text: &str) -> bool {
        if self.peek().is_some_and(|t| t.text == text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes a token as an identifier-like word.
    pub fn word(&mut self, what: &str) -> Result<Token<'a>, ParseError> {
        let t = self.next(what)?;
        if matches!(t.text, "(" | ")" | ";") {
            return Err(err_at(t, format!("expected {what}, found `{}`", t.text)));
        }
        Ok(t)
    }

    /// Consumes a token as a signed integer (DEF database units), bounded
    /// by [`COORD_LIMIT`] so no accepted value can overflow later maths.
    pub fn int(&mut self, what: &str) -> Result<Dbu, ParseError> {
        let t = self.word(what)?;
        let value = t
            .text
            .parse::<Dbu>()
            .map_err(|_| err_at(t, format!("expected {what} (integer), found `{}`", t.text)))?;
        if value.checked_abs().is_none_or(|v| v > COORD_LIMIT) {
            return Err(err_at(
                t,
                format!(
                    "{what} `{}` is out of range (at most ±2^40 database units)",
                    t.text
                ),
            ));
        }
        Ok(value)
    }

    /// Consumes a token as an exact decimal micron value, scaled to database
    /// units (see [`parse_microns`]).
    pub fn microns(&mut self, what: &str, dbu_per_micron: Dbu) -> Result<Dbu, ParseError> {
        let t = self.word(what)?;
        parse_microns(t.text, dbu_per_micron).map_err(|m| err_at(t, m))
    }

    /// Consumes tokens up to and including the next `;`.
    pub fn skip_statement(&mut self) -> Result<(), ParseError> {
        loop {
            let t = self.next("`;`")?;
            if t.text == ";" {
                return Ok(());
            }
        }
    }

    /// An end-of-file error located at the last source line.
    pub fn eof(&self, expected: &str) -> ParseError {
        ParseError::new(
            self.last_line,
            1,
            format!("unexpected end of file, expected {expected}"),
        )
    }
}

/// Positions an error at a token.
pub fn err_at(token: Token<'_>, message: impl Into<String>) -> ParseError {
    ParseError::new(token.line, token.col, message)
}

/// Parses a decimal micron value into database units **exactly**.
///
/// LEF distances are decimal microns; multiplying by a float `dbu_per_micron`
/// would round. Instead the integer and fractional digits are scaled by
/// digit-shifting, which is exact whenever `dbu_per_micron` is a power of ten
/// (the only case this subset supports). A fraction finer than one database
/// unit is rejected rather than silently rounded.
pub fn parse_microns(text: &str, dbu_per_micron: Dbu) -> Result<Dbu, String> {
    let digits = decimal_digits(dbu_per_micron)
        .ok_or_else(|| format!("DATABASE MICRONS {dbu_per_micron} is not a power of ten"))?;
    let (sign, body) = match text.strip_prefix('-') {
        Some(rest) => (-1, rest),
        None => (1, text),
    };
    let (int_part, frac_part) = match body.split_once('.') {
        Some((i, f)) => (i, f),
        None => (body, ""),
    };
    if (int_part.is_empty() && frac_part.is_empty())
        || !int_part.bytes().all(|b| b.is_ascii_digit())
        || !frac_part.bytes().all(|b| b.is_ascii_digit())
    {
        return Err(format!("expected a decimal number, found `{text}`"));
    }
    if frac_part.len() > digits && frac_part[digits..].bytes().any(|b| b != b'0') {
        return Err(format!(
            "`{text}` is finer than one database unit (1/{dbu_per_micron} micron)"
        ));
    }
    let int_value: Dbu = if int_part.is_empty() {
        0
    } else {
        int_part
            .parse()
            .map_err(|_| format!("number `{text}` is out of range"))?
    };
    let mut frac_value: Dbu = 0;
    for (i, b) in frac_part.bytes().take(digits).enumerate() {
        let place = Dbu::pow(10, (digits - 1 - i) as u32);
        frac_value += Dbu::from(b - b'0') * place;
    }
    int_value
        .checked_mul(dbu_per_micron)
        .and_then(|v| v.checked_add(frac_value))
        .filter(|v| *v <= COORD_LIMIT)
        .map(|v| sign * v)
        .ok_or_else(|| format!("number `{text}` is out of range"))
}

/// Formats a database-unit distance as an exact decimal micron string, the
/// inverse of [`parse_microns`].
pub fn format_microns(value: Dbu, dbu_per_micron: Dbu) -> String {
    let digits =
        decimal_digits(dbu_per_micron).expect("writer technologies use power-of-ten units");
    let sign = if value < 0 { "-" } else { "" };
    let magnitude = value.abs();
    let int_part = magnitude / dbu_per_micron;
    let frac_part = magnitude % dbu_per_micron;
    if frac_part == 0 {
        return format!("{sign}{int_part}");
    }
    let mut frac = format!("{frac_part:0width$}", width = digits);
    while frac.ends_with('0') {
        frac.pop();
    }
    format!("{sign}{int_part}.{frac}")
}

/// `Some(k)` when `value == 10^k`, else `None`.
fn decimal_digits(value: Dbu) -> Option<usize> {
    let mut v = value;
    let mut digits = 0;
    while v > 1 {
        if v % 10 != 0 {
            return None;
        }
        v /= 10;
        digits += 1;
    }
    (v == 1).then_some(digits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_splits_punctuation_and_tracks_positions() {
        let toks = tokenize("DIEAREA ( 0 0 ) ( 800 800 ) ;\nEND DESIGN # trailing\n");
        let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
        assert_eq!(
            texts,
            vec!["DIEAREA", "(", "0", "0", ")", "(", "800", "800", ")", ";", "END", "DESIGN"]
        );
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[10].line, toks[10].col), (2, 1));
    }

    #[test]
    fn tokenizer_handles_glued_semicolons() {
        let toks = tokenize("PITCH 0.02;END");
        let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
        assert_eq!(texts, vec!["PITCH", "0.02", ";", "END"]);
    }

    #[test]
    fn cursor_reports_eof_with_last_line() {
        let mut c = Cursor::new("LAYER M1\nTYPE ROUTING");
        while c.peek().is_some() {
            c.next("token").unwrap();
        }
        let err = c.next("`;`").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("end of file"));
    }

    #[test]
    fn microns_parse_exactly() {
        assert_eq!(parse_microns("0.008", 1000), Ok(8));
        assert_eq!(parse_microns("4.5", 1000), Ok(4500));
        assert_eq!(parse_microns("45", 1000), Ok(45000));
        assert_eq!(parse_microns("-0.01", 1000), Ok(-10));
        assert_eq!(parse_microns(".25", 100), Ok(25));
        assert_eq!(parse_microns("0.0080", 1000), Ok(8));
    }

    #[test]
    fn microns_reject_bad_and_too_fine_values() {
        assert!(parse_microns("0.0005", 1000).unwrap_err().contains("finer"));
        assert!(parse_microns("abc", 1000).is_err());
        assert!(parse_microns("1.2.3", 1000).is_err());
        assert!(parse_microns("", 1000).is_err());
        assert!(parse_microns("1", 1024)
            .unwrap_err()
            .contains("power of ten"));
    }

    #[test]
    fn microns_format_round_trips() {
        for v in [0, 8, 45, 4500, -10, 123456, 1000] {
            let s = format_microns(v, 1000);
            assert_eq!(parse_microns(&s, 1000), Ok(v), "value {v} via `{s}`");
        }
        assert_eq!(format_microns(8, 1000), "0.008");
        assert_eq!(format_microns(45, 1000), "0.045");
        assert_eq!(format_microns(2000, 1000), "2");
    }
}
