//! LEF/DEF ingestion and emission for the Mr.TPL reproduction.
//!
//! The synthetic ISPD-style generator covers the paper's benchmarks, but real
//! routing inputs arrive as LEF (technology + cell library) and DEF (die,
//! placement, netlist) files.  This crate provides a pragmatic,
//! zero-dependency subset of both formats:
//!
//! * a hand-rolled tokenizer and recursive-descent parsers producing plain
//!   ASTs ([`LefLibrary`], [`DefDesign`]) with positioned [`ParseError`]s —
//!   malformed input never panics;
//! * a [`lower()`] pass that cross-checks the pair and produces a validated
//!   [`Design`](tpl_design::Design) plus any `+ ROUTED` wiring as a
//!   [`RoutingSolution`](tpl_design::RoutingSolution);
//! * writers ([`write_lef`], [`write_def`]) emitting the same subset, so
//!   routed results round-trip: write → parse → lower reproduces the design
//!   exactly.
//!
//! The supported subset (documented per module) covers ROUTING layers with
//! direction/pitch/offset/width/spacing, sites, macros with pin geometry and
//! obstructions, DIEAREA, ROWS, COMPONENTS (orientation `N`), PINS, NETS
//! with routed wiring, and SPECIALNETS as obstacles.  The nonstandard LEF
//! statement `TPLCOLORSPACING <microns> ;` carries the paper's
//! colour-spacing distance `Dcolor`; without it, 2.25 × the minimum pitch is
//! assumed.
//!
//! # Examples
//!
//! ```
//! use tpl_lefdef::{parse_def, parse_lef, lower, write_def, write_lef};
//!
//! let lef = parse_lef(
//!     "UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n\
//!      LAYER M1\n  TYPE ROUTING ;\n  DIRECTION HORIZONTAL ;\n\
//!      PITCH 0.02 ;\n  WIDTH 0.008 ;\n  SPACING 0.008 ;\nEND M1\n\
//!      END LIBRARY\n",
//! )
//! .unwrap();
//! let def = parse_def(
//!     "DESIGN two_pins ;\nUNITS DISTANCE MICRONS 1000 ;\n\
//!      DIEAREA ( 0 0 ) ( 400 400 ) ;\n\
//!      PINS 2 ;\n\
//!      - a + NET n0 + LAYER M1 ( 6 6 ) ( 14 14 ) ;\n\
//!      - b + NET n0 + LAYER M1 ( 206 6 ) ( 214 14 ) ;\n\
//!      END PINS\n\
//!      NETS 1 ;\n- n0 ( PIN a ) ( PIN b ) ;\nEND NETS\n\
//!      END DESIGN\n",
//! )
//! .unwrap();
//! let lowered = lower(&lef, &def).unwrap();
//! assert_eq!(lowered.design.nets().len(), 1);
//!
//! // The writers invert the parse: the round-trip reproduces the design.
//! let again = lower(
//!     &parse_lef(&write_lef(lowered.design.tech())).unwrap(),
//!     &parse_def(&write_def(&lowered.design, None)).unwrap(),
//! )
//! .unwrap();
//! assert_eq!(
//!     tpl_design::write_design(&again.design),
//!     tpl_design::write_design(&lowered.design)
//! );
//! ```

#![warn(missing_docs)]

pub mod def;
mod error;
pub mod lef;
mod lex;
pub mod lower;
pub mod writer;

pub use def::{parse_def, DefDesign};
pub use error::{LefDefError, ParseError};
pub use lef::{parse_lef, LefLibrary};
pub use lower::{lower, LoweredDesign};
pub use writer::{write_def, write_lef};

use std::path::Path;

/// Reads a LEF/DEF pair from disk and lowers it into a design.
///
/// # Errors
///
/// [`LefDefError::Io`] when either file cannot be read, otherwise the parse
/// and lowering errors of [`parse_lef`], [`parse_def`] and [`lower()`].
pub fn load_design(lef_path: &Path, def_path: &Path) -> Result<LoweredDesign, LefDefError> {
    let read = |path: &Path| {
        std::fs::read_to_string(path).map_err(|e| LefDefError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    };
    let lef = parse_lef(&read(lef_path)?).map_err(LefDefError::Lef)?;
    let def = parse_def(&read(def_path)?).map_err(LefDefError::Def)?;
    lower(&lef, &def)
}
