//! Recursive-descent parser for the supported LEF subset.
//!
//! The subset covers what the lowering needs to build a
//! [`tpl_design::Technology`] and resolve macro pin geometry:
//!
//! ```text
//! VERSION <num> ;                    # optional, ignored
//! BUSBITCHARS "<..>" ; DIVIDERCHAR "<..>" ;   # optional, ignored
//! UNITS DATABASE MICRONS <int> ; END UNITS    # required before any distance
//! MANUFACTURINGGRID <num> ;          # optional, ignored
//! TPLCOLORSPACING <microns> ;        # nonstandard: the TPL colour distance
//! LAYER <name> TYPE ROUTING ; DIRECTION <HORIZONTAL|VERTICAL> ;
//!   PITCH <m> ; [OFFSET <m> ;] WIDTH <m> ; SPACING <m> ; END <name>
//! LAYER <name> TYPE CUT ; ... END <name>      # parsed, not lowered
//! SITE <name> ... SIZE <m> BY <m> ; END <name>
//! MACRO <name> ... SIZE <m> BY <m> ;
//!   PIN <name> ... PORT LAYER <l> ; RECT <m m m m> ; ... END END <name>
//!   OBS LAYER <l> ; RECT <m m m m> ; ... END
//! END <name>
//! END LIBRARY
//! ```
//!
//! All distances are decimal microns converted exactly to database units
//! (see `crate::lex::parse_microns`); anything outside the grammar is a
//! positioned [`ParseError`], never a panic.

use crate::lex::{err_at, Cursor};
use crate::ParseError;
use tpl_geom::{Axis, Dbu, Rect};

/// A routing layer description from a LEF `LAYER ... TYPE ROUTING` block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LefLayer {
    /// Layer name (`M1`, `M2`, …).
    pub name: String,
    /// Preferred routing direction.
    pub axis: Axis,
    /// Track pitch in database units.
    pub pitch: Dbu,
    /// First-track offset in database units (defaults to half the pitch).
    pub offset: Dbu,
    /// Default wire width in database units.
    pub width: Dbu,
    /// Minimum spacing in database units.
    pub spacing: Dbu,
}

/// A placement site (`SITE ... SIZE x BY y`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LefSite {
    /// Site name.
    pub name: String,
    /// Site width in database units.
    pub width: Dbu,
    /// Site height in database units.
    pub height: Dbu,
}

/// One pin of a macro, with its port geometry in macro-local coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LefPin {
    /// Pin name, unique within the macro.
    pub name: String,
    /// `(layer name, rect)` port shapes, origin-relative.
    pub ports: Vec<(String, Rect)>,
}

/// A macro (cell) definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LefMacro {
    /// Macro name, unique within the library.
    pub name: String,
    /// Cell size in database units.
    pub size: (Dbu, Dbu),
    /// Pins in declaration order.
    pub pins: Vec<LefPin>,
    /// Obstruction shapes, origin-relative.
    pub obs: Vec<(String, Rect)>,
}

/// A parsed LEF library.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LefLibrary {
    /// Database units per micron (`UNITS DATABASE MICRONS`).
    pub dbu_per_micron: Dbu,
    /// Routing layers, bottom-up in declaration order.
    pub layers: Vec<LefLayer>,
    /// Placement sites.
    pub sites: Vec<LefSite>,
    /// Macros in declaration order.
    pub macros: Vec<LefMacro>,
    /// The TPL colour-spacing distance, when the nonstandard
    /// `TPLCOLORSPACING` statement is present.
    pub dcolor: Option<Dbu>,
}

/// Parses a LEF source into a [`LefLibrary`].
pub fn parse_lef(src: &str) -> Result<LefLibrary, ParseError> {
    let mut c = Cursor::new(src);
    let mut lib = LefLibrary {
        dbu_per_micron: 0,
        layers: Vec::new(),
        sites: Vec::new(),
        macros: Vec::new(),
        dcolor: None,
    };
    loop {
        let t = c.next("a LEF statement or `END LIBRARY`")?;
        match t.text {
            "VERSION" | "BUSBITCHARS" | "DIVIDERCHAR" | "MANUFACTURINGGRID" => {
                c.skip_statement()?;
            }
            "UNITS" => parse_units(&mut c, &mut lib)?,
            "TPLCOLORSPACING" => {
                let dbu = units(&lib, t)?;
                let v = c.microns("a colour-spacing distance", dbu)?;
                c.expect(";")?;
                lib.dcolor = Some(v);
            }
            "LAYER" => parse_layer(&mut c, &mut lib, t)?,
            "SITE" => parse_site(&mut c, &mut lib, t)?,
            "MACRO" => parse_macro(&mut c, &mut lib, t)?,
            "END" => {
                c.expect("LIBRARY")?;
                if lib.dbu_per_micron == 0 {
                    return Err(err_at(t, "missing `UNITS DATABASE MICRONS` block"));
                }
                return Ok(lib);
            }
            other => {
                return Err(err_at(
                    t,
                    format!("unknown LEF statement `{other}` (unsupported by this subset)"),
                ))
            }
        }
    }
}

/// The declared database units, erroring at `at` when distances appear
/// before the `UNITS` block.
fn units(lib: &LefLibrary, at: crate::lex::Token<'_>) -> Result<Dbu, ParseError> {
    if lib.dbu_per_micron > 0 {
        Ok(lib.dbu_per_micron)
    } else {
        Err(err_at(
            at,
            "distances before the `UNITS DATABASE MICRONS` block",
        ))
    }
}

fn parse_units(c: &mut Cursor<'_>, lib: &mut LefLibrary) -> Result<(), ParseError> {
    c.expect("DATABASE")?;
    c.expect("MICRONS")?;
    let t = c.word("a units value")?;
    let value: Dbu = t.text.parse().map_err(|_| {
        err_at(
            t,
            format!("expected an integer unit count, found `{}`", t.text),
        )
    })?;
    if value <= 0 {
        return Err(err_at(t, "DATABASE MICRONS must be positive"));
    }
    // Reject non-power-of-ten units up front so every later distance
    // conversion is exact.
    crate::lex::parse_microns("1", value).map_err(|m| err_at(t, m))?;
    lib.dbu_per_micron = value;
    c.expect(";")?;
    c.expect("END")?;
    c.expect("UNITS")?;
    Ok(())
}

fn parse_layer(
    c: &mut Cursor<'_>,
    lib: &mut LefLibrary,
    kw: crate::lex::Token<'_>,
) -> Result<(), ParseError> {
    let name_tok = c.word("a layer name")?;
    let name = name_tok.text.to_string();
    c.expect("TYPE")?;
    let ty = c.word("a layer type")?;
    let routing = match ty.text {
        "ROUTING" => true,
        "CUT" | "MASTERSLICE" | "OVERLAP" => false,
        other => return Err(err_at(ty, format!("unknown layer type `{other}`"))),
    };
    c.expect(";")?;
    let dbu = units(lib, kw)?;
    let mut axis: Option<Axis> = None;
    let mut pitch: Option<Dbu> = None;
    let mut offset: Option<Dbu> = None;
    let mut width: Option<Dbu> = None;
    let mut spacing: Option<Dbu> = None;
    loop {
        let t = c.next("a layer statement or `END`")?;
        match t.text {
            "DIRECTION" => {
                let d = c.word("HORIZONTAL or VERTICAL")?;
                axis = Some(match d.text {
                    "HORIZONTAL" => Axis::Horizontal,
                    "VERTICAL" => Axis::Vertical,
                    other => return Err(err_at(d, format!("unknown direction `{other}`"))),
                });
                c.expect(";")?;
            }
            "PITCH" => {
                pitch = Some(c.microns("a pitch", dbu)?);
                c.expect(";")?;
            }
            "OFFSET" => {
                offset = Some(c.microns("an offset", dbu)?);
                c.expect(";")?;
            }
            "WIDTH" => {
                width = Some(c.microns("a width", dbu)?);
                c.expect(";")?;
            }
            "SPACING" => {
                spacing = Some(c.microns("a spacing", dbu)?);
                c.expect(";")?;
            }
            "END" => {
                c.expect(&name)?;
                break;
            }
            other => {
                return Err(err_at(
                    t,
                    format!("unknown LAYER statement `{other}` (unsupported by this subset)"),
                ))
            }
        }
    }
    if !routing {
        return Ok(());
    }
    let missing = |what: &str| err_at(kw, format!("routing layer {name} is missing {what}"));
    let pitch = pitch.ok_or_else(|| missing("PITCH"))?;
    let layer = LefLayer {
        axis: axis.ok_or_else(|| missing("DIRECTION"))?,
        pitch,
        offset: offset.unwrap_or(pitch / 2),
        width: width.ok_or_else(|| missing("WIDTH"))?,
        spacing: spacing.ok_or_else(|| missing("SPACING"))?,
        name,
    };
    lib.layers.push(layer);
    Ok(())
}

fn parse_site(
    c: &mut Cursor<'_>,
    lib: &mut LefLibrary,
    kw: crate::lex::Token<'_>,
) -> Result<(), ParseError> {
    let name = c.word("a site name")?.text.to_string();
    let dbu = units(lib, kw)?;
    let mut size: Option<(Dbu, Dbu)> = None;
    loop {
        let t = c.next("a site statement or `END`")?;
        match t.text {
            "CLASS" | "SYMMETRY" => c.skip_statement()?,
            "SIZE" => {
                let w = c.microns("a site width", dbu)?;
                c.expect("BY")?;
                let h = c.microns("a site height", dbu)?;
                c.expect(";")?;
                size = Some((w, h));
            }
            "END" => {
                c.expect(&name)?;
                break;
            }
            other => return Err(err_at(t, format!("unknown SITE statement `{other}`"))),
        }
    }
    let (width, height) = size.ok_or_else(|| err_at(kw, format!("site {name} has no SIZE")))?;
    lib.sites.push(LefSite {
        name,
        width,
        height,
    });
    Ok(())
}

fn parse_macro(
    c: &mut Cursor<'_>,
    lib: &mut LefLibrary,
    kw: crate::lex::Token<'_>,
) -> Result<(), ParseError> {
    let name = c.word("a macro name")?.text.to_string();
    let dbu = units(lib, kw)?;
    let mut size: Option<(Dbu, Dbu)> = None;
    let mut pins: Vec<LefPin> = Vec::new();
    let mut obs: Vec<(String, Rect)> = Vec::new();
    loop {
        let t = c.next("a macro statement or `END`")?;
        match t.text {
            "CLASS" | "ORIGIN" | "FOREIGN" | "SYMMETRY" | "SITE" => c.skip_statement()?,
            "SIZE" => {
                let w = c.microns("a macro width", dbu)?;
                c.expect("BY")?;
                let h = c.microns("a macro height", dbu)?;
                c.expect(";")?;
                size = Some((w, h));
            }
            "PIN" => {
                let pin = parse_macro_pin(c, dbu)?;
                if pins.iter().any(|p| p.name == pin.name) {
                    return Err(err_at(
                        t,
                        format!("duplicate pin `{}` in macro {name}", pin.name),
                    ));
                }
                pins.push(pin);
            }
            "OBS" => parse_geometry_block(c, dbu, &mut obs, "OBS")?,
            "END" => {
                c.expect(&name)?;
                break;
            }
            other => {
                return Err(err_at(
                    t,
                    format!("unknown MACRO statement `{other}` (unsupported by this subset)"),
                ))
            }
        }
    }
    if lib.macros.iter().any(|m| m.name == name) {
        return Err(err_at(kw, format!("duplicate macro `{name}`")));
    }
    lib.macros.push(LefMacro {
        size: size.ok_or_else(|| err_at(kw, format!("macro {name} has no SIZE")))?,
        name,
        pins,
        obs,
    });
    Ok(())
}

fn parse_macro_pin(c: &mut Cursor<'_>, dbu: Dbu) -> Result<LefPin, ParseError> {
    let name = c.word("a pin name")?.text.to_string();
    let mut ports: Vec<(String, Rect)> = Vec::new();
    loop {
        let t = c.next("a pin statement or `END`")?;
        match t.text {
            "DIRECTION" | "USE" | "SHAPE" => c.skip_statement()?,
            "PORT" => parse_geometry_block(c, dbu, &mut ports, "PORT")?,
            "END" => {
                c.expect(&name)?;
                break;
            }
            other => return Err(err_at(t, format!("unknown PIN statement `{other}`"))),
        }
    }
    Ok(LefPin { name, ports })
}

/// Parses the shared body of `PORT`/`OBS` blocks: a sequence of
/// `LAYER <name> ;` headers each followed by `RECT x1 y1 x2 y2 ;`
/// statements, terminated by `END`.
fn parse_geometry_block(
    c: &mut Cursor<'_>,
    dbu: Dbu,
    out: &mut Vec<(String, Rect)>,
    what: &str,
) -> Result<(), ParseError> {
    let mut layer: Option<String> = None;
    loop {
        let t = c.next("LAYER, RECT or `END`")?;
        match t.text {
            "LAYER" => {
                layer = Some(c.word("a layer name")?.text.to_string());
                c.expect(";")?;
            }
            "RECT" => {
                let Some(ref l) = layer else {
                    return Err(err_at(t, format!("RECT before any LAYER in {what}")));
                };
                let x1 = c.microns("a coordinate", dbu)?;
                let y1 = c.microns("a coordinate", dbu)?;
                let x2 = c.microns("a coordinate", dbu)?;
                let y2 = c.microns("a coordinate", dbu)?;
                c.expect(";")?;
                out.push((l.clone(), Rect::from_coords(x1, y1, x2, y2)));
            }
            "END" => return Ok(()),
            other => return Err(err_at(t, format!("unknown {what} statement `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
VERSION 5.8 ;
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
TPLCOLORSPACING 0.045 ;
LAYER M1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 0.02 ;
  OFFSET 0.01 ;
  WIDTH 0.008 ;
  SPACING 0.008 ;
END M1
LAYER M2
  TYPE ROUTING ;
  DIRECTION VERTICAL ;
  PITCH 0.02 ;
  WIDTH 0.008 ;
  SPACING 0.008 ;
END M2
SITE core
  SIZE 0.02 BY 0.1 ;
END core
MACRO buf
  CLASS CORE ;
  SIZE 0.1 BY 0.1 ;
  PIN a
    DIRECTION INPUT ;
    PORT
      LAYER M1 ;
        RECT 0.006 0.006 0.014 0.014 ;
    END
  END a
  OBS
    LAYER M2 ;
      RECT 0.02 0.02 0.08 0.08 ;
  END
END buf
END LIBRARY
";

    #[test]
    fn parses_layers_sites_and_macros() {
        let lib = parse_lef(SMALL).unwrap();
        assert_eq!(lib.dbu_per_micron, 1000);
        assert_eq!(lib.dcolor, Some(45));
        assert_eq!(lib.layers.len(), 2);
        assert_eq!(lib.layers[0].name, "M1");
        assert_eq!(lib.layers[0].axis, Axis::Horizontal);
        assert_eq!(lib.layers[0].pitch, 20);
        assert_eq!(lib.layers[0].offset, 10);
        // OFFSET defaults to half the pitch when omitted.
        assert_eq!(lib.layers[1].offset, 10);
        assert_eq!(lib.sites.len(), 1);
        assert_eq!(lib.sites[0].height, 100);
        let m = &lib.macros[0];
        assert_eq!(m.size, (100, 100));
        assert_eq!(m.pins.len(), 1);
        assert_eq!(
            m.pins[0].ports[0],
            ("M1".to_string(), Rect::from_coords(6, 6, 14, 14))
        );
        assert_eq!(m.obs[0].0, "M2");
    }

    #[test]
    fn cut_layers_parse_but_do_not_lower() {
        let src = "\
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
LAYER via1
  TYPE CUT ;
  WIDTH 0.01 ;
END via1
END LIBRARY
";
        let lib = parse_lef(src).unwrap();
        assert!(lib.layers.is_empty());
    }

    #[test]
    fn missing_units_is_an_error() {
        let err = parse_lef("LAYER M1\n  TYPE ROUTING ;\n  PITCH 0.02 ;\nEND M1\nEND LIBRARY\n")
            .unwrap_err();
        assert!(err.message.contains("UNITS"), "{err}");
    }

    #[test]
    fn incomplete_routing_layer_is_an_error() {
        let src = "\
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
LAYER M1
  TYPE ROUTING ;
  PITCH 0.02 ;
  WIDTH 0.008 ;
  SPACING 0.008 ;
END M1
END LIBRARY
";
        let err = parse_lef(src).unwrap_err();
        assert!(err.message.contains("DIRECTION"), "{err}");
    }
}
