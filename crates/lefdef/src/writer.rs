//! LEF/DEF emission for `tpl-design` designs, the inverse of the parsers.
//!
//! [`write_lef`] emits the technology (layer stack plus the nonstandard
//! `TPLCOLORSPACING` statement) and [`write_def`] emits the design geometry
//! — die, pins with absolute shapes, nets, obstacles as `SPECIALNETS`, and
//! optionally routed wiring.  Feeding the two outputs back through
//! [`parse_lef`](crate::parse_lef) / [`parse_def`](crate::parse_def) /
//! [`lower`](crate::lower()) reproduces the design exactly: same technology,
//! die, pin/net/obstacle order, names and geometry.  This round-trip is
//! asserted property-style in the workspace test-suite.
//!
//! Two conscious narrowings of the subset:
//!
//! * Distances in LEF are decimal microns, so the technology's
//!   `dbu_per_micron` must be a power of ten (every built-in technology uses
//!   1000).
//! * DEF wiring has no per-segment width; routed segments are emitted at the
//!   layer's default width, which is what every router in this workspace
//!   produces.

use std::fmt::Write as _;
use tpl_design::{Design, RoutingSolution, Technology};

use crate::lex::format_microns;

/// Renders a technology as a LEF library.
///
/// The `dbu_per_micron` of the technology must be a power of ten (LEF
/// distances are decimal microns); every technology constructed by this
/// workspace satisfies that.
pub fn write_lef(tech: &Technology) -> String {
    let dbu = tech.dbu_per_micron();
    let um = |v| format_microns(v, dbu);
    let mut out = String::new();
    out.push_str("VERSION 5.8 ;\n");
    out.push_str("UNITS\n");
    let _ = writeln!(out, "  DATABASE MICRONS {dbu} ;");
    out.push_str("END UNITS\n");
    let _ = writeln!(out, "TPLCOLORSPACING {} ;", um(tech.dcolor()));
    for (_, layer) in tech.iter() {
        let _ = writeln!(out, "LAYER {}", layer.name);
        out.push_str("  TYPE ROUTING ;\n");
        let dir = if layer.axis.is_horizontal() {
            "HORIZONTAL"
        } else {
            "VERTICAL"
        };
        let _ = writeln!(out, "  DIRECTION {dir} ;");
        let _ = writeln!(out, "  PITCH {} ;", um(layer.pitch));
        let _ = writeln!(out, "  OFFSET {} ;", um(layer.offset));
        let _ = writeln!(out, "  WIDTH {} ;", um(layer.width));
        let _ = writeln!(out, "  SPACING {} ;", um(layer.spacing));
        let _ = writeln!(out, "END {}", layer.name);
    }
    out.push_str("END LIBRARY\n");
    out
}

/// Renders a design (and optionally its routing) as a DEF file.
///
/// Every pin is written as a top-level DEF pin with absolute geometry, every
/// net lists its terminals as `( PIN <name> )`, and every obstacle becomes a
/// one-rect special net (`+ USE SIGNAL` when colourable, `+ USE POWER` when a
/// blockage).  With a [`RoutingSolution`], nets gain `+ ROUTED` wiring;
/// segments are emitted at their layer's default width.
pub fn write_def(design: &Design, routing: Option<&RoutingSolution>) -> String {
    let tech = design.tech();
    let layer_name = |id: tpl_design::LayerId| tech.layer(id).name.as_str();
    let mut out = String::new();
    let _ = writeln!(out, "DESIGN {} ;", design.name());
    let _ = writeln!(out, "UNITS DISTANCE MICRONS {} ;", tech.dbu_per_micron());
    let die = design.die();
    let _ = writeln!(
        out,
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        die.lo.x, die.lo.y, die.hi.x, die.hi.y
    );

    let _ = writeln!(out, "PINS {} ;", design.pins().len());
    for pin in design.pins() {
        let _ = write!(out, "- {}", pin.name());
        if pin.net().index() < design.nets().len() {
            let _ = write!(out, " + NET {}", design.net(pin.net()).name());
        }
        for (layer, rect) in pin.shapes() {
            let _ = write!(
                out,
                " + LAYER {} ( {} {} ) ( {} {} )",
                layer_name(*layer),
                rect.lo.x,
                rect.lo.y,
                rect.hi.x,
                rect.hi.y
            );
        }
        out.push_str(" + PLACED ( 0 0 ) N ;\n");
    }
    out.push_str("END PINS\n");

    let _ = writeln!(out, "NETS {} ;", design.nets().len());
    for net in design.nets() {
        let _ = write!(out, "- {}", net.name());
        for pin in net.pins() {
            let _ = write!(out, " ( PIN {} )", design.pins()[pin.index()].name());
        }
        if let Some(routed) = routing.and_then(|r| r.get(net.id())) {
            let mut keyword = "\n  + ROUTED";
            for seg in &routed.segments {
                let _ = write!(
                    out,
                    "{keyword} {} ( {} {} ) ( {} {} )",
                    layer_name(seg.layer),
                    seg.seg.a.x,
                    seg.seg.a.y,
                    seg.seg.b.x,
                    seg.seg.b.y
                );
                keyword = "\n    NEW";
            }
            for via in &routed.vias {
                let _ = write!(
                    out,
                    "{keyword} VIA {} ( {} {} )",
                    layer_name(via.lower_layer),
                    via.at.x,
                    via.at.y
                );
                keyword = "\n    NEW";
            }
        }
        out.push_str(" ;\n");
    }
    out.push_str("END NETS\n");

    let _ = writeln!(out, "SPECIALNETS {} ;", design.obstacles().len());
    for obs in design.obstacles() {
        let use_class = if obs.colorable { "SIGNAL" } else { "POWER" };
        let _ = writeln!(
            out,
            "- {} + USE {use_class} + RECT {} ( {} {} ) ( {} {} ) ;",
            obs.id,
            layer_name(obs.layer),
            obs.rect.lo.x,
            obs.rect.lo.y,
            obs.rect.hi.x,
            obs.rect.hi.y
        );
    }
    out.push_str("END SPECIALNETS\n");
    out.push_str("END DESIGN\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lower, parse_def, parse_lef};
    use tpl_design::{DesignBuilder, NetId, RouteSegment, RoutedNet, RoutingSolution, ViaInstance};
    use tpl_geom::{Point, Rect, Segment};

    fn sample() -> Design {
        let tech = Technology::ispd_like(3);
        let mut b = DesignBuilder::new("sample", tech, Rect::from_coords(0, 0, 400, 400));
        let a = b.add_pin_shape("n0_p0", 0, Rect::from_coords(6, 6, 14, 14));
        let z = b.add_pin_shape("n0_p1", 0, Rect::from_coords(206, 206, 214, 214));
        b.add_net("net0", vec![a, z]);
        let c = b.add_pin_shape("n1_p0", 0, Rect::from_coords(6, 106, 14, 114));
        let d = b.add_pin_shape("n1_p1", 2, Rect::from_coords(306, 106, 314, 114));
        b.add_net("net1", vec![c, d]);
        b.add_obstacle(1, Rect::from_coords(100, 100, 140, 120));
        b.add_blockage(0, Rect::from_coords(200, 0, 240, 40));
        b.build().unwrap()
    }

    #[test]
    fn lef_def_round_trip_reproduces_the_design() {
        let design = sample();
        let lef_src = write_lef(design.tech());
        let def_src = write_def(&design, None);
        let lef = parse_lef(&lef_src).unwrap();
        let def = parse_def(&def_src).unwrap();
        let lowered = lower(&lef, &def).unwrap();
        assert_eq!(
            tpl_design::write_design(&lowered.design),
            tpl_design::write_design(&design)
        );
        assert!(lowered.routing.is_none());
    }

    #[test]
    fn routed_wiring_round_trips() {
        let design = sample();
        let mut sol = RoutingSolution::new(design.nets().len());
        let mut rn = RoutedNet::new();
        rn.segments.push(RouteSegment::new(
            tpl_design::LayerId::new(0),
            Segment::new(Point::new(10, 10), Point::new(210, 10)),
            8,
        ));
        rn.segments.push(RouteSegment::new(
            tpl_design::LayerId::new(1),
            Segment::new(Point::new(210, 10), Point::new(210, 210)),
            8,
        ));
        rn.vias.push(ViaInstance::new(
            tpl_design::LayerId::new(0),
            Point::new(210, 10),
        ));
        sol.set(NetId::new(0), rn.clone());
        let def_src = write_def(&design, Some(&sol));
        let lef = parse_lef(&write_lef(design.tech())).unwrap();
        let def = parse_def(&def_src).unwrap();
        let lowered = lower(&lef, &def).unwrap();
        let routing = lowered.routing.expect("wiring present");
        assert_eq!(routing.get(NetId::new(0)), Some(&rn));
        assert_eq!(routing.get(NetId::new(1)), None);
    }

    #[test]
    fn lef_writer_emits_exact_micron_distances() {
        let tech = Technology::ispd_like(2);
        let lef = write_lef(&tech);
        assert!(lef.contains("DATABASE MICRONS 1000 ;"), "{lef}");
        assert!(lef.contains("TPLCOLORSPACING 0.045 ;"), "{lef}");
        assert!(lef.contains("PITCH 0.02 ;"), "{lef}");
        assert!(lef.contains("WIDTH 0.008 ;"), "{lef}");
    }
}
