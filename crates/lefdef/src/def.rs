//! Recursive-descent parser for the supported DEF subset.
//!
//! ```text
//! VERSION <num> ;  DIVIDERCHAR "<c>" ;  BUSBITCHARS "<..>" ;   # optional
//! DESIGN <name> ;
//! UNITS DISTANCE MICRONS <int> ;
//! DIEAREA ( x1 y1 ) ( x2 y2 ) ;
//! ROW <name> <site> <x> <y> <orient> [DO <n> BY <m> [STEP <sx> <sy>]] ;
//! COMPONENTS <n> ;
//!   - <inst> <macro> + <PLACED|FIXED> ( x y ) N ;
//! END COMPONENTS
//! PINS <n> ;
//!   - <pin> [+ NET <net>] [+ DIRECTION <d>] [+ USE <u>]
//!     (+ LAYER <layer> ( lx ly ) ( hx hy ))*
//!     [+ <PLACED|FIXED> ( x y ) N] ;
//! END PINS
//! NETS <n> ;
//!   - <net> ( PIN <pin> )* ( <inst> <pin> )* [+ USE <u>]
//!     [+ ROUTED <wire> (NEW <wire>)*] ;
//! END NETS
//! SPECIALNETS <n> ;
//!   - <name> [+ USE <u>]
//!     (+ RECT <layer> ( x1 y1 ) ( x2 y2 ))*
//!     (+ ROUTED <layer> <width> ( x1 y1 ) ( x2 y2 ) [NEW ...])* ;
//! END SPECIALNETS
//! END DESIGN
//! ```
//!
//! where a regular-net `<wire>` is either `<layer> ( x1 y1 ) ( x2 y2 )` (a
//! wire centre-line at the layer's default width) or `VIA <lower-layer>
//! ( x y )` (a cut to the layer above).  All coordinates are integer
//! database units, like real DEF.  Only orientation `N` is supported;
//! anything else is a positioned [`ParseError`].

use crate::lex::{err_at, Cursor, Token};
use crate::ParseError;
use tpl_geom::{Dbu, Point, Rect};

/// A placement row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefRow {
    /// Row name.
    pub name: String,
    /// Site name (not cross-checked against the LEF).
    pub site: String,
    /// Origin of the first site.
    pub origin: Point,
    /// Site count in x (`DO`).
    pub nx: Dbu,
    /// Site count in y (`BY`).
    pub ny: Dbu,
    /// Step between sites (`STEP`).
    pub step: (Dbu, Dbu),
}

/// A placed component instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefComponent {
    /// Instance name, unique within the design.
    pub name: String,
    /// LEF macro name.
    pub macro_name: String,
    /// Placement of the macro origin.
    pub at: Point,
}

/// A top-level design pin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefPin {
    /// Pin name, unique within the design.
    pub name: String,
    /// The net named by `+ NET` (informational; connectivity comes from the
    /// `NETS` section).
    pub net: Option<String>,
    /// `(layer name, rect)` shapes relative to the placement point.
    pub shapes: Vec<(String, Rect)>,
    /// The placement point (defaults to the origin when `+ PLACED` is
    /// absent, i.e. shapes are absolute).
    pub at: Point,
}

/// One terminal of a net: a top-level pin or a `(component, pin)` pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DefTerminal {
    /// A top-level design pin (`( PIN name )`).
    Pin(String),
    /// A component pin (`( inst pin )`).
    Component(String, String),
}

/// One element of a routed wire: a segment or a via.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DefWire {
    /// A wire centre-line on a layer, at the layer's default width.
    Segment {
        /// Layer name.
        layer: String,
        /// Segment start.
        a: Point,
        /// Segment end.
        b: Point,
    },
    /// A via whose cut sits between `layer` and the layer above it.
    Via {
        /// Lower layer name.
        layer: String,
        /// Cut centre.
        at: Point,
    },
}

/// A signal net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefNet {
    /// Net name, unique within the design.
    pub name: String,
    /// Terminals in declaration order.
    pub terminals: Vec<DefTerminal>,
    /// Routed wiring (`+ ROUTED`), empty for unrouted nets.
    pub routed: Vec<DefWire>,
}

/// A special net, lowered as obstacles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefSpecialNet {
    /// Net name.
    pub name: String,
    /// The `+ USE` class (`SIGNAL`, `POWER`, `GROUND`, …); defaults to
    /// `POWER` when absent.
    pub use_class: String,
    /// Explicit `(layer, rect)` shapes from `+ RECT`.
    pub rects: Vec<(String, Rect)>,
    /// Wires from `+ ROUTED <layer> <width> ( .. ) ( .. )`.
    pub wires: Vec<(String, Dbu, Point, Point)>,
}

/// A parsed DEF design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefDesign {
    /// Design name.
    pub name: String,
    /// Database units per micron (`UNITS DISTANCE MICRONS`).
    pub dbu_per_micron: Dbu,
    /// The die area.
    pub die: Rect,
    /// Placement rows (informational).
    pub rows: Vec<DefRow>,
    /// Component instances.
    pub components: Vec<DefComponent>,
    /// Top-level pins.
    pub pins: Vec<DefPin>,
    /// Signal nets.
    pub nets: Vec<DefNet>,
    /// Special nets (obstacles).
    pub special_nets: Vec<DefSpecialNet>,
}

/// Parses a DEF source into a [`DefDesign`].
pub fn parse_def(src: &str) -> Result<DefDesign, ParseError> {
    let mut c = Cursor::new(src);
    let mut def = DefDesign {
        name: String::new(),
        dbu_per_micron: 0,
        die: Rect::from_coords(0, 0, 0, 0),
        rows: Vec::new(),
        components: Vec::new(),
        pins: Vec::new(),
        nets: Vec::new(),
        special_nets: Vec::new(),
    };
    let mut seen_die = false;
    loop {
        let t = c.next("a DEF statement or `END DESIGN`")?;
        match t.text {
            "VERSION" | "DIVIDERCHAR" | "BUSBITCHARS" => c.skip_statement()?,
            "DESIGN" => {
                def.name = c.word("a design name")?.text.to_string();
                c.expect(";")?;
            }
            "UNITS" => {
                c.expect("DISTANCE")?;
                c.expect("MICRONS")?;
                let u = c.word("a units value")?;
                let value: Dbu = u.text.parse().map_err(|_| {
                    err_at(
                        u,
                        format!("expected an integer unit count, found `{}`", u.text),
                    )
                })?;
                if value <= 0 {
                    return Err(err_at(u, "DISTANCE MICRONS must be positive"));
                }
                def.dbu_per_micron = value;
                c.expect(";")?;
            }
            "DIEAREA" => {
                let lo = point(&mut c)?;
                let hi = point(&mut c)?;
                c.expect(";")?;
                def.die = Rect::from_coords(lo.x, lo.y, hi.x, hi.y);
                seen_die = true;
            }
            "ROW" => def.rows.push(parse_row(&mut c)?),
            "COMPONENTS" => parse_components(&mut c, &mut def)?,
            "PINS" => parse_pins(&mut c, &mut def)?,
            "NETS" => parse_nets(&mut c, &mut def)?,
            "SPECIALNETS" => parse_special_nets(&mut c, &mut def)?,
            "END" => {
                c.expect("DESIGN")?;
                if def.name.is_empty() {
                    return Err(err_at(t, "missing `DESIGN <name> ;` statement"));
                }
                if def.dbu_per_micron == 0 {
                    return Err(err_at(t, "missing `UNITS DISTANCE MICRONS` statement"));
                }
                if !seen_die {
                    return Err(err_at(t, "missing `DIEAREA` statement"));
                }
                return Ok(def);
            }
            other => {
                return Err(err_at(
                    t,
                    format!("unknown DEF statement `{other}` (unsupported by this subset)"),
                ))
            }
        }
    }
}

/// Parses `( x y )`.
fn point(c: &mut Cursor<'_>) -> Result<Point, ParseError> {
    c.expect("(")?;
    let x = c.int("an x coordinate")?;
    let y = c.int("a y coordinate")?;
    c.expect(")")?;
    Ok(Point::new(x, y))
}

/// Consumes an orientation token, accepting only `N`.
fn orient(c: &mut Cursor<'_>) -> Result<(), ParseError> {
    let t = c.word("an orientation")?;
    if t.text == "N" {
        Ok(())
    } else {
        Err(err_at(
            t,
            format!(
                "unsupported orientation `{}` (this subset places everything N)",
                t.text
            ),
        ))
    }
}

fn parse_row(c: &mut Cursor<'_>) -> Result<DefRow, ParseError> {
    let name = c.word("a row name")?.text.to_string();
    let site = c.word("a site name")?.text.to_string();
    let x = c.int("a row x origin")?;
    let y = c.int("a row y origin")?;
    orient(c)?;
    let mut row = DefRow {
        name,
        site,
        origin: Point::new(x, y),
        nx: 1,
        ny: 1,
        step: (0, 0),
    };
    if c.eat("DO") {
        row.nx = c.int("a site count")?;
        c.expect("BY")?;
        row.ny = c.int("a site count")?;
        if c.eat("STEP") {
            row.step.0 = c.int("a step")?;
            row.step.1 = c.int("a step")?;
        }
    }
    c.expect(";")?;
    Ok(row)
}

/// Checks the `<n> ;` header of a section and returns the declared count.
fn section_count(c: &mut Cursor<'_>, what: &str) -> Result<usize, ParseError> {
    let t = c.word(&format!("the {what} count"))?;
    let n: usize = t
        .text
        .parse()
        .map_err(|_| err_at(t, format!("expected the {what} count, found `{}`", t.text)))?;
    c.expect(";")?;
    Ok(n)
}

/// Verifies a section's declared count against what was actually parsed.
fn check_count(kw: Token<'_>, what: &str, declared: usize, got: usize) -> Result<(), ParseError> {
    if declared == got {
        Ok(())
    } else {
        Err(err_at(
            kw,
            format!("{what} section declares {declared} entries but contains {got}"),
        ))
    }
}

fn parse_components(c: &mut Cursor<'_>, def: &mut DefDesign) -> Result<(), ParseError> {
    let kw = c.peek().unwrap_or(Token {
        text: "",
        line: 0,
        col: 0,
    });
    let declared = section_count(c, "COMPONENTS")?;
    loop {
        let t = c.next("`-` or `END COMPONENTS`")?;
        match t.text {
            "-" => {
                let name_tok = c.word("an instance name")?;
                let name = name_tok.text.to_string();
                if def.components.iter().any(|x| x.name == name) {
                    return Err(err_at(name_tok, format!("duplicate component `{name}`")));
                }
                let macro_name = c.word("a macro name")?.text.to_string();
                c.expect("+")?;
                let kind = c.word("PLACED or FIXED")?;
                if !matches!(kind.text, "PLACED" | "FIXED") {
                    return Err(err_at(
                        kind,
                        format!("expected PLACED or FIXED, found `{}`", kind.text),
                    ));
                }
                let at = point(c)?;
                orient(c)?;
                c.expect(";")?;
                def.components.push(DefComponent {
                    name,
                    macro_name,
                    at,
                });
            }
            "END" => {
                c.expect("COMPONENTS")?;
                return check_count(kw, "COMPONENTS", declared, def.components.len());
            }
            other => return Err(err_at(t, format!("expected `-` or `END`, found `{other}`"))),
        }
    }
}

fn parse_pins(c: &mut Cursor<'_>, def: &mut DefDesign) -> Result<(), ParseError> {
    let kw = c.peek().unwrap_or(Token {
        text: "",
        line: 0,
        col: 0,
    });
    let declared = section_count(c, "PINS")?;
    loop {
        let t = c.next("`-` or `END PINS`")?;
        match t.text {
            "-" => {
                let name_tok = c.word("a pin name")?;
                let name = name_tok.text.to_string();
                if def.pins.iter().any(|x| x.name == name) {
                    return Err(err_at(name_tok, format!("duplicate pin `{name}`")));
                }
                let mut pin = DefPin {
                    name,
                    net: None,
                    shapes: Vec::new(),
                    at: Point::new(0, 0),
                };
                loop {
                    let t = c.next("`+`, `;`")?;
                    match t.text {
                        ";" => break,
                        "+" => {
                            let prop = c.word("a pin property")?;
                            match prop.text {
                                "NET" => {
                                    pin.net = Some(c.word("a net name")?.text.to_string());
                                }
                                "DIRECTION" | "USE" => {
                                    c.word("a value")?;
                                }
                                "LAYER" => {
                                    let layer = c.word("a layer name")?.text.to_string();
                                    let lo = point(c)?;
                                    let hi = point(c)?;
                                    pin.shapes
                                        .push((layer, Rect::from_coords(lo.x, lo.y, hi.x, hi.y)));
                                }
                                "PLACED" | "FIXED" => {
                                    pin.at = point(c)?;
                                    orient(c)?;
                                }
                                other => {
                                    return Err(err_at(
                                        prop,
                                        format!("unknown pin property `{other}`"),
                                    ))
                                }
                            }
                        }
                        other => {
                            return Err(err_at(t, format!("expected `+` or `;`, found `{other}`")))
                        }
                    }
                }
                def.pins.push(pin);
            }
            "END" => {
                c.expect("PINS")?;
                return check_count(kw, "PINS", declared, def.pins.len());
            }
            other => return Err(err_at(t, format!("expected `-` or `END`, found `{other}`"))),
        }
    }
}

fn parse_nets(c: &mut Cursor<'_>, def: &mut DefDesign) -> Result<(), ParseError> {
    let kw = c.peek().unwrap_or(Token {
        text: "",
        line: 0,
        col: 0,
    });
    let declared = section_count(c, "NETS")?;
    loop {
        let t = c.next("`-` or `END NETS`")?;
        match t.text {
            "-" => {
                let name_tok = c.word("a net name")?;
                let name = name_tok.text.to_string();
                if def.nets.iter().any(|x| x.name == name) {
                    return Err(err_at(name_tok, format!("duplicate net `{name}`")));
                }
                let mut net = DefNet {
                    name,
                    terminals: Vec::new(),
                    routed: Vec::new(),
                };
                loop {
                    let t = c.next("a terminal, `+ ROUTED` or `;`")?;
                    match t.text {
                        ";" => break,
                        "(" => {
                            let first = c.word("PIN or an instance name")?;
                            if first.text == "PIN" {
                                let pin = c.word("a pin name")?.text.to_string();
                                net.terminals.push(DefTerminal::Pin(pin));
                            } else {
                                let inst = first.text.to_string();
                                let pin = c.word("a component pin name")?.text.to_string();
                                net.terminals.push(DefTerminal::Component(inst, pin));
                            }
                            c.expect(")")?;
                        }
                        "+" => {
                            let prop = c.word("a net property")?;
                            match prop.text {
                                "USE" => {
                                    c.word("a value")?;
                                }
                                "ROUTED" => parse_wiring(c, &mut net.routed)?,
                                other => {
                                    return Err(err_at(
                                        prop,
                                        format!("unknown net property `{other}`"),
                                    ))
                                }
                            }
                        }
                        other => {
                            return Err(err_at(
                                t,
                                format!("expected `(`, `+` or `;`, found `{other}`"),
                            ))
                        }
                    }
                }
                def.nets.push(net);
            }
            "END" => {
                c.expect("NETS")?;
                return check_count(kw, "NETS", declared, def.nets.len());
            }
            other => return Err(err_at(t, format!("expected `-` or `END`, found `{other}`"))),
        }
    }
}

/// Parses the wire list of a regular net's `+ ROUTED` clause.
fn parse_wiring(c: &mut Cursor<'_>, out: &mut Vec<DefWire>) -> Result<(), ParseError> {
    loop {
        let head = c.word("a layer name or VIA")?;
        if head.text == "VIA" {
            let layer = c.word("a lower layer name")?.text.to_string();
            let at = point(c)?;
            out.push(DefWire::Via { layer, at });
        } else {
            let layer = head.text.to_string();
            let a = point(c)?;
            let b = point(c)?;
            out.push(DefWire::Segment { layer, a, b });
        }
        if !c.eat("NEW") {
            return Ok(());
        }
    }
}

fn parse_special_nets(c: &mut Cursor<'_>, def: &mut DefDesign) -> Result<(), ParseError> {
    let kw = c.peek().unwrap_or(Token {
        text: "",
        line: 0,
        col: 0,
    });
    let declared = section_count(c, "SPECIALNETS")?;
    loop {
        let t = c.next("`-` or `END SPECIALNETS`")?;
        match t.text {
            "-" => {
                let name_tok = c.word("a special net name")?;
                let name = name_tok.text.to_string();
                if def.special_nets.iter().any(|x| x.name == name) {
                    return Err(err_at(name_tok, format!("duplicate special net `{name}`")));
                }
                let mut snet = DefSpecialNet {
                    name,
                    use_class: "POWER".to_string(),
                    rects: Vec::new(),
                    wires: Vec::new(),
                };
                loop {
                    let t = c.next("`+` or `;`")?;
                    match t.text {
                        ";" => break,
                        "+" => {
                            let prop = c.word("a special net property")?;
                            match prop.text {
                                "USE" => {
                                    snet.use_class = c.word("a use class")?.text.to_string();
                                }
                                "RECT" => {
                                    let layer = c.word("a layer name")?.text.to_string();
                                    let lo = point(c)?;
                                    let hi = point(c)?;
                                    snet.rects.push((layer, Rect::new(lo, hi)));
                                }
                                "ROUTED" => loop {
                                    let layer = c.word("a layer name")?.text.to_string();
                                    let width = c.int("a wire width")?;
                                    let a = point(c)?;
                                    let b = point(c)?;
                                    snet.wires.push((layer, width, a, b));
                                    if !c.eat("NEW") {
                                        break;
                                    }
                                },
                                other => {
                                    return Err(err_at(
                                        prop,
                                        format!("unknown special net property `{other}`"),
                                    ))
                                }
                            }
                        }
                        other => {
                            return Err(err_at(t, format!("expected `+` or `;`, found `{other}`")))
                        }
                    }
                }
                def.special_nets.push(snet);
            }
            "END" => {
                c.expect("SPECIALNETS")?;
                return check_count(kw, "SPECIALNETS", declared, def.special_nets.len());
            }
            other => return Err(err_at(t, format!("expected `-` or `END`, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
VERSION 5.8 ;
DESIGN tiny ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 800 800 ) ;
ROW core_0 core 0 0 N DO 40 BY 1 STEP 20 0 ;
COMPONENTS 1 ;
- u1 buf + PLACED ( 100 100 ) N ;
END COMPONENTS
PINS 2 ;
- in0 + NET n0 + DIRECTION INPUT + USE SIGNAL
  + LAYER M1 ( -4 -4 ) ( 4 4 )
  + PLACED ( 110 110 ) N ;
- out0 + NET n0
  + LAYER M1 ( 506 106 ) ( 514 114 ) ;
END PINS
NETS 1 ;
- n0 ( PIN in0 ) ( PIN out0 ) ( u1 a )
  + ROUTED M1 ( 110 110 ) ( 310 110 )
    NEW VIA M1 ( 310 110 )
    NEW M2 ( 310 110 ) ( 310 510 ) ;
END NETS
SPECIALNETS 1 ;
- vdd + USE POWER
  + RECT M2 ( 0 780 ) ( 800 800 )
  + ROUTED M2 20 ( 0 700 ) ( 800 700 ) ;
END SPECIALNETS
END DESIGN
";

    #[test]
    fn parses_a_full_small_design() {
        let def = parse_def(SMALL).unwrap();
        assert_eq!(def.name, "tiny");
        assert_eq!(def.dbu_per_micron, 1000);
        assert_eq!(def.die, Rect::from_coords(0, 0, 800, 800));
        assert_eq!(def.rows.len(), 1);
        assert_eq!(def.rows[0].nx, 40);
        assert_eq!(def.components[0].at, Point::new(100, 100));
        assert_eq!(def.pins.len(), 2);
        assert_eq!(def.pins[0].at, Point::new(110, 110));
        assert_eq!(def.pins[1].at, Point::new(0, 0));
        let net = &def.nets[0];
        assert_eq!(net.terminals.len(), 3);
        assert_eq!(
            net.terminals[2],
            DefTerminal::Component("u1".into(), "a".into())
        );
        assert_eq!(net.routed.len(), 3);
        assert!(matches!(net.routed[1], DefWire::Via { .. }));
        let snet = &def.special_nets[0];
        assert_eq!(snet.use_class, "POWER");
        assert_eq!(snet.rects.len(), 1);
        assert_eq!(snet.wires.len(), 1);
    }

    #[test]
    fn duplicate_net_names_error_with_position() {
        let src = "\
DESIGN d ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 100 100 ) ;
PINS 2 ;
- a + LAYER M1 ( 0 0 ) ( 8 8 ) ;
- b + LAYER M1 ( 20 20 ) ( 28 28 ) ;
END PINS
NETS 2 ;
- n0 ( PIN a ) ( PIN b ) ;
- n0 ( PIN a ) ( PIN b ) ;
END NETS
END DESIGN
";
        let err = parse_def(src).unwrap_err();
        assert_eq!(err.line, 10);
        assert!(err.message.contains("duplicate net"), "{err}");
    }

    #[test]
    fn wrong_section_count_is_an_error() {
        let src = "\
DESIGN d ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 100 100 ) ;
PINS 3 ;
- a + LAYER M1 ( 0 0 ) ( 8 8 ) ;
END PINS
END DESIGN
";
        let err = parse_def(src).unwrap_err();
        assert!(err.message.contains("declares 3"), "{err}");
    }

    #[test]
    fn non_north_orientation_is_rejected() {
        let src = "\
DESIGN d ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 100 100 ) ;
COMPONENTS 1 ;
- u1 buf + PLACED ( 0 0 ) FS ;
END COMPONENTS
END DESIGN
";
        let err = parse_def(src).unwrap_err();
        assert!(err.message.contains("orientation"), "{err}");
        assert_eq!(err.line, 5);
    }

    #[test]
    fn truncated_input_reports_eof() {
        let err =
            parse_def("DESIGN d ;\nUNITS DISTANCE MICRONS 1000 ;\nDIEAREA ( 0 0 )").unwrap_err();
        assert!(err.message.contains("end of file"), "{err}");
    }
}
