//! Malformed-input suite: every way a LEF or DEF can be broken must come
//! back as a positioned [`ParseError`] — never a panic, never a silently
//! wrong value.
//!
//! Beyond targeted cases (bad units, unknown keywords, duplicates), two
//! sweeps hammer the parsers with systematically damaged sources: every
//! byte-prefix of a valid file (truncation at any point) and every
//! token-replacement with garbage.  The sweeps assert only "returns
//! `Result`, with an in-bounds position on `Err`" — the point is the
//! absence of panics and of out-of-range line/column numbers.

use proptest::prelude::*;
use tpl_lefdef::{parse_def, parse_lef, ParseError};

const GOOD_LEF: &str = "\
VERSION 5.8 ;
BUSBITCHARS \"[]\" ;
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
MANUFACTURINGGRID 0.001 ;
TPLCOLORSPACING 0.045 ;
LAYER M1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 0.02 ;
  OFFSET 0.01 ;
  WIDTH 0.008 ;
  SPACING 0.008 ;
END M1
LAYER via1
  TYPE CUT ;
END via1
LAYER M2
  TYPE ROUTING ;
  DIRECTION VERTICAL ;
  PITCH 0.02 ;
  WIDTH 0.008 ;
  SPACING 0.008 ;
END M2
SITE core
  CLASS CORE ;
  SIZE 0.02 BY 0.24 ;
END core
MACRO buf
  CLASS CORE ;
  SIZE 0.06 BY 0.06 ;
  PIN a
    DIRECTION INPUT ;
    PORT
      LAYER M1 ;
        RECT 0.006 0.006 0.014 0.014 ;
    END
  END a
  OBS
    LAYER M2 ;
      RECT 0.02 0.025 0.04 0.035 ;
  END
END buf
END LIBRARY
";

const GOOD_DEF: &str = "\
VERSION 5.8 ;
DESIGN sweep ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 400 400 ) ;
ROW core_0 core 0 0 N DO 20 BY 1 STEP 20 0 ;
COMPONENTS 1 ;
- u1 buf + PLACED ( 100 100 ) N ;
END COMPONENTS
PINS 2 ;
- in0 + NET n0 + DIRECTION INPUT + USE SIGNAL
  + LAYER M1 ( -4 -4 ) ( 4 4 ) + PLACED ( 110 110 ) N ;
- out0 + NET n0 + LAYER M1 ( 306 106 ) ( 314 114 ) ;
END PINS
NETS 1 ;
- n0 ( PIN in0 ) ( PIN out0 ) ( u1 a )
  + ROUTED M1 ( 110 110 ) ( 310 110 )
    NEW VIA M1 ( 310 110 ) ;
END NETS
SPECIALNETS 1 ;
- vdd + USE POWER + RECT M2 ( 0 380 ) ( 400 400 )
  + ROUTED M2 20 ( 0 300 ) ( 400 300 ) ;
END SPECIALNETS
END DESIGN
";

/// Checks an error's position is inside the source it came from.
fn assert_in_bounds(src: &str, err: &ParseError, what: &str) {
    let lines = src.lines().count().max(1);
    assert!(
        err.line >= 1 && err.line <= lines,
        "{what}: line {} out of 1..={lines} for: {err}",
        err.line
    );
    assert!(
        err.col >= 1,
        "{what}: column {} out of range for: {err}",
        err.col
    );
}

#[test]
fn every_truncation_errors_without_panicking() {
    assert!(parse_lef(GOOD_LEF).is_ok());
    assert!(parse_def(GOOD_DEF).is_ok());
    // Prefixes that only cut trailing whitespace after `END LIBRARY` /
    // `END DESIGN` still parse; everything shorter must error in-bounds.
    for end in 0..GOOD_LEF.len() {
        let src = &GOOD_LEF[..end];
        match parse_lef(src) {
            Ok(_) => assert!(
                src.trim_end().ends_with("END LIBRARY"),
                "prefix {end} parsed"
            ),
            Err(err) => assert_in_bounds(GOOD_LEF, &err, "LEF truncation"),
        }
    }
    for end in 0..GOOD_DEF.len() {
        let src = &GOOD_DEF[..end];
        match parse_def(src) {
            Ok(_) => assert!(
                src.trim_end().ends_with("END DESIGN"),
                "prefix {end} parsed"
            ),
            Err(err) => assert_in_bounds(GOOD_DEF, &err, "DEF truncation"),
        }
    }
}

#[test]
fn every_token_replacement_is_handled_without_panicking() {
    // Replace each whitespace-separated token with a garbage word and make
    // sure the parsers return (almost always an error, occasionally an Ok
    // when the token was ignorable) rather than panic or loop.
    for (source, is_lef) in [(GOOD_LEF, true), (GOOD_DEF, false)] {
        let tokens: Vec<&str> = source.split_whitespace().collect();
        for i in 0..tokens.len() {
            let mut mutated = tokens.clone();
            mutated[i] = "XqZ9";
            let src = mutated.join(" ");
            let result_err = if is_lef {
                parse_lef(&src).err()
            } else {
                parse_def(&src).err()
            };
            if let Some(err) = result_err {
                // Joined onto one line, so only the column can be checked.
                assert!(err.col >= 1, "token {i}: {err}");
            }
        }
    }
}

#[test]
fn lef_bad_units_are_positioned_errors() {
    let cases = [
        (
            "UNITS\n  DATABASE MICRONS abc ;\nEND UNITS\nEND LIBRARY\n",
            "integer",
        ),
        (
            "UNITS\n  DATABASE MICRONS 0 ;\nEND UNITS\nEND LIBRARY\n",
            "positive",
        ),
        (
            "UNITS\n  DATABASE MICRONS -100 ;\nEND UNITS\nEND LIBRARY\n",
            "positive",
        ),
        (
            "UNITS\n  DATABASE MICRONS 1024 ;\nEND UNITS\nEND LIBRARY\n",
            "power of ten",
        ),
    ];
    for (src, needle) in cases {
        let err = parse_lef(src).unwrap_err();
        assert!(err.message.contains(needle), "`{needle}` not in: {err}");
        assert_eq!(err.line, 2, "for: {err}");
        assert_eq!(err.col, 20, "for: {err}");
    }
}

#[test]
fn lef_distance_finer_than_a_dbu_is_rejected() {
    let src = "\
UNITS
  DATABASE MICRONS 100 ;
END UNITS
LAYER M1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 0.015 ;
  WIDTH 0.01 ;
  SPACING 0.01 ;
END M1
END LIBRARY
";
    let err = parse_lef(src).unwrap_err();
    assert!(
        err.message.contains("finer than one database unit"),
        "{err}"
    );
    assert_eq!((err.line, err.col), (7, 9), "{err}");
}

#[test]
fn lef_distances_before_units_are_rejected() {
    let err = parse_lef("TPLCOLORSPACING 0.045 ;\nEND LIBRARY\n").unwrap_err();
    assert!(err.message.contains("before the `UNITS"), "{err}");
    assert_eq!(err.line, 1, "{err}");
}

#[test]
fn lef_unknown_keywords_are_positioned_errors() {
    let src = "\
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
PROPERTYDEFINITIONS
END PROPERTYDEFINITIONS
END LIBRARY
";
    let err = parse_lef(src).unwrap_err();
    assert!(
        err.message
            .contains("unknown LEF statement `PROPERTYDEFINITIONS`"),
        "{err}"
    );
    assert_eq!((err.line, err.col), (4, 1), "{err}");
}

#[test]
fn lef_duplicate_macros_and_pins_are_rejected() {
    let dup_macro = "\
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
MACRO buf
  SIZE 0.06 BY 0.06 ;
END buf
MACRO buf
  SIZE 0.06 BY 0.06 ;
END buf
END LIBRARY
";
    let err = parse_lef(dup_macro).unwrap_err();
    assert!(err.message.contains("duplicate macro `buf`"), "{err}");
    assert_eq!(err.line, 7, "{err}");

    let dup_pin = "\
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
MACRO buf
  SIZE 0.06 BY 0.06 ;
  PIN a
  END a
  PIN a
  END a
END buf
END LIBRARY
";
    let err = parse_lef(dup_pin).unwrap_err();
    assert!(err.message.contains("duplicate pin `a`"), "{err}");
    assert_eq!(err.line, 8, "{err}");
}

#[test]
fn def_bad_units_are_positioned_errors() {
    for (units, needle) in [("abc", "integer"), ("0", "positive"), ("-1000", "positive")] {
        let src = format!(
            "DESIGN d ;\nUNITS DISTANCE MICRONS {units} ;\nDIEAREA ( 0 0 ) ( 9 9 ) ;\nEND DESIGN\n"
        );
        let err = parse_def(&src).unwrap_err();
        assert!(err.message.contains(needle), "`{needle}` not in: {err}");
        assert_eq!((err.line, err.col), (2, 24), "{err}");
    }
}

#[test]
fn def_unknown_keywords_are_positioned_errors() {
    let src = "\
DESIGN d ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 9 9 ) ;
TRACKS X 10 DO 5 STEP 20 LAYER M1 ;
END DESIGN
";
    let err = parse_def(src).unwrap_err();
    assert!(
        err.message.contains("unknown DEF statement `TRACKS`"),
        "{err}"
    );
    assert_eq!((err.line, err.col), (4, 1), "{err}");

    let src = "\
DESIGN d ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 9 9 ) ;
PINS 1 ;
- p0 + ANTENNAPINGATEAREA 1 ;
END PINS
END DESIGN
";
    let err = parse_def(src).unwrap_err();
    assert!(err.message.contains("unknown pin property"), "{err}");
    assert_eq!((err.line, err.col), (5, 8), "{err}");
}

#[test]
fn def_duplicate_names_are_positioned_errors() {
    let dup_net = "\
DESIGN d ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 100 100 ) ;
PINS 2 ;
- a + LAYER M1 ( 0 0 ) ( 8 8 ) ;
- b + LAYER M1 ( 20 20 ) ( 28 28 ) ;
END PINS
NETS 2 ;
- n0 ( PIN a ) ;
- n0 ( PIN b ) ;
END NETS
END DESIGN
";
    let err = parse_def(dup_net).unwrap_err();
    assert!(err.message.contains("duplicate net `n0`"), "{err}");
    assert_eq!((err.line, err.col), (10, 3), "{err}");

    let dup_pin = "\
DESIGN d ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 100 100 ) ;
PINS 2 ;
- a + LAYER M1 ( 0 0 ) ( 8 8 ) ;
- a + LAYER M1 ( 20 20 ) ( 28 28 ) ;
END PINS
END DESIGN
";
    let err = parse_def(dup_pin).unwrap_err();
    assert!(err.message.contains("duplicate pin `a`"), "{err}");
    assert_eq!(err.line, 6, "{err}");

    let dup_comp = "\
DESIGN d ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 100 100 ) ;
COMPONENTS 2 ;
- u1 buf + PLACED ( 0 0 ) N ;
- u1 inv + PLACED ( 20 0 ) N ;
END COMPONENTS
END DESIGN
";
    let err = parse_def(dup_comp).unwrap_err();
    assert!(err.message.contains("duplicate component `u1`"), "{err}");
    assert_eq!(err.line, 6, "{err}");
}

#[test]
fn def_section_count_mismatches_are_errors() {
    let src = "\
DESIGN d ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 100 100 ) ;
NETS 5 ;
END NETS
END DESIGN
";
    let err = parse_def(src).unwrap_err();
    assert!(
        err.message.contains("declares 5 entries but contains 0"),
        "{err}"
    );
}

#[test]
fn def_bad_coordinates_are_positioned_errors() {
    let src = "\
DESIGN d ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 4.5 100 ) ;
END DESIGN
";
    let err = parse_def(src).unwrap_err();
    assert!(err.message.contains("integer"), "{err}");
    assert_eq!((err.line, err.col), (3, 19), "{err}");
}

#[test]
fn oversized_coordinates_are_positioned_errors_not_overflows() {
    // Within i64 but beyond the ±2^40 coordinate limit: rejected at parse
    // time, long before placement translation or line caps could wrap.
    let src = "\
DESIGN d ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 4000000000000000000 9 ) ;
END DESIGN
";
    let err = parse_def(src).unwrap_err();
    assert!(err.message.contains("out of range"), "{err}");
    assert_eq!((err.line, err.col), (3, 19), "{err}");

    // i64::MIN parses as an i64 but has no absolute value.
    let src = src.replace("4000000000000000000", "-9223372036854775808");
    let err = parse_def(&src).unwrap_err();
    assert!(err.message.contains("out of range"), "{err}");

    // LEF micron distances are bounded by the same limit after scaling.
    let lef = "\
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
LAYER M1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 99999999999999 ;
  WIDTH 0.008 ;
  SPACING 0.008 ;
END M1
END LIBRARY
";
    let err = parse_lef(lef).unwrap_err();
    assert!(err.message.contains("out of range"), "{err}");
    assert_eq!((err.line, err.col), (7, 9), "{err}");
}

#[test]
fn overflowing_placement_is_a_lowering_error_not_a_panic() {
    // Bypasses the parsers' coordinate bound to prove `lower` itself is
    // overflow-safe for hand-built inputs.
    let lef = parse_lef(GOOD_LEF).unwrap();
    let mut def = parse_def(GOOD_DEF).unwrap();
    def.components[0].at = tpl_geom::Point::new(i64::MAX - 1, 0);
    let err = tpl_lefdef::lower(&lef, &def).unwrap_err();
    assert!(err.to_string().contains("overflow"), "{err}");
}

#[test]
fn pathologically_long_and_nested_inputs_never_blow_the_stack() {
    // The parsers are iterative, so depth and length cost memory, not stack.
    // A wall of unclosed parens must come back as a plain positioned error.
    let mut src = String::from("DESIGN d ;\nUNITS DISTANCE MICRONS 1000 ;\nDIEAREA ");
    src.push_str(&"( ".repeat(100_000));
    assert!(parse_def(&src).is_err());

    // A very long (valid) routed net parses fine; a truncated version of it
    // errors in-bounds instead of overflowing anything.
    let mut long = String::from(
        "DESIGN d ;\nUNITS DISTANCE MICRONS 1000 ;\nDIEAREA ( 0 0 ) ( 4000000 4000000 ) ;\n\
         PINS 2 ;\n- a + NET n0 + LAYER M1 ( 0 0 ) ( 8 8 ) ;\n\
         - b + NET n0 + LAYER M1 ( 200000 0 ) ( 200008 8 ) ;\nEND PINS\n\
         NETS 1 ;\n- n0 ( PIN a ) ( PIN b )\n  + ROUTED M1 ( 0 4 ) ( 10 4 )\n",
    );
    for i in 1..20_000u64 {
        long.push_str(&format!(
            "    NEW M1 ( {} 4 ) ( {} 4 )\n",
            i * 10,
            (i + 1) * 10
        ));
    }
    long.push_str(" ;\nEND NETS\nEND DESIGN\n");
    let parsed = parse_def(&long).expect("a long routed net is valid input");
    assert_eq!(parsed.nets[0].routed.len(), 20_000);
    let truncated = &long[..long.len() / 2];
    let err = parse_def(truncated).unwrap_err();
    assert!(err.line <= truncated.lines().count().max(1), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable garbage spliced anywhere into either good source
    /// yields Ok or an in-bounds positioned error — never a panic.
    #[test]
    fn random_splices_never_panic(
        lef_side in any::<bool>(),
        cut in any::<u64>(),
        garbage_bytes in prop::collection::vec(0x20u8..0x7f, 0..32),
    ) {
        let source = if lef_side { GOOD_LEF } else { GOOD_DEF };
        // ASCII sources: every byte offset is a char boundary.
        let at = (cut % (source.len() as u64 + 1)) as usize;
        let garbage = String::from_utf8(garbage_bytes).unwrap();
        let src = format!("{}{}{}", &source[..at], garbage, &source[at..]);
        let err = if lef_side {
            parse_lef(&src).map(|_| ()).err()
        } else {
            parse_def(&src).map(|_| ()).err()
        };
        if let Some(err) = err {
            let lines = src.lines().count().max(1);
            prop_assert!(err.line >= 1 && err.line <= lines, "line {} for: {err}", err.line);
            prop_assert!(err.col >= 1, "col {} for: {err}", err.col);
        }
    }

    /// Oversized numeric tokens anywhere in the DEF either fail the parse
    /// with a positioned error or (when the slot is a name) flow through
    /// parse → lower without overflowing.
    #[test]
    fn huge_numbers_never_overflow_the_pipeline(
        value in (1i64 << 40) + 1..i64::MAX,
        negate in any::<bool>(),
        token in any::<u64>(),
    ) {
        let tokens: Vec<&str> = GOOD_DEF.split_whitespace().collect();
        let idx = (token % tokens.len() as u64) as usize;
        let mut mutated: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        mutated[idx] = if negate { format!("-{value}") } else { value.to_string() };
        let src = mutated.join(" ");
        if let Ok(def) = parse_def(&src) {
            let lef = parse_lef(GOOD_LEF).unwrap();
            let _ = tpl_lefdef::lower(&lef, &def);
        }
    }
}

#[test]
fn missing_required_def_statements_are_errors() {
    for (src, needle) in [
        (
            "UNITS DISTANCE MICRONS 1000 ;\nDIEAREA ( 0 0 ) ( 9 9 ) ;\nEND DESIGN\n",
            "DESIGN",
        ),
        (
            "DESIGN d ;\nDIEAREA ( 0 0 ) ( 9 9 ) ;\nEND DESIGN\n",
            "UNITS",
        ),
        (
            "DESIGN d ;\nUNITS DISTANCE MICRONS 1000 ;\nEND DESIGN\n",
            "DIEAREA",
        ),
    ] {
        let err = parse_def(src).unwrap_err();
        assert!(err.message.contains(needle), "`{needle}` not in: {err}");
    }
}
