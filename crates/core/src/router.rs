//! The full-design Mr.TPL router (Algorithm 1 + rip-up & reroute).

use crate::{
    assign::assign_and_emit, backtrace, search, ColorCostCache, ColoredNet, MrTplConfig,
    MrTplStats, NetBuffers, SearchContext,
};
use std::time::Instant;
use tpl_color::{ColorMap, ColorSetArena, ColorState, ColoredLayout, Feature, Mask};
use tpl_design::{Design, NetId, PinId, RouteGuides, RoutingSolution};
use tpl_grid::{GridGraph, GridState, Outcome, PinCoverage, RouteBudget, StopReason, VertexId};
use tpl_par::{par_map_pooled, plan_batches, Region, ScratchPool};

/// The result of a Mr.TPL routing run.
#[derive(Clone, Debug)]
pub struct MrTplResult {
    /// The routed geometry of every net.
    pub solution: RoutingSolution,
    /// Per-net, per-segment mask assignment (parallel to each routed net's
    /// segment list).
    pub segment_masks: Vec<Vec<Option<Mask>>>,
    /// The final coloured layout (wires and pins) used for evaluation.
    pub layout: ColoredLayout,
    /// Run statistics.
    pub stats: MrTplStats,
}

/// The Mr.TPL triple-patterning-aware detailed router.
#[derive(Clone, Debug)]
pub struct MrTplRouter {
    config: MrTplConfig,
}

impl MrTplRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: MrTplConfig) -> Self {
        Self { config }
    }

    /// The configuration the router was built with.
    pub fn config(&self) -> &MrTplConfig {
        &self.config
    }

    /// Routes and colours every net of the design inside the given guides.
    ///
    /// Each rip-up-and-reroute iteration rips up every queued net, partitions
    /// the queue into conflict-free batches (nets whose influence regions are
    /// disjoint), routes each batch against frozen shared state on
    /// `config.parallelism.jobs` workers and commits the results at the batch
    /// barrier in deterministic net order.  Because every task is a pure
    /// function of the frozen state, the outcome is identical for every
    /// worker count; `jobs = 1` runs the same batched algorithm inline.
    pub fn route(&self, design: &Design, guides: &RouteGuides) -> MrTplResult {
        self.route_with_budget(design, guides, &RouteBudget::default())
    }

    /// Like [`route`](MrTplRouter::route), under a [`RouteBudget`].
    ///
    /// Budget accounting is deterministic: committed search nodes are
    /// charged at batch barriers only, and every net of a batch runs under
    /// the same remaining-node snapshot, so where the budget trips is a
    /// pure function of the input — independent of worker count.  On
    /// exhaustion the router stops after the current batch and returns its
    /// best-so-far partial solution with `stats.outcome` set to
    /// [`Outcome::Degraded`]; a passed deadline or a cancelled token aborts
    /// the same way with [`Outcome::Aborted`].  Unrouted nets are counted
    /// in `stats.failed_nets` and simply absent from the solution — the
    /// returned structures are always internally consistent.
    pub fn route_with_budget(
        &self,
        design: &Design,
        guides: &RouteGuides,
        budget: &RouteBudget,
    ) -> MrTplResult {
        let _route_span = tpl_trace::span!("core.route", nets = design.nets().len());
        tpl_fault::point!("core.route");
        let mut budget = budget.clone();
        if tpl_fault::trips_budget("core.budget") {
            // Injected budget exhaustion: behave exactly like a zero-node
            // budget and exercise the degraded path.
            budget.max_search_nodes = Some(0);
        }
        let budget = &budget;
        let start = Instant::now();
        let grid = GridGraph::build(design);
        let coverage = PinCoverage::build(&grid, design);
        let mut gstate = GridState::new(&grid, design);
        let mut map = ColorMap::new(
            design.die(),
            design.tech().num_layers(),
            design.tech().dcolor(),
        );
        let par = self.config.parallelism;
        let pool: ScratchPool<(NetBuffers, ColorCostCache)> = ScratchPool::new(par);

        let mut solution = RoutingSolution::new(design.nets().len());
        let mut segment_masks: Vec<Vec<Option<Mask>>> = vec![Vec::new(); design.nets().len()];
        let mut net_vertices: Vec<Vec<VertexId>> = vec![Vec::new(); design.nets().len()];
        let mut stats = MrTplStats::default();
        let mut total_seg_sets = 0usize;

        // Net ordering: small bounding boxes first, deterministic tie-break.
        let mut order: Vec<NetId> = design.nets().iter().map(|n| n.id()).collect();
        order.sort_by_key(|id| {
            (
                design
                    .net_bbox(*id)
                    .map(|b| b.half_perimeter())
                    .unwrap_or(0),
                id.index(),
            )
        });

        // Influence margin for batch planning: nets whose bounding boxes
        // expanded by this stay disjoint cannot interact within dcolor even
        // after detouring a couple of tracks.
        let margin = design.tech().dcolor() + 2 * grid.pitch();

        let mut run_outcome = Outcome::Complete;
        let mut to_route: Vec<NetId> = order.clone();
        'rrr: for iteration in 0..=self.config.max_rrr_iterations {
            let _iter_span = tpl_trace::span!("core.rrr_iteration", iteration = iteration);
            tpl_fault::point!("core.rrr_iteration", iteration);
            stats.rrr_iterations = iteration;
            stats.failed_nets = 0;

            // Rip up every queued net before any of them reroutes, so all
            // tasks of this iteration start from the same committed state.
            {
                let _rip_span = tpl_trace::span!("core.rip_up", nets = to_route.len());
                for &net_id in &to_route {
                    gstate.release_vertices(&net_vertices[net_id.index()], net_id);
                    map.remove_net(net_id);
                    solution.rip_up(net_id);
                    segment_masks[net_id.index()].clear();
                    net_vertices[net_id.index()].clear();
                }
            }

            let regions: Vec<Region> = to_route
                .iter()
                .map(|id| {
                    let r = design
                        .net_bbox(*id)
                        .unwrap_or(design.die())
                        .expanded(margin);
                    Region::new(r.lo.x, r.lo.y, r.hi.x, r.hi.y)
                })
                .collect();

            let batches = plan_batches(&regions);
            for (batch_index, batch) in batches.iter().enumerate() {
                // Budget accounting happens at this barrier only: every net
                // of the batch runs under the same remaining-node snapshot,
                // so the trip point is independent of worker count.
                let remaining = budget.remaining_nodes(stats.search_nodes as u64);
                let barrier_stop = if remaining == 0 {
                    Some(StopReason::SearchNodes)
                } else {
                    budget.interrupted()
                };
                if let Some(reason) = barrier_stop {
                    run_outcome = run_outcome.merge(Outcome::from_stop(reason));
                    // The unprocessed batches were ripped up at iteration
                    // start and stay unrouted; count them so the partial
                    // result is honest about what is missing.
                    stats.failed_nets += batches[batch_index..]
                        .iter()
                        .map(|b| b.len())
                        .sum::<usize>();
                    break 'rrr;
                }
                let nets: Vec<NetId> = batch.iter().map(|&i| to_route[i]).collect();
                tpl_trace::value!("core.batch_size", nets.len());
                let routed = par_map_pooled(
                    par,
                    &nets,
                    &pool,
                    || {
                        (
                            NetBuffers::with_config(grid.num_vertices(), self.config.search),
                            ColorCostCache::new(&grid),
                        )
                    },
                    |(buffers, cache), &net_id| {
                        // Goal direction only during negotiation: see
                        // `NetBuffers::set_goal_directed`.
                        buffers.set_goal_directed(self.config.search.a_star && iteration > 0);
                        buffers.arm_budget(remaining, budget);
                        let out = self.route_net(
                            design, &grid, &coverage, &gstate, buffers, cache, &map, guides, net_id,
                        );
                        let effort = (
                            buffers.nodes_popped(),
                            buffers.frontier_pruned(),
                            buffers.frontier_peak(),
                            buffers.overflow_pushes(),
                            buffers.stop_reason(),
                        );
                        (out, effort)
                    },
                )
                .unwrap_or_else(|p| panic!("{p}"));

                // Barrier: commit occupancy, colour map and solution in net
                // order, identically for every worker count.
                for (
                    net_id,
                    ((colored, vertices, complete), (nodes, pruned, peak, overflow, stop)),
                ) in nets.iter().copied().zip(routed)
                {
                    if !complete {
                        stats.failed_nets += 1;
                    }
                    if let Some(reason) = stop {
                        run_outcome = run_outcome.merge(Outcome::from_stop(reason));
                    }
                    stats.search_nodes += nodes;
                    tpl_trace::counter!("core.search_nodes", nodes);
                    // Kernel effort counters: pruned / popped quantifies how
                    // much of the wavefront goal direction cut away, and the
                    // frontier peak / overflow spill track bucket-queue
                    // occupancy.
                    tpl_trace::counter!("core.search_frontier_pruned", pruned);
                    tpl_trace::counter!("core.bucket_overflow_pushes", overflow);
                    tpl_trace::value!("core.frontier_peak", peak);
                    total_seg_sets += colored.seg_sets;

                    for &v in &vertices {
                        gstate.occupy(v, net_id);
                    }
                    for (seg, mask) in colored
                        .routed
                        .segments
                        .iter()
                        .zip(colored.segment_masks.iter())
                    {
                        map.insert(Feature::wire(net_id, seg.layer, seg.rect(), *mask));
                    }
                    for (pin, mask) in &colored.pin_masks {
                        for (layer, rect) in design.pin(*pin).shapes() {
                            map.insert(Feature::pin(net_id, *layer, *rect, *mask));
                        }
                    }
                    segment_masks[net_id.index()] = colored.segment_masks;
                    net_vertices[net_id.index()] = vertices;
                    solution.set(net_id, colored.routed);
                }
            }

            // Conflict detection on the committed colour map.
            let detect_span = tpl_trace::span!("core.conflict_detect");
            let layout = self.build_layout(design, &map);
            let conflicts = layout.conflicts();
            drop(detect_span);
            tpl_trace::counter!("core.conflicts_found", conflicts.len());
            stats.conflict_history.push(conflicts.len());
            if conflicts.is_empty() || iteration == self.config.max_rrr_iterations {
                break;
            }

            // Rip up & update history cost: for every conflict the feature
            // pair identifies two nets.  Pins cannot move, so the victim is
            // preferably a net whose conflicting feature is a wire; among
            // wires the larger net id loses (deterministic).  The conflict
            // region's vertices get history cost so the reroute avoids it.
            let features = layout.features();
            // Victims are collected into a Vec and sorted+deduped below:
            // deterministic iteration order and no hashing in the RRR loop.
            let mut victims: Vec<NetId> = Vec::new();
            for c in &conflicts {
                let fa = &features[c.a];
                let fb = &features[c.b];
                let (Some(na), Some(nb)) = (fa.net, fb.net) else {
                    continue;
                };
                let a_is_wire = fa.kind == tpl_color::FeatureKind::Wire;
                let b_is_wire = fb.kind == tpl_color::FeatureKind::Wire;
                let victim = match (a_is_wire, b_is_wire) {
                    (true, false) => na,
                    (false, true) => nb,
                    // Wire-wire: the larger net id loses (deterministic).
                    (true, true) => {
                        if na.index() >= nb.index() {
                            na
                        } else {
                            nb
                        }
                    }
                    // Pin-pin: pins cannot move, but rerouting either net
                    // re-colours its pin with full knowledge of the other,
                    // which resolves the conflict unless three differently
                    // coloured neighbours surround the pin.
                    (false, false) => {
                        if na.index() >= nb.index() {
                            na
                        } else {
                            nb
                        }
                    }
                };
                victims.push(victim);
                for rect in [fa.rect, fb.rect] {
                    for v in grid.vertices_in_rect(c.layer, &rect) {
                        gstate.add_history(v, self.config.history_increment);
                    }
                }
            }
            victims.sort_unstable_by_key(|id| id.index());
            victims.dedup();
            if victims.is_empty() {
                break;
            }
            to_route = victims;
        }

        let layout = self.build_layout(design, &map);
        let layout_stats = layout.stats();
        stats.conflicts = layout_stats.conflicts;
        stats.stitches = layout_stats.stitches;
        stats.seg_sets = total_seg_sets;
        stats.runtime_seconds = start.elapsed().as_secs_f64();
        stats.outcome = run_outcome;

        MrTplResult {
            solution,
            segment_masks,
            layout,
            stats,
        }
    }

    /// Builds the evaluation layout from the live colour map.
    fn build_layout(&self, design: &Design, map: &ColorMap) -> ColoredLayout {
        let mut layout = ColoredLayout::new(
            design.die(),
            design.tech().num_layers(),
            design.tech().dcolor(),
        );
        for f in map.live_features() {
            layout.add(*f);
        }
        layout
    }

    /// Routes one multi-pin net (Algorithm 1): seeds the queue with the first
    /// pin's covered vertices in state `111`, repeatedly performs colour-state
    /// searching and backtrace until every pin is connected, then assigns
    /// masks and emits coloured geometry.
    #[allow(clippy::too_many_arguments)]
    fn route_net(
        &self,
        design: &Design,
        grid: &GridGraph,
        coverage: &PinCoverage,
        gstate: &GridState,
        buffers: &mut NetBuffers,
        cache: &mut ColorCostCache,
        map: &ColorMap,
        guides: &RouteGuides,
        net_id: NetId,
    ) -> (ColoredNet, Vec<VertexId>, bool) {
        let _net_span = tpl_trace::span!("core.route_net", net = net_id.index());
        tpl_fault::point!("core.route_net", net_id.index());
        let net = design.net(net_id);
        let in_guide = SearchContext::guide_membership(grid, guides, net_id);
        let ctx = SearchContext {
            grid,
            state: gstate,
            coverage,
            design,
            config: &self.config,
            net: net_id,
            in_guide: &in_guide,
            map,
        };

        buffers.begin_net();
        cache.begin_net();
        let mut arena = ColorSetArena::new();

        // The routed tree: vertices plus the colour state they are re-seeded
        // with (their segSet state once committed).  Membership lives in the
        // epoch-stamped buffers, so there is no per-net hashing.
        let mut tree: Vec<VertexId> = Vec::new();
        let start_pin = net.pins()[0];
        for &v in coverage.vertices(start_pin) {
            if !buffers.in_tree(v) {
                buffers.add_tree(v);
                tree.push(v);
            }
        }
        let mut unreached: Vec<PinId> = net.pins()[1..].to_vec();
        let mut paths: Vec<Vec<VertexId>> = Vec::new();
        let mut complete = true;

        while !unreached.is_empty() {
            // Re-seed sources with their current (possibly narrowed) states.
            let sources: Vec<(VertexId, ColorState)> = tree
                .iter()
                .map(|&v| {
                    let state = buffers
                        .ver_set(v)
                        .map(|vs| arena.seg_state(arena.seg_of(vs)))
                        .unwrap_or_else(ColorState::all);
                    (v, state)
                })
                .collect();

            let search_span = tpl_trace::span!("core.color_search");
            let found = search(&ctx, buffers, cache, &sources, &unreached);
            drop(search_span);
            match found {
                Some((dst, pin)) => {
                    let path = backtrace(buffers, &mut arena, dst);
                    for &v in &path {
                        if !buffers.in_tree(v) {
                            buffers.add_tree(v);
                            tree.push(v);
                        }
                    }
                    paths.push(path);
                    unreached.retain(|p| *p != pin);
                    // Pins whose covered vertices were swallowed by the path
                    // are also connected.
                    unreached
                        .retain(|p| !coverage.vertices(*p).iter().any(|v| buffers.in_tree(*v)));
                }
                None => {
                    complete = false;
                    break;
                }
            }
        }

        let assign_span = tpl_trace::span!("core.assign");
        let colored = assign_and_emit(
            grid, design, coverage, &mut arena, buffers, cache, map, net_id, &paths,
        );
        drop(assign_span);
        (colored, tree, complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_global::{GlobalConfig, GlobalRouter};
    use tpl_ispd::CaseParams;

    fn route_case(scale: f64) -> (Design, MrTplResult) {
        let design = CaseParams::ispd18_like(1).scaled(scale).generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        let result = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
        (design, result)
    }

    #[test]
    fn routes_and_colors_every_net() {
        let (design, result) = route_case(0.3);
        assert_eq!(result.solution.routed_count(), design.nets().len());
        assert_eq!(result.stats.failed_nets, 0);
        // Every emitted segment carries a mask.
        for (net_id, routed) in result.solution.iter() {
            let masks = &result.segment_masks[net_id.index()];
            assert_eq!(masks.len(), routed.segments.len());
            assert!(masks.iter().all(|m| m.is_some()));
        }
    }

    #[test]
    fn every_net_remains_electrically_connected() {
        let (design, result) = route_case(0.3);
        for net in design.nets() {
            let routed = result.solution.get(net.id()).expect("routed");
            assert!(
                routed.connects_all_pins(&design, net.id()),
                "net {} broken after colouring",
                net.name()
            );
        }
    }

    #[test]
    fn small_cases_finish_with_no_conflicts() {
        let (_, result) = route_case(0.3);
        assert_eq!(
            result.stats.conflicts, 0,
            "tiny case should be conflict free"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (_, a) = route_case(0.25);
        let (_, b) = route_case(0.25);
        assert_eq!(a.stats.conflicts, b.stats.conflicts);
        assert_eq!(a.stats.stitches, b.stats.stitches);
        assert_eq!(a.solution.total_wirelength(), b.solution.total_wirelength());
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let design = CaseParams::ispd18_like(1).scaled(0.3).generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        let base = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
        for jobs in [2, 4, 8] {
            let par = MrTplRouter::new(MrTplConfig {
                parallelism: tpl_par::Parallelism::new(jobs),
                ..MrTplConfig::default()
            })
            .route(&design, &guides);
            assert_eq!(
                par.solution.total_wirelength(),
                base.solution.total_wirelength(),
                "wirelength at jobs={jobs}"
            );
            assert_eq!(par.solution.total_vias(), base.solution.total_vias());
            assert_eq!(par.stats.conflicts, base.stats.conflicts);
            assert_eq!(par.stats.stitches, base.stats.stitches);
            assert_eq!(par.stats.search_nodes, base.stats.search_nodes);
            assert_eq!(par.segment_masks, base.segment_masks);
        }
    }

    #[test]
    fn budgeted_run_degrades_deterministically_across_worker_counts() {
        let design = CaseParams::ispd18_like(1).scaled(0.3).generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        // The 0.3-scale case needs ~1.5k search nodes in total; a 300-node
        // budget reliably trips mid-run.
        let budget = RouteBudget::with_max_search_nodes(300);
        let base =
            MrTplRouter::new(MrTplConfig::default()).route_with_budget(&design, &guides, &budget);
        assert_eq!(
            base.stats.outcome,
            Outcome::Degraded(StopReason::SearchNodes)
        );
        assert!(base.stats.failed_nets > 0, "some nets must be left behind");
        for jobs in [2, 4] {
            let par = MrTplRouter::new(MrTplConfig {
                parallelism: tpl_par::Parallelism::new(jobs),
                ..MrTplConfig::default()
            })
            .route_with_budget(&design, &guides, &budget);
            assert_eq!(par.stats.outcome, base.stats.outcome);
            assert_eq!(par.stats.search_nodes, base.stats.search_nodes);
            assert_eq!(par.stats.failed_nets, base.stats.failed_nets);
            assert_eq!(
                par.solution.total_wirelength(),
                base.solution.total_wirelength()
            );
            assert_eq!(par.segment_masks, base.segment_masks);
        }
    }

    #[test]
    fn cancelled_token_aborts_before_routing_anything() {
        let design = CaseParams::ispd18_like(1).scaled(0.25).generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        let token = tpl_grid::CancelToken::new();
        token.cancel();
        let budget = RouteBudget {
            cancel: Some(token),
            ..RouteBudget::default()
        };
        let result =
            MrTplRouter::new(MrTplConfig::default()).route_with_budget(&design, &guides, &budget);
        assert_eq!(
            result.stats.outcome,
            Outcome::Aborted(StopReason::Cancelled)
        );
        assert_eq!(result.solution.routed_count(), 0);
        assert_eq!(result.stats.failed_nets, design.nets().len());
    }

    #[test]
    fn unbudgeted_run_reports_complete() {
        let (_, result) = route_case(0.25);
        assert!(result.stats.outcome.is_complete());
    }

    #[test]
    fn greedy_policy_produces_at_least_as_many_stitches() {
        let design = CaseParams::ispd18_like(2).scaled(0.35).generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        // Pin goal direction off so both policies expand in plain Dijkstra
        // order: the comparison is about the colour policy, and A*'s
        // equal-cost tie-breaking would add noise to the stitch counts.
        let search = tpl_grid::SearchConfig {
            a_star: false,
            ..tpl_grid::SearchConfig::default()
        };
        let set_based = MrTplRouter::new(MrTplConfig {
            search,
            ..MrTplConfig::default()
        })
        .route(&design, &guides);
        let greedy = MrTplRouter::new(MrTplConfig {
            policy: crate::SearchPolicy::GreedySingleColor,
            search,
            ..MrTplConfig::default()
        })
        .route(&design, &guides);
        assert!(
            greedy.stats.stitches >= set_based.stats.stitches,
            "greedy {} vs set-based {}",
            greedy.stats.stitches,
            set_based.stats.stitches
        );
    }
}
