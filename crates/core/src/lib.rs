//! Mr.TPL: a triple-patterning-aware detailed router for multi-pin nets.
//!
//! This crate is the reproduction of the paper's primary contribution.  It
//! routes every net of a design on the shared grid substrate while carrying a
//! **set-valued colour state** (a 3-bit mask-candidate set, Table I of the
//! paper) on every search vertex:
//!
//! 1. **Colour-state searching** ([`search`], Algorithm 2): a multi-source
//!    Dijkstra whose expansion evaluates, per direction, the cost of each of
//!    the three masks (traditional cost + colour-conflict pressure + stitch
//!    cost when the mask is not in the current state) and keeps the *set* of
//!    masks attaining the minimum.
//! 2. **Backtrace** ([`backtrace`], Algorithm 3): walks predecessors from the
//!    reached pin, grouping vertices into verSets and segSets; states are
//!    intersected along the path, and a stitch is exactly a segSet boundary.
//! 3. **Mask assignment** (the `assign` module): every segSet commits to the candidate
//!    mask with the lowest conflict pressure; wire geometry is emitted with
//!    one mask per segment.
//! 4. **Rip-up and reroute**: remaining colour conflicts bump history costs
//!    and send the cheaper party back through steps 1–3.
//!
//! # Examples
//!
//! ```
//! use mrtpl_core::{MrTplConfig, MrTplRouter};
//! use tpl_global::{GlobalConfig, GlobalRouter};
//! use tpl_ispd::CaseParams;
//!
//! let design = CaseParams::ispd18_like(1).scaled(0.25).generate();
//! let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
//! let result = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
//! assert_eq!(result.solution.routed_count(), design.nets().len());
//! ```

#![warn(missing_docs)]

mod assign;
mod backtrace;
mod colorcost;
mod config;
mod router;
mod search;

pub use assign::ColoredNet;
pub use backtrace::backtrace;
pub use colorcost::ColorCostCache;
pub use config::{MrTplConfig, MrTplStats, SearchPolicy};
pub use router::{MrTplResult, MrTplRouter};
pub use search::{search, NetBuffers, SearchContext};
