//! Backtrace with verSet / segSet merging (Algorithm 3).

use crate::NetBuffers;
use tpl_color::ColorSetArena;
use tpl_grid::VertexId;

/// Walks predecessors from the reached pin vertex back to the routed tree,
/// building verSets and segSets along the way (Algorithm 3 of the paper).
///
/// * Every path vertex without a verSet gets a fresh verSet (and a fresh
///   segSet) carrying its search-time colour state.
/// * When a vertex and its predecessor share at least one colour, the
///   predecessor joins the vertex's verSet (if it has none) or the two
///   segSets are merged: the current segSet's state is narrowed to the shared
///   colours and the predecessor's verSet is re-pointed to it.
/// * When they share no colour the predecessor keeps (or later creates) its
///   own segSet — that boundary is a stitch.
///
/// Returns the path ordered from the tree/source vertex to the destination.
pub fn backtrace(
    buffers: &mut NetBuffers,
    arena: &mut ColorSetArena,
    dst: VertexId,
) -> Vec<VertexId> {
    let mut path = vec![dst];
    let mut vertex = dst;

    loop {
        // Ensure the current vertex belongs to a verSet.
        if buffers.ver_set(vertex).is_none() {
            let vs = arena.make_ver_set(buffers.state(vertex));
            buffers.set_ver_set(vertex, vs);
        } else {
            arena.add_member(buffers.ver_set(vertex).expect("just checked"));
        }
        let Some(prev) = buffers.prev(vertex) else {
            break;
        };

        let vertex_set = buffers.ver_set(vertex).expect("assigned above");
        let vertex_seg = arena.seg_of(vertex_set);
        let vertex_state = arena.seg_state(vertex_seg);
        // The predecessor's effective state: its committed segSet state if it
        // is already part of the routed tree, otherwise its search state.
        let prev_state = match buffers.ver_set(prev) {
            Some(ps) => arena.seg_state(arena.seg_of(ps)),
            None => buffers.state(prev),
        };

        if vertex_state.shares_color(prev_state) {
            let shared = vertex_state.intersect(prev_state);
            match buffers.ver_set(prev) {
                None => {
                    // The predecessor joins the current verSet; the segSet
                    // state narrows to the colours legal for both, so the
                    // final per-segSet mask is printable on every member
                    // (Definition 3: all verSets of a segSet share a state).
                    buffers.set_ver_set(prev, vertex_set);
                    arena.change_seg_state(vertex_seg, shared);
                }
                Some(prev_set) => {
                    // Merge: narrow the current segSet to the shared colours
                    // and absorb the predecessor's verSet into it.
                    arena.change_seg_state(vertex_seg, shared);
                    arena.set_seg_of(prev_set, vertex_seg);
                }
            }
        }
        // No shared colour: nothing to merge — the predecessor will create or
        // keep its own segSet, and the boundary becomes a stitch.

        path.push(prev);
        vertex = prev;
    }

    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_color::{ColorState, Mask};

    /// Builds a tiny artificial "search result" in the buffers: a straight
    /// chain of vertices v0 <- v1 <- ... <- vn with given colour states.
    fn chain(states: &[ColorState]) -> (NetBuffers, Vec<VertexId>) {
        let mut buffers = NetBuffers::new(states.len());
        buffers.begin_net();
        buffers.begin_search();
        let vertices: Vec<VertexId> = (0..states.len() as u32).map(VertexId::new).collect();
        for (i, &v) in vertices.iter().enumerate() {
            let prev = if i == 0 { None } else { Some(vertices[i - 1]) };
            buffers.relax(v, i as f64, prev, states[i]);
        }
        (buffers, vertices)
    }

    #[test]
    fn uniform_states_produce_a_single_seg_set() {
        let states = vec![ColorState::all(); 5];
        let (mut buffers, vertices) = chain(&states);
        let mut arena = ColorSetArena::new();
        let path = backtrace(&mut buffers, &mut arena, vertices[4]);
        assert_eq!(path, vertices);
        // Every vertex ends up in the same segSet.
        let seg0 = arena.seg_of(buffers.ver_set(vertices[0]).unwrap());
        for v in &vertices {
            assert_eq!(arena.seg_of(buffers.ver_set(*v).unwrap()), seg0);
        }
        assert_eq!(arena.seg_state(seg0), ColorState::all());
    }

    #[test]
    fn narrowing_states_converge_to_the_intersection() {
        // The destination still allows {red, blue} but the earlier part of
        // the path allows only {blue}: the merged segSet must end up blue.
        let states = vec![
            ColorState::from_mask(Mask::Blue),
            ColorState::from_mask(Mask::Blue),
            ColorState::from_bits(0b101),
            ColorState::from_bits(0b101),
        ];
        let (mut buffers, vertices) = chain(&states);
        let mut arena = ColorSetArena::new();
        backtrace(&mut buffers, &mut arena, vertices[3]);
        let seg = arena.seg_of(buffers.ver_set(vertices[3]).unwrap());
        assert_eq!(arena.seg_state(seg), ColorState::from_mask(Mask::Blue));
    }

    #[test]
    fn disjoint_states_create_a_stitch_boundary() {
        // Green-only followed by red-only: no shared colour, so the path
        // splits into two segSets (one stitch).
        let states = vec![
            ColorState::from_mask(Mask::Green),
            ColorState::from_mask(Mask::Green),
            ColorState::from_mask(Mask::Red),
            ColorState::from_mask(Mask::Red),
        ];
        let (mut buffers, vertices) = chain(&states);
        let mut arena = ColorSetArena::new();
        backtrace(&mut buffers, &mut arena, vertices[3]);
        let seg_head = arena.seg_of(buffers.ver_set(vertices[0]).unwrap());
        let seg_tail = arena.seg_of(buffers.ver_set(vertices[3]).unwrap());
        assert_ne!(seg_head, seg_tail);
        assert_eq!(
            arena.seg_state(seg_head),
            ColorState::from_mask(Mask::Green)
        );
        assert_eq!(arena.seg_state(seg_tail), ColorState::from_mask(Mask::Red));
        // Exactly the two vertices on each side of the boundary disagree.
        assert_eq!(
            arena.seg_of(buffers.ver_set(vertices[1]).unwrap()),
            seg_head
        );
        assert_eq!(
            arena.seg_of(buffers.ver_set(vertices[2]).unwrap()),
            seg_tail
        );
    }

    #[test]
    fn joining_an_existing_tree_reuses_its_seg_set() {
        // Simulate a second path whose source vertex already belongs to a
        // verSet from an earlier path (the routed tree).
        let states = vec![
            ColorState::from_bits(0b110),
            ColorState::all(),
            ColorState::all(),
        ];
        let (mut buffers, vertices) = chain(&states);
        let mut arena = ColorSetArena::new();
        // Pretend vertex 0 is already on the tree with a committed verSet
        // whose segSet state is {red, green}.
        let existing = arena.make_ver_set(ColorState::from_bits(0b110));
        buffers.set_ver_set(vertices[0], existing);
        backtrace(&mut buffers, &mut arena, vertices[2]);
        // All three vertices are now in the same segSet, narrowed to the
        // shared colours {red, green}.
        let seg = arena.seg_of(buffers.ver_set(vertices[2]).unwrap());
        assert_eq!(arena.seg_of(existing), seg);
        assert_eq!(arena.seg_state(seg), ColorState::from_bits(0b110));
    }

    #[test]
    fn single_vertex_path_is_handled() {
        let states = vec![ColorState::all()];
        let (mut buffers, vertices) = chain(&states);
        let mut arena = ColorSetArena::new();
        let path = backtrace(&mut buffers, &mut arena, vertices[0]);
        assert_eq!(path, vertices);
        assert!(buffers.ver_set(vertices[0]).is_some());
    }
}
