//! Colour-state searching (Algorithm 2) on the epoch-stamped search kernel.
//!
//! The kernel combines three compounding optimisations over the original
//! blind Dijkstra wavefront:
//!
//! * **Epoch-stamped buffers** — [`NetBuffers`] keeps per-vertex distance,
//!   predecessor, colour state, queued key, target marks, verSet and tree
//!   membership in flat arrays guarded by [`EpochStamps`], so starting a
//!   search costs O(sources + targets) instead of O(V).  The buffers are
//!   arena-pooled per `tpl-par` worker by the router.
//! * **Bucket frontier** — the priority queue is a [`Frontier`]: either the
//!   monotone bucket queue or a binary heap, with provably identical pop
//!   order (so the `bucket_queue` knob never changes results).
//! * **Goal-directed A\*** — an admissible, consistent Manhattan lower bound
//!   to the nearest unreached pin's coverage box steers expansion towards
//!   the goal instead of growing a full circle around the tree.  The router
//!   engages it only during negotiation iterations (see
//!   [`NetBuffers::set_goal_directed`]), which hold the bulk of the search
//!   effort, so the initial pass keeps the seed's solution quality.
//!
//! Stale heap entries are detected exactly: every queued vertex remembers the
//! key it was queued with, so two costs that quantise to the same key can
//! never resurrect a stale entry, and an improvement within one quantum
//! reuses the already-queued entry instead of pushing a duplicate.

use crate::{ColorCostCache, MrTplConfig, SearchPolicy};
use std::time::Instant;
use tpl_color::{ColorMap, ColorState, Mask};
use tpl_design::{Design, NetId, PinId, RouteGuides};
use tpl_geom::Dir;
use tpl_grid::{
    CancelToken, DenseBitSet, EpochStamps, Frontier, GridGraph, GridState, PinCoverage,
    RouteBudget, SearchConfig, StopReason, VertexId,
};

/// How many pops pass between wall-clock/cancellation probes (a power of
/// two; node-count budgeting stays exact and per-pop).
const INTERRUPT_PROBE_MASK: usize = 0x0FFF;

/// Per-vertex search bookkeeping with three levels of epoch invalidation:
/// per-search (distance, predecessor, colour state, queued key, target
/// marks), and per-net (verSet membership and routed-tree membership, which
/// must survive across the several pin-to-tree searches of one multi-pin
/// net).
#[derive(Debug)]
pub struct NetBuffers {
    config: SearchConfig,
    /// Guards `dist`, `prev`, `state` and `queued_key`.
    search: EpochStamps,
    dist: Vec<f64>,
    prev: Vec<u32>,
    state: Vec<u8>,
    /// The exact key the vertex is currently queued under (stale-entry test).
    queued_key: Vec<u64>,
    /// Guards `target_pin`: which vertices are goals of the current search.
    target: EpochStamps,
    target_pin: Vec<u32>,
    /// Guards `ver_set`.
    net: EpochStamps,
    ver_set: Vec<u32>,
    /// Guards routed-tree membership (replaces the router's `HashSet`).
    tree: EpochStamps,
    frontier: Frontier,
    nodes_popped: usize,
    frontier_pruned: usize,
    frontier_peak: usize,
    overflow_pushes: u64,
    /// Pops the current net may still spend (`u64::MAX` = unbudgeted).  The
    /// router arms this per net from the batch's budget snapshot, so the
    /// value — and therefore where a search stops — is a pure function of
    /// the committed state, independent of worker count.
    node_limit: u64,
    /// Wall-clock cut-off, probed every [`INTERRUPT_PROBE_MASK`]+1 pops.
    deadline: Option<Instant>,
    /// Cooperative cancellation, probed alongside the deadline.
    cancel: Option<CancelToken>,
    /// Set when a search of the current net stopped on a budget limit;
    /// further searches of the net return `None` immediately.
    stop: Option<StopReason>,
}

impl NetBuffers {
    /// Creates buffers for `num_vertices` grid vertices with default knobs.
    pub fn new(num_vertices: usize) -> Self {
        Self::with_config(num_vertices, SearchConfig::default())
    }

    /// Creates buffers for `num_vertices` grid vertices with the given
    /// kernel configuration.
    pub fn with_config(num_vertices: usize, config: SearchConfig) -> Self {
        Self {
            config,
            search: EpochStamps::new(num_vertices),
            dist: vec![f64::INFINITY; num_vertices],
            prev: vec![u32::MAX; num_vertices],
            state: vec![0; num_vertices],
            queued_key: vec![0; num_vertices],
            target: EpochStamps::new(num_vertices),
            target_pin: vec![u32::MAX; num_vertices],
            net: EpochStamps::new(num_vertices),
            ver_set: vec![u32::MAX; num_vertices],
            tree: EpochStamps::new(num_vertices),
            frontier: Frontier::for_config(&config),
            nodes_popped: 0,
            frontier_pruned: 0,
            frontier_peak: 0,
            overflow_pushes: 0,
            node_limit: u64::MAX,
            deadline: None,
            cancel: None,
            stop: None,
        }
    }

    /// The kernel configuration these buffers were built with.
    pub fn config(&self) -> SearchConfig {
        self.config
    }

    /// Starts routing a new net: verSet and tree membership become stale and
    /// the per-net search statistics restart from zero.
    pub fn begin_net(&mut self) {
        self.net.begin();
        self.tree.begin();
        self.nodes_popped = 0;
        self.frontier_pruned = 0;
        self.frontier_peak = 0;
        self.overflow_pushes = 0;
        self.stop = None;
    }

    /// Arms the cooperative budget for the next net: `remaining` caps this
    /// net's frontier pops (the batch-barrier snapshot of the run budget),
    /// and the budget's deadline/cancellation are probed at expansion
    /// granularity.  Buffers start unbudgeted (`u64::MAX`, no probes).
    pub fn arm_budget(&mut self, remaining: u64, budget: &RouteBudget) {
        self.node_limit = remaining;
        self.deadline = budget.deadline;
        self.cancel = budget.cancel.clone();
        self.stop = None;
    }

    /// Why searches of the current net stopped early, if they did.  A
    /// `None` result from [`search`] with a stop reason set means "budget
    /// exhausted", not "no path exists".
    #[inline]
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop
    }

    /// The deadline/cancellation probe, run every few thousand pops.
    #[inline]
    fn interrupted(&self) -> Option<StopReason> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopReason::Deadline);
        }
        None
    }

    /// Frontier pops performed by [`search`] since the last
    /// [`begin_net`](Self::begin_net) — the search-effort counter reported as
    /// `search_nodes` in run statistics.
    #[inline]
    pub fn nodes_popped(&self) -> usize {
        self.nodes_popped
    }

    /// Frontier entries abandoned unexpanded when searches of this net ended
    /// early — the goal-direction pruning counter.
    #[inline]
    pub fn frontier_pruned(&self) -> usize {
        self.frontier_pruned
    }

    /// High-water mark of live frontier entries across this net's searches.
    #[inline]
    pub fn frontier_peak(&self) -> usize {
        self.frontier_peak
    }

    /// Bucket-queue pushes that spilled to the overflow heap for this net.
    #[inline]
    pub fn overflow_pushes(&self) -> u64 {
        self.overflow_pushes
    }

    /// Starts a new pin-to-tree search within the current net.
    pub fn begin_search(&mut self) {
        self.search.begin();
        self.target.begin();
    }

    /// Enables or disables goal-directed ordering for subsequent searches of
    /// this buffer.
    ///
    /// The router keeps the seed's pure-Dijkstra expansion order for the
    /// initial routing pass and engages A* during the negotiation
    /// (rip-up-and-reroute) iterations.  The initial pass routes every net
    /// over an empty, cost-flat grid where equal-cost tie-breaks decide how
    /// nets share corridors: goal bias there pulls every net onto its
    /// beeline, bundles them, and measurably worsens colour conflicts.
    /// Reroutes instead run against committed occupancy, history and colour
    /// pressure that differentiate path costs, so goal direction prunes the
    /// wavefront — the bulk of total search effort — without degrading the
    /// negotiated solution.
    pub fn set_goal_directed(&mut self, enabled: bool) {
        self.config.a_star = enabled;
    }

    /// Test hook: jump all epoch counters to `epoch` to exercise `u32`
    /// wrap-around without 2^32 searches.
    #[doc(hidden)]
    pub fn force_epochs(&mut self, epoch: u32) {
        self.search.force_epoch(epoch);
        self.target.force_epoch(epoch);
        self.net.force_epoch(epoch);
        self.tree.force_epoch(epoch);
    }

    /// Tentative distance of a vertex in the current search.
    #[inline]
    pub fn dist(&self, v: VertexId) -> f64 {
        if self.search.is_fresh(v.index()) {
            self.dist[v.index()]
        } else {
            f64::INFINITY
        }
    }

    /// Relaxes a vertex with a new distance, predecessor and colour state.
    #[inline]
    pub fn relax(&mut self, v: VertexId, dist: f64, prev: Option<VertexId>, state: ColorState) {
        let i = v.index();
        let fresh = self.search.is_fresh(i);
        self.search.touch(i);
        self.dist[i] = dist;
        self.prev[i] = prev.map(|p| p.0).unwrap_or(u32::MAX);
        self.state[i] = state.bits();
        if !fresh {
            // Never queued in this search: no key can be mistaken as live.
            self.queued_key[i] = u64::MAX;
        }
    }

    /// The predecessor of a vertex in the current search.
    #[inline]
    pub fn prev(&self, v: VertexId) -> Option<VertexId> {
        if self.search.is_fresh(v.index()) && self.prev[v.index()] != u32::MAX {
            Some(VertexId::new(self.prev[v.index()]))
        } else {
            None
        }
    }

    /// The colour state a vertex was relaxed with in the current search.
    #[inline]
    pub fn state(&self, v: VertexId) -> ColorState {
        if self.search.is_fresh(v.index()) {
            ColorState::from_bits(self.state[v.index()])
        } else {
            ColorState::none()
        }
    }

    /// Marks a vertex as a goal of the current search for `pin`.
    #[inline]
    pub fn mark_target(&mut self, v: VertexId, pin: PinId) {
        let i = v.index();
        self.target.touch(i);
        self.target_pin[i] = pin.0;
    }

    /// The unreached pin this vertex is a goal for, if any (O(1)).
    #[inline]
    pub fn target_at(&self, v: VertexId) -> Option<PinId> {
        if self.target.is_fresh(v.index()) {
            Some(PinId::new(self.target_pin[v.index()]))
        } else {
            None
        }
    }

    /// The verSet the vertex belongs to within the current net, if assigned.
    #[inline]
    pub fn ver_set(&self, v: VertexId) -> Option<tpl_color::VerSetId> {
        if self.net.is_fresh(v.index()) && self.ver_set[v.index()] != u32::MAX {
            Some(tpl_color::VerSetId(self.ver_set[v.index()]))
        } else {
            None
        }
    }

    /// Assigns the vertex to a verSet for the current net.
    #[inline]
    pub fn set_ver_set(&mut self, v: VertexId, set: tpl_color::VerSetId) {
        let i = v.index();
        self.net.touch(i);
        self.ver_set[i] = set.0;
    }

    /// Marks a vertex as part of the current net's routed tree.
    #[inline]
    pub fn add_tree(&mut self, v: VertexId) {
        self.tree.touch(v.index());
    }

    /// True when the vertex belongs to the current net's routed tree.
    #[inline]
    pub fn in_tree(&self, v: VertexId) -> bool {
        self.tree.is_fresh(v.index())
    }
}

/// Borrowed context for routing a single net.
pub struct SearchContext<'a> {
    /// The routing grid.
    pub grid: &'a GridGraph,
    /// Blockage / occupancy / history state.
    pub state: &'a GridState,
    /// Pin-to-vertex coverage.
    pub coverage: &'a PinCoverage,
    /// The design being routed.
    pub design: &'a Design,
    /// Router configuration (weights of Eq. (1)).
    pub config: &'a MrTplConfig,
    /// The net being routed.
    pub net: NetId,
    /// Whether each vertex lies inside the net's route guide.
    pub in_guide: &'a DenseBitSet,
    /// Already-coloured features of other nets.
    pub map: &'a ColorMap,
}

impl<'a> SearchContext<'a> {
    /// Per-net guide membership (nets without guide regions are free).
    pub fn guide_membership(grid: &GridGraph, guides: &RouteGuides, net: NetId) -> DenseBitSet {
        let regions = guides.regions(net);
        if regions.is_empty() {
            return DenseBitSet::full(grid.num_vertices());
        }
        let mut mask = DenseBitSet::new(grid.num_vertices());
        for region in regions {
            for v in grid.vertices_in_rect(region.layer, &region.rect) {
                mask.insert(v.index());
            }
        }
        mask
    }

    /// The traditional (colour-free) part of the cost of stepping from
    /// `from` onto `to`, or `None` when `to` is blocked.
    pub fn trad_cost(&self, from: VertexId, to: VertexId, dir: Dir) -> Option<f64> {
        if self.state.is_blocked(to) {
            return None;
        }
        let cost = &self.config.cost;
        let mut c = if dir.is_via() {
            cost.via
        } else if self.grid.is_wrong_way(from, dir) {
            cost.wrong_way_cost(self.grid.pitch())
        } else {
            cost.wire_cost(self.grid.pitch())
        };
        if dir.is_planar() && self.grid.layer_of(to).index() == 0 {
            c *= cost.base_layer_mult;
        }
        if !self.in_guide.get(to.index()) {
            c += cost.out_of_guide * self.grid.pitch() as f64;
        }
        if self.state.is_occupied_by_other(to, self.net) {
            c += cost.occupied;
        }
        if let Some(pin) = self.coverage.pin_at(to) {
            if self.design.pin(pin).net() != self.net {
                c += cost.occupied;
            }
        }
        c += cost.history_weight * self.state.history(to);
        Some(c)
    }

    /// Evaluates the 3×2 colour-cost table of Algorithm 2 for one step and
    /// returns the minimum cost together with the set of masks attaining it.
    pub fn color_step(
        &self,
        cache: &mut ColorCostCache,
        from_state: ColorState,
        to: VertexId,
        dir: Dir,
        trad: f64,
    ) -> (f64, ColorState) {
        let pressure = cache.pressure(self.grid, self.map, self.net, to);
        let mut best = f64::INFINITY;
        let mut best_set = ColorState::none();
        const EPS: f64 = 1e-9;
        for mask in Mask::ALL {
            let mut c = self.config.alpha * trad
                + self.config.color_conflict_cost * pressure[mask.index()] as f64;
            if dir.is_planar() && !from_state.contains(mask) {
                c += self.config.stitch_cost;
            }
            if c + EPS < best {
                best = c;
                best_set = ColorState::from_mask(mask);
            } else if (c - best).abs() <= EPS {
                best_set = best_set.with(mask);
            }
        }
        if self.config.policy == SearchPolicy::GreedySingleColor {
            if let Some(first) = best_set.first() {
                best_set = ColorState::from_mask(first);
            }
        }
        (best, best_set)
    }
}

/// Admissible lower bound to the nearest unreached pin.
///
/// Each unreached pin contributes the bounding box of its coverage vertices
/// in track coordinates plus its layer range; `h(v)` is the cheapest
/// conceivable cost of closing the Manhattan gap to the nearest box: planar
/// track gaps cost at least the minimum planar step and layer gaps at least
/// one via each.  Every additive cost term of [`SearchContext::trad_cost`]
/// and [`SearchContext::color_step`] is non-negative on top of these minima,
/// so the bound is admissible; one grid move changes each gap by at most one
/// step, so it is also consistent and the first goal popped is optimal.
struct GoalBound {
    boxes: Vec<(i32, i32, i32, i32, i32, i32)>,
    step: f64,
    via: f64,
}

impl GoalBound {
    fn build(ctx: &SearchContext<'_>, unreached: &[PinId]) -> Option<Self> {
        let cost = &ctx.config.cost;
        // Conservative minima: honour configs where the wrong-way or
        // base-layer multipliers dip below 1.
        let mult = cost
            .wrong_way_mult
            .min(1.0)
            .min(cost.base_layer_mult.min(1.0));
        let step = (ctx.config.alpha * cost.wire_cost(ctx.grid.pitch()) * mult).max(0.0);
        let via = (ctx.config.alpha * cost.via).max(0.0);
        let mut boxes = Vec::with_capacity(unreached.len());
        for &pin in unreached {
            let mut bbox: Option<(i32, i32, i32, i32, i32, i32)> = None;
            for &v in ctx.coverage.vertices(pin) {
                let (layer, ix, iy) = ctx.grid.coords(v);
                let (l, x, y) = (layer as i32, ix as i32, iy as i32);
                bbox = Some(match bbox {
                    None => (x, x, y, y, l, l),
                    Some((x0, x1, y0, y1, l0, l1)) => (
                        x0.min(x),
                        x1.max(x),
                        y0.min(y),
                        y1.max(y),
                        l0.min(l),
                        l1.max(l),
                    ),
                });
            }
            if let Some(b) = bbox {
                boxes.push(b);
            }
        }
        if boxes.is_empty() {
            return None;
        }
        Some(Self { boxes, step, via })
    }

    #[inline]
    fn h(&self, grid: &GridGraph, v: VertexId) -> f64 {
        let (layer, ix, iy) = grid.coords(v);
        let (l, x, y) = (layer as i32, ix as i32, iy as i32);
        let mut best = f64::INFINITY;
        for &(x0, x1, y0, y1, l0, l1) in &self.boxes {
            let dx = (x0 - x).max(x - x1).max(0);
            let dy = (y0 - y).max(y - y1).max(0);
            let dl = (l0 - l).max(l - l1).max(0);
            let h = (dx + dy) as f64 * self.step + dl as f64 * self.via;
            if h < best {
                best = h;
            }
        }
        best
    }
}

/// Colour-state searching (Algorithm 2): multi-source best-first search from
/// the routed tree until a vertex covered by an unreached pin of the net is
/// popped.  Returns that vertex and the pin, or `None` if no unreached pin is
/// reachable.
pub fn search(
    ctx: &SearchContext<'_>,
    buffers: &mut NetBuffers,
    cache: &mut ColorCostCache,
    sources: &[(VertexId, ColorState)],
    unreached: &[PinId],
) -> Option<(VertexId, PinId)> {
    if buffers.stop.is_some() {
        // The net already hit its budget in an earlier pin-to-tree search;
        // don't start another one.
        return None;
    }
    buffers.begin_search();
    // O(targets) goal marking: a vertex is a goal exactly when the seed's
    // linear test (`pin_at(v)` unreached) would have said so.
    for &pin in unreached {
        for &v in ctx.coverage.vertices(pin) {
            if ctx.coverage.pin_at(v) == Some(pin) {
                buffers.mark_target(v, pin);
            }
        }
    }
    let config = buffers.config;
    let bound = if config.a_star {
        GoalBound::build(ctx, unreached)
    } else {
        None
    };
    let h = |v: VertexId| bound.as_ref().map_or(0.0, |b| b.h(ctx.grid, v));

    let mut frontier = std::mem::replace(&mut buffers.frontier, Frontier::for_config(&config));
    frontier.clear();
    for &(s, state) in sources {
        if ctx.state.is_blocked(s) {
            continue;
        }
        buffers.relax(s, 0.0, None, state);
        let k = config.key(h(s));
        buffers.queued_key[s.index()] = k;
        frontier.push(k, s.0);
    }

    let mut result = None;
    while let Some((k, raw)) = frontier.pop() {
        if buffers.nodes_popped as u64 >= buffers.node_limit {
            buffers.stop = Some(StopReason::SearchNodes);
            break;
        }
        if buffers.nodes_popped & INTERRUPT_PROBE_MASK == 0 {
            if let Some(reason) = buffers.interrupted() {
                buffers.stop = Some(reason);
                break;
            }
        }
        buffers.nodes_popped += 1;
        let v = VertexId::new(raw);
        if k != buffers.queued_key[v.index()] || !buffers.search.is_fresh(v.index()) {
            continue; // stale entry (exact key comparison, no quantisation alias)
        }
        if let Some(pin) = buffers.target_at(v) {
            result = Some((v, pin));
            break;
        }
        let d = buffers.dist(v);
        let from_state = buffers.state(v);
        for (dir, n) in ctx.grid.neighbors(v) {
            let Some(trad) = ctx.trad_cost(v, n, dir) else {
                continue;
            };
            let (step, new_state) = ctx.color_step(cache, from_state, n, dir, trad);
            let nd = d + step;
            if nd < buffers.dist(n) {
                let was_fresh = buffers.search.is_fresh(n.index());
                buffers.relax(n, nd, Some(v), new_state);
                let nk = config.key(nd + h(n));
                if !was_fresh || buffers.queued_key[n.index()] != nk {
                    // An improvement that lands on the already-queued key
                    // reuses that entry; it will expand with the new, better
                    // distance.  Otherwise queue under the new key and let
                    // the exact stale test retire the old entry.
                    buffers.queued_key[n.index()] = nk;
                    frontier.push(nk, n.0);
                }
            }
        }
    }
    buffers.frontier_pruned += frontier.len();
    buffers.frontier_peak = buffers.frontier_peak.max(frontier.max_len());
    buffers.overflow_pushes += frontier.overflow_pushes();
    buffers.frontier = frontier;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_color::Feature;
    use tpl_design::{DesignBuilder, LayerId, Technology};
    use tpl_geom::Rect;

    struct Fixture {
        design: Design,
        grid: GridGraph,
        gstate: GridState,
        coverage: PinCoverage,
        map: ColorMap,
        config: MrTplConfig,
    }

    fn fixture() -> Fixture {
        let mut b = DesignBuilder::new(
            "search",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 400, 400),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(6, 6, 14, 14));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(366, 6, 374, 14));
        b.add_net("n0", vec![p0, p1]);
        let design = b.build().unwrap();
        let grid = GridGraph::build(&design);
        let gstate = GridState::new(&grid, &design);
        let coverage = PinCoverage::build(&grid, &design);
        let map = ColorMap::new(
            design.die(),
            design.tech().num_layers(),
            design.tech().dcolor(),
        );
        Fixture {
            design,
            grid,
            gstate,
            coverage,
            map,
            config: MrTplConfig::default(),
        }
    }

    fn ctx<'a>(f: &'a Fixture, in_guide: &'a DenseBitSet) -> SearchContext<'a> {
        SearchContext {
            grid: &f.grid,
            state: &f.gstate,
            coverage: &f.coverage,
            design: &f.design,
            config: &f.config,
            net: NetId::new(0),
            in_guide,
            map: &f.map,
        }
    }

    fn all_sources(f: &Fixture) -> Vec<(VertexId, ColorState)> {
        f.coverage
            .vertices(PinId::new(0))
            .iter()
            .map(|v| (*v, ColorState::all()))
            .collect()
    }

    #[test]
    fn search_reaches_the_second_pin_with_full_color_state() {
        let f = fixture();
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut buffers = NetBuffers::new(f.grid.num_vertices());
        let mut cache = ColorCostCache::new(&f.grid);
        buffers.begin_net();
        cache.begin_net();
        let sources = all_sources(&f);
        let (dst, pin) =
            search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)]).expect("path exists");
        assert_eq!(pin, PinId::new(1));
        // On an empty die nothing constrains the colours: the destination
        // keeps all three candidates alive.
        assert_eq!(buffers.state(dst), ColorState::all());
        // The path has monotonically non-increasing distance towards the
        // source.
        let mut v = dst;
        let mut d = buffers.dist(v);
        while let Some(p) = buffers.prev(v) {
            assert!(buffers.dist(p) <= d + 1e-9);
            d = buffers.dist(p);
            v = p;
        }
        assert_eq!(buffers.dist(v), 0.0);
    }

    #[test]
    fn every_knob_combination_reaches_the_pin_at_identical_cost() {
        let f = fixture();
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut reference: Option<f64> = None;
        for a_star in [false, true] {
            for bucket_queue in [false, true] {
                let config = SearchConfig {
                    a_star,
                    bucket_queue,
                    ..SearchConfig::default()
                };
                let mut buffers = NetBuffers::with_config(f.grid.num_vertices(), config);
                let mut cache = ColorCostCache::new(&f.grid);
                buffers.begin_net();
                cache.begin_net();
                let sources = all_sources(&f);
                let (dst, _) = search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)])
                    .expect("path exists");
                let d = buffers.dist(dst);
                match reference {
                    None => reference = Some(d),
                    Some(r) => assert!(
                        (d - r).abs() < 1e-6,
                        "a_star={a_star} bucket={bucket_queue}: cost {d} != {r}"
                    ),
                }
            }
        }
    }

    #[test]
    fn a_star_prunes_the_frontier() {
        let f = fixture();
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut popped = Vec::new();
        for a_star in [false, true] {
            let config = SearchConfig {
                a_star,
                ..SearchConfig::default()
            };
            let mut buffers = NetBuffers::with_config(f.grid.num_vertices(), config);
            let mut cache = ColorCostCache::new(&f.grid);
            buffers.begin_net();
            cache.begin_net();
            let sources = all_sources(&f);
            search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)]).expect("path exists");
            popped.push(buffers.nodes_popped());
        }
        assert!(
            popped[1] < popped[0],
            "goal direction must reduce pops: {popped:?}"
        );
    }

    #[test]
    fn node_budget_stops_the_search_with_a_reason() {
        let f = fixture();
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut buffers = NetBuffers::new(f.grid.num_vertices());
        let mut cache = ColorCostCache::new(&f.grid);
        buffers.begin_net();
        cache.begin_net();
        let sources = all_sources(&f);
        buffers.arm_budget(10, &RouteBudget::with_max_search_nodes(10));
        let got = search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)]);
        assert_eq!(got, None, "ten pops cannot cross the die");
        assert_eq!(buffers.stop_reason(), Some(StopReason::SearchNodes));
        assert!(buffers.nodes_popped() <= 10);
        // Once stopped, further searches of the net refuse to start.
        assert_eq!(
            search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)]),
            None
        );
        // Re-arming unbudgeted finds the pin again.
        buffers.begin_net();
        cache.begin_net();
        buffers.arm_budget(u64::MAX, &RouteBudget::default());
        assert!(search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)]).is_some());
        assert_eq!(buffers.stop_reason(), None);
    }

    #[test]
    fn cancellation_aborts_the_search() {
        let f = fixture();
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut buffers = NetBuffers::new(f.grid.num_vertices());
        let mut cache = ColorCostCache::new(&f.grid);
        buffers.begin_net();
        cache.begin_net();
        let token = CancelToken::new();
        token.cancel();
        let budget = RouteBudget {
            cancel: Some(token),
            ..RouteBudget::default()
        };
        buffers.arm_budget(u64::MAX, &budget);
        let sources = all_sources(&f);
        assert_eq!(
            search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)]),
            None
        );
        assert_eq!(buffers.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn epoch_wrap_does_not_leak_stale_search_state() {
        let f = fixture();
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut buffers = NetBuffers::new(f.grid.num_vertices());
        let mut cache = ColorCostCache::new(&f.grid);
        buffers.begin_net();
        cache.begin_net();
        let sources = all_sources(&f);
        let (dst_a, _) =
            search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)]).expect("path exists");
        let cost_a = buffers.dist(dst_a);
        // Jump every epoch counter to the brink of u32 wrap: the next two
        // begin_search calls cross u32::MAX and restart at 1, which must not
        // resurrect any stamp written before the wrap.
        buffers.force_epochs(u32::MAX - 1);
        for _ in 0..3 {
            buffers.begin_net();
            cache.begin_net();
            let (dst_b, pin) = search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)])
                .expect("path exists after wrap");
            assert_eq!(pin, PinId::new(1));
            assert_eq!(dst_b, dst_a);
            assert!((buffers.dist(dst_b) - cost_a).abs() < 1e-9);
        }
    }

    #[test]
    fn tree_membership_is_per_net() {
        let f = fixture();
        let mut buffers = NetBuffers::new(f.grid.num_vertices());
        buffers.begin_net();
        let v = VertexId::new(7);
        assert!(!buffers.in_tree(v));
        buffers.add_tree(v);
        assert!(buffers.in_tree(v));
        buffers.begin_net();
        assert!(!buffers.in_tree(v), "tree marks must not survive the net");
    }

    #[test]
    fn colored_neighbor_removes_its_mask_from_the_state() {
        let mut f = fixture();
        // A red wire of another net running right next to the straight-line
        // path between the pins (same layer 0, one track above y=10).
        f.map.insert(Feature::wire(
            NetId::new(9),
            LayerId::new(0),
            Rect::from_coords(0, 26, 400, 34),
            Some(tpl_color::Mask::Red),
        ));
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut buffers = NetBuffers::new(f.grid.num_vertices());
        let mut cache = ColorCostCache::new(&f.grid);
        buffers.begin_net();
        cache.begin_net();
        let sources = all_sources(&f);
        let (dst, _) =
            search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)]).expect("path exists");
        // The straight path on layer 0 runs within dcolor of the red wire,
        // so red is no longer among the minimum-cost candidates at the
        // destination.
        let state = buffers.state(dst);
        assert!(!state.contains(tpl_color::Mask::Red));
        assert!(state.contains(tpl_color::Mask::Green));
        assert!(state.contains(tpl_color::Mask::Blue));
    }

    #[test]
    fn greedy_policy_keeps_a_single_candidate() {
        let mut f = fixture();
        f.config.policy = SearchPolicy::GreedySingleColor;
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut buffers = NetBuffers::new(f.grid.num_vertices());
        let mut cache = ColorCostCache::new(&f.grid);
        buffers.begin_net();
        cache.begin_net();
        let sources = all_sources(&f);
        let (dst, _) =
            search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)]).expect("path exists");
        assert_eq!(buffers.state(dst).len(), 1);
    }

    #[test]
    fn stitch_cost_is_charged_when_leaving_the_state() {
        let f = fixture();
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut cache = ColorCostCache::new(&f.grid);
        cache.begin_net();
        let v = f.grid.vertex(0, 5, 5);
        let n = f.grid.vertex(0, 6, 5);
        let trad = c.trad_cost(v, n, Dir::East).unwrap();
        // From a green-only state, staying green is cheapest and red/blue pay
        // the stitch cost on top.
        let (cost_green_state, set) = c.color_step(
            &mut cache,
            ColorState::from_mask(tpl_color::Mask::Green),
            n,
            Dir::East,
            trad,
        );
        assert_eq!(set.single(), Some(tpl_color::Mask::Green));
        let (cost_full_state, full_set) =
            c.color_step(&mut cache, ColorState::all(), n, Dir::East, trad);
        assert_eq!(full_set, ColorState::all());
        assert!((cost_green_state - cost_full_state).abs() < 1e-9);
        // Via steps never pay a stitch cost.
        let above = f.grid.vertex(1, 5, 5);
        let via_trad = c.trad_cost(v, above, Dir::Up).unwrap();
        let (_, via_set) = c.color_step(
            &mut cache,
            ColorState::from_mask(tpl_color::Mask::Green),
            above,
            Dir::Up,
            via_trad,
        );
        assert_eq!(via_set, ColorState::all());
    }

    /// Textbook O(V²) Dijkstra over the same cost model (empty colour map,
    /// so every step costs `alpha * trad` regardless of colour state),
    /// returning the cheapest distance to any target vertex.
    fn reference_cheapest_target(
        c: &SearchContext<'_>,
        sources: &[(VertexId, ColorState)],
        targets: &[VertexId],
    ) -> f64 {
        let n = c.grid.num_vertices();
        let mut dist = vec![f64::INFINITY; n];
        let mut done = vec![false; n];
        for &(s, _) in sources {
            if !c.state.is_blocked(s) {
                dist[s.index()] = 0.0;
            }
        }
        loop {
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for i in 0..n {
                if !done[i] && dist[i] < best {
                    best = dist[i];
                    u = i;
                }
            }
            if u == usize::MAX {
                break;
            }
            done[u] = true;
            let v = VertexId::new(u as u32);
            for (dir, w) in c.grid.neighbors(v) {
                if let Some(trad) = c.trad_cost(v, w, dir) {
                    let nd = dist[u] + c.config.alpha * trad;
                    if nd < dist[w.index()] {
                        dist[w.index()] = nd;
                    }
                }
            }
        }
        targets
            .iter()
            .map(|t| dist[t.index()])
            .fold(f64::INFINITY, f64::min)
    }

    fn xorshift(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    /// Property test of the satellite contract: on random grids (random pin
    /// placement AND random per-vertex history costs) every knob combination
    /// of the kernel reaches an unreached pin at exactly the cost the seed
    /// Dijkstra would have paid.
    #[test]
    fn random_grids_match_reference_dijkstra_under_every_knob() {
        for seed in 1..=6u64 {
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut r = |m: u64| (xorshift(&mut s) % m) as i64;
            // Pins in opposite halves of the die so the search has room.
            let (ax, ay) = (6 + r(120), 6 + r(340));
            let (bx, by) = (250 + r(120), 6 + r(340));
            let mut b = DesignBuilder::new(
                "rand",
                Technology::ispd_like(3),
                Rect::from_coords(0, 0, 400, 400),
            );
            let p0 = b.add_pin_shape("a", 0, Rect::from_coords(ax, ay, ax + 28, ay + 28));
            let p1 = b.add_pin_shape("b", 0, Rect::from_coords(bx, by, bx + 28, by + 28));
            b.add_net("n0", vec![p0, p1]);
            let design = b.build().unwrap();
            let grid = GridGraph::build(&design);
            let mut gstate = GridState::new(&grid, &design);
            // Random history costs make the shortest path non-trivial.
            for i in 0..grid.num_vertices() {
                if xorshift(&mut s).is_multiple_of(4) {
                    gstate.add_history(VertexId::new(i as u32), (xorshift(&mut s) % 50) as f64);
                }
            }
            let coverage = PinCoverage::build(&grid, &design);
            let map = ColorMap::new(
                design.die(),
                design.tech().num_layers(),
                design.tech().dcolor(),
            );
            let config = MrTplConfig::default();
            let in_guide = DenseBitSet::full(grid.num_vertices());
            let c = SearchContext {
                grid: &grid,
                state: &gstate,
                coverage: &coverage,
                design: &design,
                config: &config,
                net: NetId::new(0),
                in_guide: &in_guide,
                map: &map,
            };
            let sources: Vec<(VertexId, ColorState)> = coverage
                .vertices(PinId::new(0))
                .iter()
                .map(|v| (*v, ColorState::all()))
                .collect();
            let targets: Vec<VertexId> = coverage
                .vertices(PinId::new(1))
                .iter()
                .copied()
                .filter(|v| coverage.pin_at(*v) == Some(PinId::new(1)))
                .collect();
            assert!(!sources.is_empty() && !targets.is_empty(), "seed {seed}");
            let want = reference_cheapest_target(&c, &sources, &targets);
            assert!(want.is_finite(), "seed {seed}: no path in reference");
            for a_star in [false, true] {
                for bucket_queue in [false, true] {
                    let search_config = SearchConfig {
                        a_star,
                        bucket_queue,
                        ..SearchConfig::default()
                    };
                    let mut buffers = NetBuffers::with_config(grid.num_vertices(), search_config);
                    let mut cache = ColorCostCache::new(&grid);
                    buffers.begin_net();
                    cache.begin_net();
                    let (dst, _) = search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)])
                        .expect("path exists");
                    assert!(
                        (buffers.dist(dst) - want).abs() < 1e-9,
                        "seed {seed} a_star={a_star} bucket={bucket_queue}: \
                         {} != reference {want}",
                        buffers.dist(dst)
                    );
                }
            }
        }
    }
}
