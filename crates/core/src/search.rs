//! Colour-state searching (Algorithm 2).

use crate::{ColorCostCache, MrTplConfig, SearchPolicy};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tpl_color::{ColorMap, ColorState, Mask};
use tpl_design::{Design, NetId, PinId, RouteGuides};
use tpl_geom::Dir;
use tpl_grid::{DenseBitSet, GridGraph, GridState, PinCoverage, VertexId};

/// Per-vertex search bookkeeping with two levels of epoch invalidation:
/// per-search (distance, predecessor, colour state) and per-net (verSet
/// membership, which must survive across the several pin-to-tree searches of
/// one multi-pin net).
#[derive(Clone, Debug)]
pub struct NetBuffers {
    search_epoch: u32,
    search_stamp: Vec<u32>,
    dist: Vec<f64>,
    prev: Vec<u32>,
    state: Vec<u8>,
    net_epoch: u32,
    net_stamp: Vec<u32>,
    ver_set: Vec<u32>,
    nodes_popped: usize,
}

impl NetBuffers {
    /// Creates buffers for `num_vertices` grid vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            search_epoch: 0,
            search_stamp: vec![0; num_vertices],
            dist: vec![f64::INFINITY; num_vertices],
            prev: vec![u32::MAX; num_vertices],
            state: vec![0; num_vertices],
            net_epoch: 0,
            net_stamp: vec![0; num_vertices],
            ver_set: vec![u32::MAX; num_vertices],
            nodes_popped: 0,
        }
    }

    /// Starts routing a new net: all verSet pointers become stale and the
    /// search-node counter restarts from zero.
    pub fn begin_net(&mut self) {
        self.net_epoch += 1;
        self.nodes_popped = 0;
    }

    /// Heap pops performed by [`search`] since the last
    /// [`begin_net`](Self::begin_net) — the search-effort counter reported as
    /// `search_nodes` in run statistics.
    #[inline]
    pub fn nodes_popped(&self) -> usize {
        self.nodes_popped
    }

    /// Starts a new pin-to-tree search within the current net.
    pub fn begin_search(&mut self) {
        self.search_epoch += 1;
    }

    #[inline]
    fn fresh_search(&self, v: usize) -> bool {
        self.search_stamp[v] == self.search_epoch
    }

    /// Tentative distance of a vertex in the current search.
    #[inline]
    pub fn dist(&self, v: VertexId) -> f64 {
        if self.fresh_search(v.index()) {
            self.dist[v.index()]
        } else {
            f64::INFINITY
        }
    }

    /// Relaxes a vertex with a new distance, predecessor and colour state.
    #[inline]
    pub fn relax(&mut self, v: VertexId, dist: f64, prev: Option<VertexId>, state: ColorState) {
        let i = v.index();
        self.search_stamp[i] = self.search_epoch;
        self.dist[i] = dist;
        self.prev[i] = prev.map(|p| p.0).unwrap_or(u32::MAX);
        self.state[i] = state.bits();
    }

    /// The predecessor of a vertex in the current search.
    #[inline]
    pub fn prev(&self, v: VertexId) -> Option<VertexId> {
        if self.fresh_search(v.index()) && self.prev[v.index()] != u32::MAX {
            Some(VertexId::new(self.prev[v.index()]))
        } else {
            None
        }
    }

    /// The colour state a vertex was relaxed with in the current search.
    #[inline]
    pub fn state(&self, v: VertexId) -> ColorState {
        if self.fresh_search(v.index()) {
            ColorState::from_bits(self.state[v.index()])
        } else {
            ColorState::none()
        }
    }

    /// The verSet the vertex belongs to within the current net, if assigned.
    #[inline]
    pub fn ver_set(&self, v: VertexId) -> Option<tpl_color::VerSetId> {
        if self.net_stamp[v.index()] == self.net_epoch && self.ver_set[v.index()] != u32::MAX {
            Some(tpl_color::VerSetId(self.ver_set[v.index()]))
        } else {
            None
        }
    }

    /// Assigns the vertex to a verSet for the current net.
    #[inline]
    pub fn set_ver_set(&mut self, v: VertexId, set: tpl_color::VerSetId) {
        let i = v.index();
        self.net_stamp[i] = self.net_epoch;
        self.ver_set[i] = set.0;
    }
}

/// Borrowed context for routing a single net.
pub struct SearchContext<'a> {
    /// The routing grid.
    pub grid: &'a GridGraph,
    /// Blockage / occupancy / history state.
    pub state: &'a GridState,
    /// Pin-to-vertex coverage.
    pub coverage: &'a PinCoverage,
    /// The design being routed.
    pub design: &'a Design,
    /// Router configuration (weights of Eq. (1)).
    pub config: &'a MrTplConfig,
    /// The net being routed.
    pub net: NetId,
    /// Whether each vertex lies inside the net's route guide.
    pub in_guide: &'a DenseBitSet,
    /// Already-coloured features of other nets.
    pub map: &'a ColorMap,
}

impl<'a> SearchContext<'a> {
    /// Per-net guide membership (nets without guide regions are free).
    pub fn guide_membership(grid: &GridGraph, guides: &RouteGuides, net: NetId) -> DenseBitSet {
        let regions = guides.regions(net);
        if regions.is_empty() {
            return DenseBitSet::full(grid.num_vertices());
        }
        let mut mask = DenseBitSet::new(grid.num_vertices());
        for region in regions {
            for v in grid.vertices_in_rect(region.layer, &region.rect) {
                mask.insert(v.index());
            }
        }
        mask
    }

    /// The traditional (colour-free) part of the cost of stepping from
    /// `from` onto `to`, or `None` when `to` is blocked.
    pub fn trad_cost(&self, from: VertexId, to: VertexId, dir: Dir) -> Option<f64> {
        if self.state.is_blocked(to) {
            return None;
        }
        let cost = &self.config.cost;
        let mut c = if dir.is_via() {
            cost.via
        } else if self.grid.is_wrong_way(from, dir) {
            cost.wrong_way_cost(self.grid.pitch())
        } else {
            cost.wire_cost(self.grid.pitch())
        };
        if dir.is_planar() && self.grid.layer_of(to).index() == 0 {
            c *= cost.base_layer_mult;
        }
        if !self.in_guide.get(to.index()) {
            c += cost.out_of_guide * self.grid.pitch() as f64;
        }
        if self.state.is_occupied_by_other(to, self.net) {
            c += cost.occupied;
        }
        if let Some(pin) = self.coverage.pin_at(to) {
            if self.design.pin(pin).net() != self.net {
                c += cost.occupied;
            }
        }
        c += cost.history_weight * self.state.history(to);
        Some(c)
    }

    /// Evaluates the 3×2 colour-cost table of Algorithm 2 for one step and
    /// returns the minimum cost together with the set of masks attaining it.
    pub fn color_step(
        &self,
        cache: &mut ColorCostCache,
        from_state: ColorState,
        to: VertexId,
        dir: Dir,
        trad: f64,
    ) -> (f64, ColorState) {
        let pressure = cache.pressure(self.grid, self.map, self.net, to);
        let mut best = f64::INFINITY;
        let mut best_set = ColorState::none();
        const EPS: f64 = 1e-9;
        for mask in Mask::ALL {
            let mut c = self.config.alpha * trad
                + self.config.color_conflict_cost * pressure[mask.index()] as f64;
            if dir.is_planar() && !from_state.contains(mask) {
                c += self.config.stitch_cost;
            }
            if c + EPS < best {
                best = c;
                best_set = ColorState::from_mask(mask);
            } else if (c - best).abs() <= EPS {
                best_set = best_set.with(mask);
            }
        }
        if self.config.policy == SearchPolicy::GreedySingleColor {
            if let Some(first) = best_set.first() {
                best_set = ColorState::from_mask(first);
            }
        }
        (best, best_set)
    }
}

/// Colour-state searching (Algorithm 2): multi-source Dijkstra from the
/// routed tree until a vertex covered by an unreached pin of the net is
/// popped.  Returns that vertex and the pin, or `None` if no unreached pin is
/// reachable.
pub fn search(
    ctx: &SearchContext<'_>,
    buffers: &mut NetBuffers,
    cache: &mut ColorCostCache,
    sources: &[(VertexId, ColorState)],
    unreached: &[PinId],
) -> Option<(VertexId, PinId)> {
    buffers.begin_search();
    let key = |c: f64| (c * 256.0) as u64;
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    for &(s, state) in sources {
        if ctx.state.is_blocked(s) {
            continue;
        }
        buffers.relax(s, 0.0, None, state);
        heap.push(Reverse((0, s.0)));
    }

    let is_target = |v: VertexId| -> Option<PinId> {
        let pin = ctx.coverage.pin_at(v)?;
        if ctx.design.pin(pin).net() == ctx.net && unreached.contains(&pin) {
            Some(pin)
        } else {
            None
        }
    };

    while let Some(Reverse((k, raw))) = heap.pop() {
        buffers.nodes_popped += 1;
        let v = VertexId::new(raw);
        let d = buffers.dist(v);
        if key(d) < k {
            continue; // stale entry
        }
        if let Some(pin) = is_target(v) {
            return Some((v, pin));
        }
        let from_state = buffers.state(v);
        for (dir, n) in ctx.grid.neighbors(v) {
            let Some(trad) = ctx.trad_cost(v, n, dir) else {
                continue;
            };
            let (step, new_state) = ctx.color_step(cache, from_state, n, dir, trad);
            let nd = d + step;
            if nd < buffers.dist(n) {
                buffers.relax(n, nd, Some(v), new_state);
                heap.push(Reverse((key(nd), n.0)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_color::Feature;
    use tpl_design::{DesignBuilder, LayerId, Technology};
    use tpl_geom::Rect;

    struct Fixture {
        design: Design,
        grid: GridGraph,
        gstate: GridState,
        coverage: PinCoverage,
        map: ColorMap,
        config: MrTplConfig,
    }

    fn fixture() -> Fixture {
        let mut b = DesignBuilder::new(
            "search",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 400, 400),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(6, 6, 14, 14));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(366, 6, 374, 14));
        b.add_net("n0", vec![p0, p1]);
        let design = b.build().unwrap();
        let grid = GridGraph::build(&design);
        let gstate = GridState::new(&grid, &design);
        let coverage = PinCoverage::build(&grid, &design);
        let map = ColorMap::new(
            design.die(),
            design.tech().num_layers(),
            design.tech().dcolor(),
        );
        Fixture {
            design,
            grid,
            gstate,
            coverage,
            map,
            config: MrTplConfig::default(),
        }
    }

    fn ctx<'a>(f: &'a Fixture, in_guide: &'a DenseBitSet) -> SearchContext<'a> {
        SearchContext {
            grid: &f.grid,
            state: &f.gstate,
            coverage: &f.coverage,
            design: &f.design,
            config: &f.config,
            net: NetId::new(0),
            in_guide,
            map: &f.map,
        }
    }

    #[test]
    fn search_reaches_the_second_pin_with_full_color_state() {
        let f = fixture();
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut buffers = NetBuffers::new(f.grid.num_vertices());
        let mut cache = ColorCostCache::new(&f.grid);
        buffers.begin_net();
        cache.begin_net();
        let sources: Vec<(VertexId, ColorState)> = f
            .coverage
            .vertices(PinId::new(0))
            .iter()
            .map(|v| (*v, ColorState::all()))
            .collect();
        let (dst, pin) =
            search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)]).expect("path exists");
        assert_eq!(pin, PinId::new(1));
        // On an empty die nothing constrains the colours: the destination
        // keeps all three candidates alive.
        assert_eq!(buffers.state(dst), ColorState::all());
        // The path has monotonically non-increasing distance towards the
        // source.
        let mut v = dst;
        let mut d = buffers.dist(v);
        while let Some(p) = buffers.prev(v) {
            assert!(buffers.dist(p) <= d + 1e-9);
            d = buffers.dist(p);
            v = p;
        }
        assert_eq!(buffers.dist(v), 0.0);
    }

    #[test]
    fn colored_neighbor_removes_its_mask_from_the_state() {
        let mut f = fixture();
        // A red wire of another net running right next to the straight-line
        // path between the pins (same layer 0, one track above y=10).
        f.map.insert(Feature::wire(
            NetId::new(9),
            LayerId::new(0),
            Rect::from_coords(0, 26, 400, 34),
            Some(tpl_color::Mask::Red),
        ));
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut buffers = NetBuffers::new(f.grid.num_vertices());
        let mut cache = ColorCostCache::new(&f.grid);
        buffers.begin_net();
        cache.begin_net();
        let sources: Vec<(VertexId, ColorState)> = f
            .coverage
            .vertices(PinId::new(0))
            .iter()
            .map(|v| (*v, ColorState::all()))
            .collect();
        let (dst, _) =
            search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)]).expect("path exists");
        // The straight path on layer 0 runs within dcolor of the red wire,
        // so red is no longer among the minimum-cost candidates at the
        // destination.
        let state = buffers.state(dst);
        assert!(!state.contains(tpl_color::Mask::Red));
        assert!(state.contains(tpl_color::Mask::Green));
        assert!(state.contains(tpl_color::Mask::Blue));
    }

    #[test]
    fn greedy_policy_keeps_a_single_candidate() {
        let mut f = fixture();
        f.config.policy = SearchPolicy::GreedySingleColor;
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut buffers = NetBuffers::new(f.grid.num_vertices());
        let mut cache = ColorCostCache::new(&f.grid);
        buffers.begin_net();
        cache.begin_net();
        let sources: Vec<(VertexId, ColorState)> = f
            .coverage
            .vertices(PinId::new(0))
            .iter()
            .map(|v| (*v, ColorState::all()))
            .collect();
        let (dst, _) =
            search(&c, &mut buffers, &mut cache, &sources, &[PinId::new(1)]).expect("path exists");
        assert_eq!(buffers.state(dst).len(), 1);
    }

    #[test]
    fn stitch_cost_is_charged_when_leaving_the_state() {
        let f = fixture();
        let in_guide = DenseBitSet::full(f.grid.num_vertices());
        let c = ctx(&f, &in_guide);
        let mut cache = ColorCostCache::new(&f.grid);
        cache.begin_net();
        let v = f.grid.vertex(0, 5, 5);
        let n = f.grid.vertex(0, 6, 5);
        let trad = c.trad_cost(v, n, Dir::East).unwrap();
        // From a green-only state, staying green is cheapest and red/blue pay
        // the stitch cost on top.
        let (cost_green_state, set) = c.color_step(
            &mut cache,
            ColorState::from_mask(tpl_color::Mask::Green),
            n,
            Dir::East,
            trad,
        );
        assert_eq!(set.single(), Some(tpl_color::Mask::Green));
        let (cost_full_state, full_set) =
            c.color_step(&mut cache, ColorState::all(), n, Dir::East, trad);
        assert_eq!(full_set, ColorState::all());
        assert!((cost_green_state - cost_full_state).abs() < 1e-9);
        // Via steps never pay a stitch cost.
        let above = f.grid.vertex(1, 5, 5);
        let via_trad = c.trad_cost(v, above, Dir::Up).unwrap();
        let (_, via_set) = c.color_step(
            &mut cache,
            ColorState::from_mask(tpl_color::Mask::Green),
            above,
            Dir::Up,
            via_trad,
        );
        assert_eq!(via_set, ColorState::all());
    }
}
