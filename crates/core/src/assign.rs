//! Final mask assignment and coloured-geometry emission.

use crate::{ColorCostCache, NetBuffers};
use std::collections::HashMap;
use tpl_color::{ColorMap, ColorSetArena, Mask, SegSetId};
use tpl_design::{Design, NetId, PinId, RouteSegment, RoutedNet, ViaInstance};
use tpl_geom::Segment;
use tpl_grid::{GridGraph, PinCoverage, VertexId};

/// The fully coloured routing result of one net.
#[derive(Clone, Debug, Default)]
pub struct ColoredNet {
    /// The routed geometry.
    pub routed: RoutedNet,
    /// The mask of each wire segment, parallel to `routed.segments`.
    pub segment_masks: Vec<Option<Mask>>,
    /// The mask used at each pin of the net (None when the pin ended up
    /// untouched by any coloured wire, which only happens for failed nets).
    pub pin_masks: Vec<(PinId, Option<Mask>)>,
    /// Number of segSets (mask regions) the net was divided into.
    pub seg_sets: usize,
}

impl ColoredNet {
    /// Total number of stitches implied by the segment masks: touching
    /// same-net segments on the same layer with different masks are counted
    /// by the layout evaluator; this is just the number of mask regions - 1
    /// as a quick internal indicator.
    pub fn mask_regions(&self) -> usize {
        self.seg_sets
    }
}

/// Commits a final mask to every segSet of a net and emits the coloured
/// geometry.
///
/// For every segSet the candidate mask with the smallest accumulated
/// colour-pressure over its member vertices wins (deterministic tie-break on
/// mask order).  Wire geometry is then emitted per path, splitting segments
/// wherever the layer, the routing axis or the assigned mask changes.
#[allow(clippy::too_many_arguments)]
pub fn assign_and_emit(
    grid: &GridGraph,
    design: &Design,
    coverage: &PinCoverage,
    arena: &mut ColorSetArena,
    buffers: &NetBuffers,
    cache: &mut ColorCostCache,
    map: &ColorMap,
    net: NetId,
    paths: &[Vec<VertexId>],
) -> ColoredNet {
    // 1. Group vertices by segSet.
    let mut members: HashMap<SegSetId, Vec<VertexId>> = HashMap::new();
    for path in paths {
        for &v in path {
            if let Some(vs) = buffers.ver_set(v) {
                members.entry(arena.seg_of(vs)).or_default().push(v);
            }
        }
    }

    // 2. Pick a mask per segSet: candidate with the lowest pressure sum.
    let mut seg_mask: HashMap<SegSetId, Mask> = HashMap::new();
    let mut seg_ids: Vec<SegSetId> = members.keys().copied().collect();
    seg_ids.sort_unstable();
    for seg in seg_ids {
        let state = arena.seg_state(seg);
        let candidates: Vec<Mask> = if state.is_empty() {
            Mask::ALL.to_vec()
        } else {
            state.candidates().collect()
        };
        let vertices = &members[&seg];
        let mut best = candidates[0];
        let mut best_pressure = u64::MAX;
        for mask in candidates {
            let pressure: u64 = vertices
                .iter()
                .map(|v| cache.pressure(grid, map, net, *v)[mask.index()] as u64)
                .sum();
            if pressure < best_pressure {
                best_pressure = pressure;
                best = mask;
            }
        }
        arena.assign_mask(seg, best);
        seg_mask.insert(seg, best);
    }

    let mask_of = |v: VertexId| -> Option<Mask> {
        buffers
            .ver_set(v)
            .and_then(|vs| seg_mask.get(&arena.seg_of(vs)).copied())
    };

    // 3. Emit geometry path by path.
    let mut out = ColoredNet {
        seg_sets: seg_mask.len(),
        ..ColoredNet::default()
    };
    for path in paths {
        emit_path(grid, path, &mask_of, &mut out);
    }

    // 4. Pin masks.  A pin first inherits the mask of the wire that reaches
    // it; if that mask already collides with a coloured feature of another
    // net within `Dcolor` of the pin, the pin is re-coloured to the least
    // conflicting candidate instead (paying a pin-access stitch, which the
    // evaluator counts, rather than a hard colour conflict that no rip-up
    // could ever repair because pins cannot move).
    for &pin in design.net(net).pins() {
        let wire_mask = coverage
            .vertices(pin)
            .iter()
            .find_map(|v| mask_of(*v))
            .or_else(|| {
                // Fall back to the mask of the nearest routed vertex among
                // all paths (the pin is reached through a covered vertex).
                paths
                    .iter()
                    .flatten()
                    .filter_map(|v| {
                        let p = grid.point_of(*v);
                        let pin_box = design.pin(pin).bbox()?;
                        Some((pin_box.spacing_to_point(&p), mask_of(*v)?))
                    })
                    .min_by_key(|(d, _)| *d)
                    .map(|(_, m)| m)
            });

        let mask = match wire_mask {
            None => None,
            Some(preferred) => {
                let mut pressure = [0usize; 3];
                for (layer, rect) in design.pin(pin).shapes() {
                    let p = map.mask_pressure(net, *layer, rect);
                    for m in 0..3 {
                        pressure[m] += p[m];
                    }
                }
                if pressure[preferred.index()] == 0 {
                    Some(preferred)
                } else {
                    let best = Mask::ALL
                        .into_iter()
                        .min_by_key(|m| {
                            (pressure[m.index()], (*m != preferred) as usize, m.index())
                        })
                        .expect("three masks");
                    Some(best)
                }
            }
        };
        out.pin_masks.push((pin, mask));
    }
    out
}

/// Emits one path as coloured segments and vias.
fn emit_path(
    grid: &GridGraph,
    path: &[VertexId],
    mask_of: &dyn Fn(VertexId) -> Option<Mask>,
    out: &mut ColoredNet,
) {
    if path.len() < 2 {
        return;
    }

    // Current run: (start vertex, end vertex, layer, axis key, mask).
    let mut run_start = path[0];
    let mut run_end = path[0];
    let mut run_mask = mask_of(path[0]);

    let flush = |start: VertexId, end: VertexId, mask: Option<Mask>, out: &mut ColoredNet| {
        if start == end {
            return;
        }
        let layer = grid.layer_of(start);
        let a = grid.point_of(start);
        let b = grid.point_of(end);
        out.routed.segments.push(RouteSegment::new(
            layer,
            Segment::new(a, b),
            grid.wire_width(layer),
        ));
        out.segment_masks.push(mask);
    };

    for i in 1..path.len() {
        let prev = path[i - 1];
        let curr = path[i];
        let (pl, px, py) = grid.coords(prev);
        let (cl, cx, cy) = grid.coords(curr);
        let is_via = pl != cl;
        if is_via {
            flush(run_start, run_end, run_mask, out);
            out.routed.vias.push(ViaInstance::new(
                tpl_design::LayerId::from(pl.min(cl)),
                grid.point_of(prev),
            ));
            run_start = curr;
            run_end = curr;
            run_mask = mask_of(curr);
            continue;
        }
        // Planar step: decide whether the run continues.
        let curr_mask = mask_of(curr);
        let collinear = {
            let (_, sx, sy) = grid.coords(run_start);
            (sx == px && px == cx) || (sy == py && py == cy)
        };
        if curr_mask == run_mask && collinear {
            run_end = curr;
        } else {
            flush(run_start, run_end, run_mask, out);
            // The new run starts at the boundary vertex `prev` so the wire
            // stays electrically continuous; its mask is the next segment's.
            run_start = prev;
            run_end = curr;
            run_mask = curr_mask;
        }
    }
    flush(run_start, run_end, run_mask, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MrTplConfig;
    use tpl_color::ColorState;
    use tpl_design::{DesignBuilder, Technology};
    use tpl_geom::Rect;

    fn fixture() -> (Design, GridGraph, PinCoverage, ColorMap) {
        let mut b = DesignBuilder::new(
            "assign",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 400, 400),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(6, 6, 14, 14));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(166, 6, 174, 14));
        b.add_net("n0", vec![p0, p1]);
        let d = b.build().unwrap();
        let g = GridGraph::build(&d);
        let c = PinCoverage::build(&g, &d);
        let m = ColorMap::new(d.die(), d.tech().num_layers(), d.tech().dcolor());
        (d, g, c, m)
    }

    /// Builds buffers describing a straight horizontal path on layer 0 with
    /// uniform colour state, then checks the emitted geometry.
    #[test]
    fn uniform_path_emits_one_segment_with_one_mask() {
        let (design, grid, coverage, map) = fixture();
        let _ = MrTplConfig::default();
        let mut buffers = NetBuffers::new(grid.num_vertices());
        let mut cache = ColorCostCache::new(&grid);
        let mut arena = ColorSetArena::new();
        buffers.begin_net();
        buffers.begin_search();
        cache.begin_net();

        let path: Vec<VertexId> = (0..9).map(|i| grid.vertex(0, i, 0)).collect();
        let vs = arena.make_ver_set(ColorState::all());
        for (i, &v) in path.iter().enumerate() {
            let prev = if i == 0 { None } else { Some(path[i - 1]) };
            buffers.relax(v, i as f64, prev, ColorState::all());
            buffers.set_ver_set(v, vs);
        }

        let colored = assign_and_emit(
            &grid,
            &design,
            &coverage,
            &mut arena,
            &buffers,
            &mut cache,
            &map,
            NetId::new(0),
            std::slice::from_ref(&path),
        );
        assert_eq!(colored.routed.segments.len(), 1);
        assert_eq!(colored.segment_masks.len(), 1);
        assert_eq!(colored.segment_masks[0], Some(Mask::Red)); // deterministic tie-break
        assert_eq!(colored.routed.wirelength(), 8 * 20);
        assert_eq!(colored.seg_sets, 1);
        // Both pins received the same mask.
        assert!(colored.pin_masks.iter().all(|(_, m)| *m == Some(Mask::Red)));
    }

    #[test]
    fn mask_change_splits_the_wire_and_keeps_it_continuous() {
        let (design, grid, coverage, map) = fixture();
        let mut buffers = NetBuffers::new(grid.num_vertices());
        let mut cache = ColorCostCache::new(&grid);
        let mut arena = ColorSetArena::new();
        buffers.begin_net();
        buffers.begin_search();
        cache.begin_net();

        let path: Vec<VertexId> = (0..9).map(|i| grid.vertex(0, i, 0)).collect();
        // First half green, second half red (two segSets = one stitch).
        let vs_a = arena.make_ver_set(ColorState::from_mask(Mask::Green));
        let vs_b = arena.make_ver_set(ColorState::from_mask(Mask::Red));
        for (i, &v) in path.iter().enumerate() {
            let prev = if i == 0 { None } else { Some(path[i - 1]) };
            let state = if i < 4 {
                ColorState::from_mask(Mask::Green)
            } else {
                ColorState::from_mask(Mask::Red)
            };
            buffers.relax(v, i as f64, prev, state);
            buffers.set_ver_set(v, if i < 4 { vs_a } else { vs_b });
        }

        let colored = assign_and_emit(
            &grid,
            &design,
            &coverage,
            &mut arena,
            &buffers,
            &mut cache,
            &map,
            NetId::new(0),
            std::slice::from_ref(&path),
        );
        assert_eq!(colored.routed.segments.len(), 2);
        assert_eq!(colored.seg_sets, 2);
        let masks: Vec<_> = colored.segment_masks.iter().flatten().collect();
        assert_eq!(masks, vec![&Mask::Green, &Mask::Red]);
        // The two segments share the boundary point: total length is the full
        // span even though the wire is split.
        let total: i64 = colored.routed.segments.iter().map(|s| s.length()).sum();
        assert_eq!(total, 8 * 20);
        // The rectangles of the two segments touch (electrically continuous).
        let r0 = colored.routed.segments[0].rect();
        let r1 = colored.routed.segments[1].rect();
        assert!(r0.intersects(&r1));
    }

    #[test]
    fn corner_paths_split_at_the_bend() {
        let (design, grid, coverage, map) = fixture();
        let mut buffers = NetBuffers::new(grid.num_vertices());
        let mut cache = ColorCostCache::new(&grid);
        let mut arena = ColorSetArena::new();
        buffers.begin_net();
        buffers.begin_search();
        cache.begin_net();

        // L-shaped path on layer 0: east 4 steps then north 3 steps.
        let mut path: Vec<VertexId> = (0..5).map(|i| grid.vertex(0, i, 0)).collect();
        path.extend((1..4).map(|j| grid.vertex(0, 4, j)));
        let vs = arena.make_ver_set(ColorState::all());
        for (i, &v) in path.iter().enumerate() {
            let prev = if i == 0 { None } else { Some(path[i - 1]) };
            buffers.relax(v, i as f64, prev, ColorState::all());
            buffers.set_ver_set(v, vs);
        }
        let colored = assign_and_emit(
            &grid,
            &design,
            &coverage,
            &mut arena,
            &buffers,
            &mut cache,
            &map,
            NetId::new(0),
            &[path],
        );
        assert_eq!(colored.routed.segments.len(), 2);
        assert_eq!(colored.routed.wirelength(), (4 + 3) * 20);
        // Single segSet: no stitch despite the bend.
        assert_eq!(colored.seg_sets, 1);
        let unique: std::collections::HashSet<_> = colored.segment_masks.iter().flatten().collect();
        assert_eq!(unique.len(), 1);
    }

    #[test]
    fn via_paths_emit_vias_and_segments_on_both_layers() {
        let (design, grid, coverage, map) = fixture();
        let mut buffers = NetBuffers::new(grid.num_vertices());
        let mut cache = ColorCostCache::new(&grid);
        let mut arena = ColorSetArena::new();
        buffers.begin_net();
        buffers.begin_search();
        cache.begin_net();

        let path = vec![
            grid.vertex(0, 0, 0),
            grid.vertex(0, 1, 0),
            grid.vertex(1, 1, 0),
            grid.vertex(1, 1, 1),
            grid.vertex(1, 1, 2),
        ];
        let vs = arena.make_ver_set(ColorState::all());
        for (i, &v) in path.iter().enumerate() {
            let prev = if i == 0 { None } else { Some(path[i - 1]) };
            buffers.relax(v, i as f64, prev, ColorState::all());
            buffers.set_ver_set(v, vs);
        }
        let colored = assign_and_emit(
            &grid,
            &design,
            &coverage,
            &mut arena,
            &buffers,
            &mut cache,
            &map,
            NetId::new(0),
            &[path],
        );
        assert_eq!(colored.routed.vias.len(), 1);
        assert_eq!(colored.routed.segments.len(), 2);
        assert_eq!(colored.routed.segments[0].layer.index(), 0);
        assert_eq!(colored.routed.segments[1].layer.index(), 1);
    }
}
