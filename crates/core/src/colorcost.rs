//! Cached colour-conflict pressure per grid vertex.

use tpl_color::ColorMap;
use tpl_design::NetId;
use tpl_geom::Rect;
use tpl_grid::{GridGraph, VertexId};

/// An epoch-invalidated cache of per-vertex, per-mask colour pressure.
///
/// The pressure of a vertex is the number of already-coloured features of
/// *other* nets within `Dcolor` of the wire footprint a route through that
/// vertex would create, split by mask.  This is the quantity the paper
/// pre-computes "by GR guide" before routing a net; caching it per vertex per
/// net is equivalent (the map does not change while one net is being routed)
/// and avoids recomputing it for vertices visited by several expansions.
#[derive(Clone, Debug)]
pub struct ColorCostCache {
    epoch: u32,
    stamp: Vec<u32>,
    pressure: Vec<[u16; 3]>,
    half_width: i64,
}

impl ColorCostCache {
    /// Creates a cache for a grid.
    pub fn new(grid: &GridGraph) -> Self {
        Self {
            epoch: 0,
            stamp: vec![0; grid.num_vertices()],
            pressure: vec![[0; 3]; grid.num_vertices()],
            half_width: 4,
        }
    }

    /// Invalidates the cache; call when starting a new net (the colour map
    /// has changed since the last net committed its colours).
    pub fn begin_net(&mut self) {
        self.epoch += 1;
    }

    /// The wire footprint a route through vertex `v` would occupy.
    fn footprint(&self, grid: &GridGraph, v: VertexId) -> Rect {
        Rect::from_point(grid.point_of(v)).expanded(self.half_width)
    }

    /// The per-mask pressure of routing net `net` through vertex `v`.
    pub fn pressure(
        &mut self,
        grid: &GridGraph,
        map: &ColorMap,
        net: NetId,
        v: VertexId,
    ) -> [u16; 3] {
        let i = v.index();
        if self.stamp[i] == self.epoch {
            return self.pressure[i];
        }
        let rect = self.footprint(grid, v);
        let raw = map.mask_pressure(net, grid.layer_of(v), &rect);
        let clamped = [
            raw[0].min(u16::MAX as usize) as u16,
            raw[1].min(u16::MAX as usize) as u16,
            raw[2].min(u16::MAX as usize) as u16,
        ];
        self.stamp[i] = self.epoch;
        self.pressure[i] = clamped;
        clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_color::{Feature, Mask};
    use tpl_design::{DesignBuilder, LayerId, Technology};
    use tpl_geom::Rect as GRect;

    fn setup() -> (tpl_design::Design, GridGraph, ColorMap) {
        let mut b = DesignBuilder::new(
            "cc",
            Technology::ispd_like(3),
            GRect::from_coords(0, 0, 400, 400),
        );
        let p0 = b.add_pin_shape("a", 0, GRect::from_coords(6, 6, 14, 14));
        let p1 = b.add_pin_shape("b", 0, GRect::from_coords(366, 366, 374, 374));
        b.add_net("n0", vec![p0, p1]);
        let d = b.build().unwrap();
        let g = GridGraph::build(&d);
        let map = ColorMap::new(d.die(), d.tech().num_layers(), d.tech().dcolor());
        (d, g, map)
    }

    #[test]
    fn pressure_reflects_nearby_colored_features() {
        let (_, grid, mut map) = setup();
        // A red wire of another net along y=110 on layer 0.
        map.insert(Feature::wire(
            NetId::new(5),
            LayerId::new(0),
            GRect::from_coords(0, 106, 400, 114),
            Some(Mask::Red),
        ));
        let mut cache = ColorCostCache::new(&grid);
        cache.begin_net();
        // Vertex on layer 0 at y=130 (one track away, within dcolor=45).
        let v_near = grid.vertex(0, 5, grid.iy_near(130));
        let p = cache.pressure(&grid, &map, NetId::new(0), v_near);
        assert_eq!(p, [1, 0, 0]);
        // Vertex three tracks away (70 dbu) sees nothing.
        let v_far = grid.vertex(0, 5, grid.iy_near(190));
        let p = cache.pressure(&grid, &map, NetId::new(0), v_far);
        assert_eq!(p, [0, 0, 0]);
        // The owning net itself feels no pressure from its own wire.
        let p = cache.pressure(
            &grid,
            &map,
            NetId::new(5),
            grid.vertex(0, 7, grid.iy_near(130)),
        );
        assert_eq!(p, [0, 0, 0]);
    }

    #[test]
    fn cache_is_invalidated_between_nets() {
        let (_, grid, mut map) = setup();
        let mut cache = ColorCostCache::new(&grid);
        cache.begin_net();
        let v = grid.vertex(0, 5, 5);
        assert_eq!(cache.pressure(&grid, &map, NetId::new(0), v), [0, 0, 0]);
        // A green wire appears right next to the vertex.
        let p = grid.point_of(v);
        map.insert(Feature::wire(
            NetId::new(9),
            LayerId::new(0),
            GRect::from_coords(p.x - 4, p.y + 16, p.x + 100, p.y + 24),
            Some(Mask::Green),
        ));
        // Same epoch: stale (still cached as zero).
        assert_eq!(cache.pressure(&grid, &map, NetId::new(0), v), [0, 0, 0]);
        // New net epoch: fresh value.
        cache.begin_net();
        assert_eq!(cache.pressure(&grid, &map, NetId::new(0), v), [0, 1, 0]);
    }
}
