//! Configuration and statistics of the Mr.TPL router.

use tpl_grid::{CostParams, Outcome, SearchConfig};
use tpl_par::Parallelism;

/// How the searcher treats colour candidates during expansion.
///
/// The default ([`SearchPolicy::ColorStateSet`]) is the paper's contribution;
/// [`SearchPolicy::GreedySingleColor`] is the ablation baseline that commits
/// a single mask per vertex during search (the behaviour 2-pin methods are
/// stuck with), used by the `ablation_colorstate` bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchPolicy {
    /// Keep the full set of minimum-cost masks alive (set-based colour state
    /// merging, the paper's method).
    #[default]
    ColorStateSet,
    /// Keep only the single cheapest mask at every step.
    GreedySingleColor,
}

/// Configuration of the Mr.TPL router.
///
/// The three weights `alpha`/`beta`/`gamma` correspond directly to Eq. (1) of
/// the paper: `alpha` scales the traditional routing cost, `beta` the stitch
/// cost and `gamma` the colour-conflict cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MrTplConfig {
    /// Traditional (colour-free) cost parameters, scaled by `alpha`.
    pub cost: CostParams,
    /// Weight of the traditional cost term.
    pub alpha: f64,
    /// Cost of introducing a stitch (`beta * Cost_stitch`).
    pub stitch_cost: f64,
    /// Cost per conflicting same-mask neighbour within `Dcolor`
    /// (`gamma * Cost_color`).
    pub color_conflict_cost: f64,
    /// Maximum number of rip-up-and-reroute iterations on colour conflicts.
    pub max_rrr_iterations: usize,
    /// History cost added to vertices in a conflict region when ripping up.
    pub history_increment: f64,
    /// Search policy (set-based states vs greedy single colour).
    pub policy: SearchPolicy,
    /// Intra-case net-level parallelism.  Nets of one rip-up-and-reroute
    /// iteration are partitioned into conflict-free batches routed against
    /// frozen shared state, so the result is identical for every worker
    /// count (`jobs = 1` runs the same batched algorithm inline).
    pub parallelism: Parallelism,
    /// Shortest-path kernel knobs (goal-directed A*, bucket queue, key
    /// quantisation).  The `bucket_queue` knob never changes results; the
    /// `a_star` knob preserves path cost but may pick a different equal-cost
    /// tie where expansion order matters.
    pub search: SearchConfig,
}

impl Default for MrTplConfig {
    fn default() -> Self {
        Self {
            cost: CostParams::default(),
            alpha: 1.0,
            stitch_cost: 20.0,
            color_conflict_cost: 350.0,
            max_rrr_iterations: 5,
            history_increment: 60.0,
            policy: SearchPolicy::ColorStateSet,
            parallelism: Parallelism::sequential(),
            search: SearchConfig::default(),
        }
    }
}

/// Statistics of a full Mr.TPL run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MrTplStats {
    /// Colour conflicts remaining in the final layout.
    pub conflicts: usize,
    /// Stitches in the final layout.
    pub stitches: usize,
    /// Rip-up-and-reroute iterations executed.
    pub rrr_iterations: usize,
    /// Nets that could not be fully connected.
    pub failed_nets: usize,
    /// Total number of segSets created (one mask decision each).
    pub seg_sets: usize,
    /// Total heap pops across all colour-state searches (search effort,
    /// independent of wall clock and worker count).
    pub search_nodes: usize,
    /// Wall-clock routing time in seconds.
    pub runtime_seconds: f64,
    /// Conflict count measured after each routing pass (index 0 = initial
    /// pass, then one entry per rip-up-and-reroute iteration).  Used by the
    /// convergence ablation.
    pub conflict_history: Vec<usize>,
    /// How the run ended: `Complete` without a budget, `Degraded` after a
    /// search-node budget trip (best-so-far partial solution), `Aborted` on
    /// deadline or cancellation.
    pub outcome: Outcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_uses_set_based_policy() {
        let c = MrTplConfig::default();
        assert_eq!(c.policy, SearchPolicy::ColorStateSet);
        assert!(c.stitch_cost > 0.0);
        assert!(c.color_conflict_cost > c.stitch_cost);
        assert!(c.max_rrr_iterations >= 1);
    }

    #[test]
    fn stats_default_to_zero() {
        let s = MrTplStats::default();
        assert_eq!(s.conflicts, 0);
        assert_eq!(s.stitches, 0);
        assert_eq!(s.rrr_iterations, 0);
    }
}
