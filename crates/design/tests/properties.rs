//! Property-based tests for the design model and its textual format.

use proptest::prelude::*;
use tpl_design::{read_design, write_design, DesignBuilder, Technology};
use tpl_geom::Rect;

/// A random but always-valid design: pins inside the die, at least 2 pins per
/// net, every pin owned by exactly one net.
fn arb_design() -> impl Strategy<Value = tpl_design::Design> {
    let net_specs = prop::collection::vec(2usize..6, 1..12);
    (net_specs, 2usize..5, any::<u64>()).prop_map(|(pins_per_net, layers, salt)| {
        let die = Rect::from_coords(0, 0, 4000, 4000);
        let mut b = DesignBuilder::new(format!("prop_{salt}"), Technology::ispd_like(layers), die);
        let mut rng = salt;
        let mut next = move || {
            // Tiny deterministic LCG so the strategy itself stays simple.
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng
        };
        for (ni, npins) in pins_per_net.iter().enumerate() {
            let mut pin_ids = Vec::new();
            for pi in 0..*npins {
                let x = (next() % 3900) as i64;
                let y = (next() % 3900) as i64;
                let layer = (next() % 2) as u32;
                pin_ids.push(b.add_pin_shape(
                    format!("n{ni}_p{pi}"),
                    layer,
                    Rect::from_coords(x, y, x + 20, y + 20),
                ));
            }
            b.add_net(format!("net{ni}"), pin_ids);
        }
        if salt % 3 == 0 {
            b.add_obstacle(1, Rect::from_coords(500, 500, 900, 900));
        }
        b.build().expect("generated design is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_format_round_trips(design in arb_design()) {
        let text = write_design(&design);
        let parsed = read_design(&text).expect("round trip parses");
        prop_assert_eq!(parsed.name(), design.name());
        prop_assert_eq!(parsed.die(), design.die());
        prop_assert_eq!(parsed.nets().len(), design.nets().len());
        prop_assert_eq!(parsed.pins().len(), design.pins().len());
        prop_assert_eq!(parsed.obstacles().len(), design.obstacles().len());
        prop_assert_eq!(parsed.tech().dcolor(), design.tech().dcolor());
        // Net memberships survive.
        for (a, b) in design.nets().iter().zip(parsed.nets().iter()) {
            prop_assert_eq!(a.pin_count(), b.pin_count());
            prop_assert_eq!(a.name(), b.name());
        }
        // Writing the parsed design again is byte-identical (canonical form).
        prop_assert_eq!(write_design(&parsed), text);
    }

    #[test]
    fn stats_are_consistent(design in arb_design()) {
        let s = design.stats();
        prop_assert_eq!(s.num_nets, design.nets().len());
        prop_assert_eq!(s.num_pins, design.pins().len());
        prop_assert!(s.multi_pin_nets <= s.num_nets);
        let count_multi = design.nets().iter().filter(|n| n.pin_count() > 2).count();
        prop_assert_eq!(s.multi_pin_nets, count_multi);
        prop_assert!(s.max_pins_per_net >= 2);
    }

    #[test]
    fn net_bbox_contains_every_pin_bbox(design in arb_design()) {
        for net in design.nets() {
            let bbox = design.net_bbox(net.id()).expect("nets have shapes");
            for pin in net.pins() {
                let pb = design.pin(*pin).bbox().expect("pins have shapes");
                prop_assert!(bbox.contains_rect(&pb));
            }
        }
    }

    #[test]
    fn every_pin_is_owned_by_its_net(design in arb_design()) {
        for net in design.nets() {
            for pin in net.pins() {
                prop_assert_eq!(design.pin(*pin).net(), net.id());
            }
        }
    }
}
