//! Strongly-typed identifiers for design objects.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index, usable for dense `Vec` indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(raw: usize) -> Self {
                Self(raw as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a routing layer (0 = lowest metal).
    LayerId,
    "M"
);
id_type!(
    /// Identifier of a net.
    NetId,
    "net"
);
id_type!(
    /// Identifier of a pin.
    PinId,
    "pin"
);
id_type!(
    /// Identifier of a routing obstacle.
    ObstacleId,
    "obs"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_index() {
        let n = NetId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(NetId::from(42usize), n);
        assert_eq!(NetId::from(42u32), n);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(LayerId::new(3).to_string(), "M3");
        assert_eq!(NetId::new(7).to_string(), "net7");
        assert_eq!(PinId::new(1).to_string(), "pin1");
        assert_eq!(ObstacleId::new(0).to_string(), "obs0");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(NetId::new(1) < NetId::new(2));
        assert_eq!(NetId::default(), NetId::new(0));
    }
}
