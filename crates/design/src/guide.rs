//! Route guides produced by the global router.

use crate::{LayerId, NetId};
use tpl_geom::Rect;

/// A single rectangular guide region on one layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GuideRegion {
    /// Layer the region applies to.
    pub layer: LayerId,
    /// The guided area in database units.
    pub rect: Rect,
}

/// Route guides for every net of a design.
///
/// A detailed router is free to leave the guide, but pays an out-of-guide
/// penalty (exactly as in the ISPD contests).  Mr.TPL additionally uses the
/// guide region to pre-compute colour costs ("Calculate Color Cost by GR
/// Guide" in the paper's flow).
#[derive(Clone, Debug, Default)]
pub struct RouteGuides {
    per_net: Vec<Vec<GuideRegion>>,
}

impl RouteGuides {
    /// Creates empty guides for `num_nets` nets.
    pub fn new(num_nets: usize) -> Self {
        Self {
            per_net: vec![Vec::new(); num_nets],
        }
    }

    /// Number of nets covered.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.per_net.len()
    }

    /// Adds a guide region for a net.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    pub fn add(&mut self, net: NetId, layer: LayerId, rect: Rect) {
        self.per_net[net.index()].push(GuideRegion { layer, rect });
    }

    /// The guide regions of one net (possibly empty = unguided).
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    #[inline]
    pub fn regions(&self, net: NetId) -> &[GuideRegion] {
        &self.per_net[net.index()]
    }

    /// `true` if the given location is inside any guide region of the net on
    /// that layer.  Nets without any region are treated as fully guided
    /// (no penalty anywhere).
    pub fn covers(&self, net: NetId, layer: LayerId, rect: &Rect) -> bool {
        let regions = self.regions(net);
        if regions.is_empty() {
            return true;
        }
        regions
            .iter()
            .any(|g| g.layer == layer && g.rect.intersects(rect))
    }

    /// The union bounding box of a net's guide (ignoring layers), if any.
    pub fn bbox(&self, net: NetId) -> Option<Rect> {
        let regions = self.regions(net);
        let mut it = regions.iter().map(|g| g.rect);
        let first = it.next()?;
        Some(it.fold(first, |acc, r| acc.hull(&r)))
    }

    /// Total number of guide regions over all nets.
    pub fn total_regions(&self) -> usize {
        self.per_net.iter().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_guides_cover_everything() {
        let g = RouteGuides::new(2);
        assert!(g.covers(
            NetId::new(0),
            LayerId::new(3),
            &Rect::from_coords(0, 0, 5, 5)
        ));
        assert_eq!(g.bbox(NetId::new(0)), None);
        assert_eq!(g.total_regions(), 0);
    }

    #[test]
    fn covers_checks_layer_and_geometry() {
        let mut g = RouteGuides::new(1);
        g.add(
            NetId::new(0),
            LayerId::new(1),
            Rect::from_coords(0, 0, 100, 100),
        );
        assert!(g.covers(
            NetId::new(0),
            LayerId::new(1),
            &Rect::from_coords(50, 50, 60, 60)
        ));
        assert!(!g.covers(
            NetId::new(0),
            LayerId::new(2),
            &Rect::from_coords(50, 50, 60, 60)
        ));
        assert!(!g.covers(
            NetId::new(0),
            LayerId::new(1),
            &Rect::from_coords(500, 500, 600, 600)
        ));
    }

    #[test]
    fn bbox_is_union_of_regions() {
        let mut g = RouteGuides::new(1);
        g.add(
            NetId::new(0),
            LayerId::new(0),
            Rect::from_coords(0, 0, 10, 10),
        );
        g.add(
            NetId::new(0),
            LayerId::new(1),
            Rect::from_coords(90, 90, 120, 100),
        );
        assert_eq!(
            g.bbox(NetId::new(0)),
            Some(Rect::from_coords(0, 0, 120, 100))
        );
        assert_eq!(g.total_regions(), 2);
    }
}
