//! Nets: named groups of pins to be connected.

use crate::{NetId, PinId};

/// A net connects two or more pins.
///
/// Mr.TPL's contribution is specifically about *multi-pin* nets
/// (`pin_count() > 2`), which is why the net keeps its pin list in routing
/// order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Net {
    id: NetId,
    name: String,
    pins: Vec<PinId>,
}

impl Net {
    /// Creates a net over the given pins.
    pub fn new(id: NetId, name: impl Into<String>, pins: Vec<PinId>) -> Self {
        Self {
            id,
            name: name.into(),
            pins,
        }
    }

    /// The net identifier.
    #[inline]
    pub fn id(&self) -> NetId {
        self.id
    }

    /// The net name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pins of the net, in input order.
    #[inline]
    pub fn pins(&self) -> &[PinId] {
        &self.pins
    }

    /// Number of pins.
    #[inline]
    pub fn pin_count(&self) -> usize {
        self.pins.len()
    }

    /// `true` when the net has more than two pins (the case the paper targets).
    #[inline]
    pub fn is_multi_pin(&self) -> bool {
        self.pins.len() > 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_pin_detection() {
        let two = Net::new(NetId::new(0), "a", vec![PinId::new(0), PinId::new(1)]);
        let four = Net::new(NetId::new(1), "b", (0..4).map(PinId::new).collect());
        assert!(!two.is_multi_pin());
        assert!(four.is_multi_pin());
        assert_eq!(four.pin_count(), 4);
        assert_eq!(four.name(), "b");
        assert_eq!(four.id(), NetId::new(1));
    }
}
