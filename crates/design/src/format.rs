//! A compact textual interchange format for designs.
//!
//! The format plays the role of LEF/DEF in the original flow: it lets the
//! synthetic ISPD-like benchmarks be written to disk, inspected, and read
//! back by the examples without any external parser dependency.
//!
//! ```text
//! design <name>
//! die <x1> <y1> <x2> <y2>
//! dcolor <d>
//! layer <name> <H|V> <pitch> <offset> <width> <spacing>
//! pin <name> <net-index> <layer> <x1> <y1> <x2> <y2> [<layer> <x1> ...]
//! net <name> <pin-index> <pin-index> ...
//! obs <layer> <x1> <y1> <x2> <y2> <colorable 0|1>
//! ```

use crate::{Design, DesignBuilder, DesignError, Layer, LayerId, Technology};
use tpl_geom::{Axis, Dbu, Rect};

/// Serialises a design to the textual format.
pub fn write_design(design: &Design) -> String {
    let mut out = String::new();
    out.push_str(&format!("design {}\n", design.name()));
    let die = design.die();
    out.push_str(&format!(
        "die {} {} {} {}\n",
        die.lo.x, die.lo.y, die.hi.x, die.hi.y
    ));
    out.push_str(&format!("dcolor {}\n", design.tech().dcolor()));
    for (_, layer) in design.tech().iter() {
        out.push_str(&format!(
            "layer {} {} {} {} {} {}\n",
            layer.name, layer.axis, layer.pitch, layer.offset, layer.width, layer.spacing
        ));
    }
    for pin in design.pins() {
        out.push_str(&format!("pin {} {}", pin.name(), pin.net().index()));
        for (layer, rect) in pin.shapes() {
            out.push_str(&format!(
                " {} {} {} {} {}",
                layer.index(),
                rect.lo.x,
                rect.lo.y,
                rect.hi.x,
                rect.hi.y
            ));
        }
        out.push('\n');
    }
    for net in design.nets() {
        out.push_str(&format!("net {}", net.name()));
        for pin in net.pins() {
            out.push_str(&format!(" {}", pin.index()));
        }
        out.push('\n');
    }
    for obs in design.obstacles() {
        out.push_str(&format!(
            "obs {} {} {} {} {} {}\n",
            obs.layer.index(),
            obs.rect.lo.x,
            obs.rect.lo.y,
            obs.rect.hi.x,
            obs.rect.hi.y,
            if obs.colorable { 1 } else { 0 }
        ));
    }
    out
}

fn parse_err(line: usize, message: impl Into<String>) -> DesignError {
    DesignError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_num(tok: &str, line: usize) -> Result<Dbu, DesignError> {
    tok.parse::<Dbu>()
        .map_err(|_| parse_err(line, format!("expected integer, found `{tok}`")))
}

/// Parses a design from the textual format.
///
/// # Errors
///
/// Returns [`DesignError::Parse`] on any malformed line and the usual
/// validation errors from [`DesignBuilder::build`].
pub fn read_design(text: &str) -> Result<Design, DesignError> {
    let mut name = String::from("unnamed");
    let mut die: Option<Rect> = None;
    let mut dcolor: Dbu = 0;
    let mut layers: Vec<Layer> = Vec::new();
    // (pin name, net index, shapes)
    type PinSpec = (String, usize, Vec<(LayerId, Rect)>);
    let mut pins: Vec<PinSpec> = Vec::new();
    let mut nets: Vec<(String, Vec<usize>)> = Vec::new();
    let mut obstacles: Vec<(u32, Rect, bool)> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "design" => {
                if toks.len() < 2 {
                    return Err(parse_err(lineno, "design needs a name"));
                }
                name = toks[1].to_string();
            }
            "die" => {
                if toks.len() != 5 {
                    return Err(parse_err(lineno, "die needs 4 coordinates"));
                }
                die = Some(Rect::from_coords(
                    parse_num(toks[1], lineno)?,
                    parse_num(toks[2], lineno)?,
                    parse_num(toks[3], lineno)?,
                    parse_num(toks[4], lineno)?,
                ));
            }
            "dcolor" => {
                if toks.len() != 2 {
                    return Err(parse_err(lineno, "dcolor needs a value"));
                }
                dcolor = parse_num(toks[1], lineno)?;
            }
            "layer" => {
                if toks.len() != 7 {
                    return Err(parse_err(lineno, "layer needs 6 fields"));
                }
                let axis = match toks[2] {
                    "H" => Axis::Horizontal,
                    "V" => Axis::Vertical,
                    other => return Err(parse_err(lineno, format!("bad axis `{other}`"))),
                };
                layers.push(Layer::new(
                    toks[1],
                    axis,
                    parse_num(toks[3], lineno)?,
                    parse_num(toks[4], lineno)?,
                    parse_num(toks[5], lineno)?,
                    parse_num(toks[6], lineno)?,
                ));
            }
            "pin" => {
                if toks.len() < 8 || !(toks.len() - 3).is_multiple_of(5) {
                    return Err(parse_err(lineno, "pin needs name, net and 5-field shapes"));
                }
                let pin_name = toks[1].to_string();
                let net_idx = toks[2]
                    .parse::<usize>()
                    .map_err(|_| parse_err(lineno, "bad net index"))?;
                let mut shapes = Vec::new();
                let mut k = 3;
                while k < toks.len() {
                    let layer = toks[k]
                        .parse::<u32>()
                        .map_err(|_| parse_err(lineno, "bad layer index"))?;
                    let rect = Rect::from_coords(
                        parse_num(toks[k + 1], lineno)?,
                        parse_num(toks[k + 2], lineno)?,
                        parse_num(toks[k + 3], lineno)?,
                        parse_num(toks[k + 4], lineno)?,
                    );
                    shapes.push((LayerId::new(layer), rect));
                    k += 5;
                }
                pins.push((pin_name, net_idx, shapes));
            }
            "net" => {
                if toks.len() < 2 {
                    return Err(parse_err(lineno, "net needs a name"));
                }
                let net_name = toks[1].to_string();
                let mut pin_refs = Vec::new();
                for t in &toks[2..] {
                    pin_refs.push(
                        t.parse::<usize>()
                            .map_err(|_| parse_err(lineno, "bad pin index"))?,
                    );
                }
                nets.push((net_name, pin_refs));
            }
            "obs" => {
                if toks.len() != 7 {
                    return Err(parse_err(lineno, "obs needs 6 fields"));
                }
                let layer = toks[1]
                    .parse::<u32>()
                    .map_err(|_| parse_err(lineno, "bad layer index"))?;
                let rect = Rect::from_coords(
                    parse_num(toks[2], lineno)?,
                    parse_num(toks[3], lineno)?,
                    parse_num(toks[4], lineno)?,
                    parse_num(toks[5], lineno)?,
                );
                let colorable = toks[6] != "0";
                obstacles.push((layer, rect, colorable));
            }
            other => {
                return Err(parse_err(lineno, format!("unknown directive `{other}`")));
            }
        }
    }

    let die = die.ok_or_else(|| parse_err(0, "missing die line"))?;
    let tech = Technology::new(layers, dcolor, 1000)?;
    let mut builder = DesignBuilder::new(name, tech, die);

    let mut pin_ids = Vec::with_capacity(pins.len());
    for (pin_name, _net, shapes) in &pins {
        pin_ids.push(builder.add_pin(pin_name.clone(), shapes.clone()));
    }
    for (net_name, pin_refs) in &nets {
        let ids = pin_refs
            .iter()
            .map(|idx| {
                pin_ids.get(*idx).copied().ok_or_else(|| {
                    parse_err(0, format!("net {net_name} references missing pin {idx}"))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        builder.add_net(net_name.clone(), ids);
    }
    for (layer, rect, colorable) in obstacles {
        if colorable {
            builder.add_obstacle(layer, rect);
        } else {
            builder.add_blockage(layer, rect);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignBuilder;

    fn sample() -> Design {
        let mut b = DesignBuilder::new(
            "roundtrip",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 500, 500),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 1, Rect::from_coords(100, 100, 110, 110));
        let p2 = b.add_pin_shape("c", 0, Rect::from_coords(400, 30, 410, 40));
        b.add_net("n0", vec![p0, p1, p2]);
        b.add_obstacle(1, Rect::from_coords(200, 200, 260, 260));
        b.add_blockage(2, Rect::from_coords(300, 300, 360, 360));
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let d = sample();
        let text = write_design(&d);
        let d2 = read_design(&text).unwrap();
        assert_eq!(d2.name(), d.name());
        assert_eq!(d2.die(), d.die());
        assert_eq!(d2.tech().dcolor(), d.tech().dcolor());
        assert_eq!(d2.tech().num_layers(), d.tech().num_layers());
        assert_eq!(d2.nets().len(), d.nets().len());
        assert_eq!(d2.pins().len(), d.pins().len());
        assert_eq!(d2.obstacles().len(), d.obstacles().len());
        assert!(!d2.obstacles()[1].colorable);
        assert_eq!(d2.net(crate::NetId::new(0)).pin_count(), 3);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "design x\ndie 0 0 100 100\ndcolor 30\nlayer M1 H 20 10 8 8\nbogus line here\n";
        match read_design(text) {
            Err(DesignError::Parse { line, .. }) => assert_eq!(line, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_missing_die() {
        let text = "design x\ndcolor 30\nlayer M1 H 20 10 8 8\n";
        assert!(matches!(read_design(text), Err(DesignError::Parse { .. })));
    }

    #[test]
    fn parse_rejects_bad_axis_and_numbers() {
        let text = "design x\ndie 0 0 10 10\ndcolor 30\nlayer M1 Q 20 10 8 8\n";
        assert!(read_design(text).is_err());
        let text = "design x\ndie 0 0 ten 10\ndcolor 30\nlayer M1 H 20 10 8 8\n";
        assert!(read_design(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let d = sample();
        let mut text = String::from("# header comment\n\n");
        text.push_str(&write_design(&d));
        assert!(read_design(&text).is_ok());
    }
}
