//! Routing obstacles (macro blockages, pre-routed power straps, …).

use crate::{LayerId, ObstacleId};
use tpl_geom::Rect;

/// A rectangular routing blockage on one layer.
///
/// Obstacles block grid vertices during routing and participate in colour
/// conflicts like any other feature (a wire closer than `Dcolor` to an
/// obstacle printed on the same mask conflicts with it).  Obstacles whose
/// `colorable` flag is `false` are dummy fill or power shapes outside the TPL
/// layer set and only block routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Obstacle {
    /// The obstacle identifier.
    pub id: ObstacleId,
    /// Layer the obstacle sits on.
    pub layer: LayerId,
    /// The blocked region.
    pub rect: Rect,
    /// Whether the obstacle participates in mask colouring.
    pub colorable: bool,
}

impl Obstacle {
    /// Creates a colourable obstacle.
    pub fn new(id: ObstacleId, layer: LayerId, rect: Rect) -> Self {
        Self {
            id,
            layer,
            rect,
            colorable: true,
        }
    }

    /// Creates an obstacle that only blocks routing and never takes a mask.
    pub fn non_colorable(id: ObstacleId, layer: LayerId, rect: Rect) -> Self {
        Self {
            id,
            layer,
            rect,
            colorable: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_colorable_flag() {
        let r = Rect::from_coords(0, 0, 10, 10);
        let a = Obstacle::new(ObstacleId::new(0), LayerId::new(1), r);
        let b = Obstacle::non_colorable(ObstacleId::new(1), LayerId::new(1), r);
        assert!(a.colorable);
        assert!(!b.colorable);
        assert_eq!(a.rect, r);
        assert_eq!(b.layer, LayerId::new(1));
    }
}
