//! Layer stack and technology description.

use crate::{DesignError, LayerId};
use tpl_geom::{Axis, Dbu};

/// A single routing layer.
///
/// Layers carry the track geometry (preferred axis, pitch, offset), the
/// default wire width and minimum spacing used for design-rule checking.
///
/// # Examples
///
/// ```
/// use tpl_design::Layer;
/// use tpl_geom::Axis;
/// let m1 = Layer::new("M1", Axis::Horizontal, 20, 10, 8, 8);
/// assert_eq!(m1.pitch, 20);
/// assert!(m1.axis.is_horizontal());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layer {
    /// Human-readable layer name (`M1`, `M2`, …).
    pub name: String,
    /// Preferred routing axis of the layer.
    pub axis: Axis,
    /// Track pitch in database units.
    pub pitch: Dbu,
    /// Offset of the first track from the die origin.
    pub offset: Dbu,
    /// Default wire width.
    pub width: Dbu,
    /// Minimum same-layer spacing between different nets.
    pub spacing: Dbu,
}

impl Layer {
    /// Creates a layer description.
    pub fn new(
        name: impl Into<String>,
        axis: Axis,
        pitch: Dbu,
        offset: Dbu,
        width: Dbu,
        spacing: Dbu,
    ) -> Self {
        Self {
            name: name.into(),
            axis,
            pitch,
            offset,
            width,
            spacing,
        }
    }
}

/// The technology description: layer stack plus triple-patterning rules.
///
/// `dcolor` is the colour-spacing distance of the paper: two features on the
/// same layer whose spacing is below `dcolor` must be printed on different
/// masks, otherwise a colour conflict is reported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Technology {
    layers: Vec<Layer>,
    dcolor: Dbu,
    dbu_per_micron: Dbu,
}

impl Technology {
    /// Creates a technology from an explicit layer stack.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::InvalidTechnology`] if the stack is empty, any
    /// pitch/width/spacing is non-positive, or `dcolor` is non-positive.
    pub fn new(layers: Vec<Layer>, dcolor: Dbu, dbu_per_micron: Dbu) -> Result<Self, DesignError> {
        if layers.is_empty() {
            return Err(DesignError::InvalidTechnology("empty layer stack".into()));
        }
        for l in &layers {
            if l.pitch <= 0 || l.width <= 0 || l.spacing <= 0 {
                return Err(DesignError::InvalidTechnology(format!(
                    "layer {} has non-positive pitch/width/spacing",
                    l.name
                )));
            }
        }
        if dcolor <= 0 {
            return Err(DesignError::InvalidTechnology(
                "dcolor must be positive".into(),
            ));
        }
        Ok(Self {
            layers,
            dcolor,
            dbu_per_micron,
        })
    }

    /// A canonical ISPD-like stack with `num_layers` metal layers.
    ///
    /// Layer `M1` is horizontal and mostly used for pin access; preferred
    /// directions alternate above it.  The pitch is 20 dbu, wire width 8 dbu,
    /// same-net spacing 8 dbu and the TPL colour-spacing distance `Dcolor` is
    /// 2.25 pitches (45 dbu): wires one or two tracks apart must use
    /// different masks, wires three tracks apart are free.  This is the rule
    /// that makes four tightly packed parallel wires (a K4 in the conflict
    /// graph) impossible to colour with three masks, exactly the situation of
    /// Fig. 1(a) in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers` is zero.
    pub fn ispd_like(num_layers: usize) -> Self {
        assert!(num_layers > 0, "need at least one layer");
        let pitch = 20;
        let layers = (0..num_layers)
            .map(|i| {
                let axis = if i % 2 == 0 {
                    Axis::Horizontal
                } else {
                    Axis::Vertical
                };
                Layer::new(format!("M{}", i + 1), axis, pitch, pitch / 2, 8, 8)
            })
            .collect();
        Technology::new(layers, 2 * pitch + pitch / 4, 1000).expect("canonical stack is valid")
    }

    /// The layer stack, bottom-up.
    #[inline]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of routing layers.
    #[inline]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Looks up a layer by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.index()]
    }

    /// The TPL colour-spacing distance (`Dcolor` in the paper).
    #[inline]
    pub fn dcolor(&self) -> Dbu {
        self.dcolor
    }

    /// Database units per micron (purely informational).
    #[inline]
    pub fn dbu_per_micron(&self) -> Dbu {
        self.dbu_per_micron
    }

    /// Iterator over `(LayerId, &Layer)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LayerId, &Layer)> {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| (LayerId::from(i), l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ispd_like_alternates_axes() {
        let t = Technology::ispd_like(5);
        assert_eq!(t.num_layers(), 5);
        assert_eq!(t.layer(LayerId::new(0)).axis, Axis::Horizontal);
        assert_eq!(t.layer(LayerId::new(1)).axis, Axis::Vertical);
        assert_eq!(t.layer(LayerId::new(2)).axis, Axis::Horizontal);
        assert!(t.dcolor() > 2 * t.layer(LayerId::new(0)).pitch);
        assert!(t.dcolor() < 3 * t.layer(LayerId::new(0)).pitch);
    }

    #[test]
    fn rejects_empty_stack() {
        assert!(matches!(
            Technology::new(vec![], 10, 1000),
            Err(DesignError::InvalidTechnology(_))
        ));
    }

    #[test]
    fn rejects_bad_pitch_and_dcolor() {
        let bad_layer = Layer::new("M1", Axis::Horizontal, 0, 0, 8, 8);
        assert!(Technology::new(vec![bad_layer], 10, 1000).is_err());
        let ok_layer = Layer::new("M1", Axis::Horizontal, 20, 0, 8, 8);
        assert!(Technology::new(vec![ok_layer], 0, 1000).is_err());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let t = Technology::ispd_like(3);
        let ids: Vec<_> = t.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
