//! Routed-net data model shared by every router in the workspace.

use crate::{Design, LayerId, NetId};
use tpl_geom::{Dbu, Point, Rect, Segment};

/// A straight routed wire piece on one layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteSegment {
    /// The layer of the wire.
    pub layer: LayerId,
    /// The centre line of the wire.
    pub seg: Segment,
    /// Total wire width.
    pub width: Dbu,
}

impl RouteSegment {
    /// Creates a segment.
    pub fn new(layer: LayerId, seg: Segment, width: Dbu) -> Self {
        Self { layer, seg, width }
    }

    /// The physical metal rectangle of the wire.
    #[inline]
    pub fn rect(&self) -> Rect {
        self.seg.to_rect(self.width)
    }

    /// Centre-line length of the wire.
    #[inline]
    pub fn length(&self) -> Dbu {
        self.seg.length()
    }
}

/// A via connecting `lower_layer` and `lower_layer + 1` at a point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViaInstance {
    /// The lower of the two layers connected by the via.
    pub lower_layer: LayerId,
    /// The via location (cut centre).
    pub at: Point,
}

impl ViaInstance {
    /// Creates a via.
    pub fn new(lower_layer: LayerId, at: Point) -> Self {
        Self { lower_layer, at }
    }

    /// The layer above the cut.
    #[inline]
    pub fn upper_layer(&self) -> LayerId {
        LayerId::new(self.lower_layer.0 + 1)
    }
}

/// The routed geometry of one net.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutedNet {
    /// Wire segments.
    pub segments: Vec<RouteSegment>,
    /// Vias.
    pub vias: Vec<ViaInstance>,
}

impl RoutedNet {
    /// Creates an empty routed net.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total centre-line wirelength.
    pub fn wirelength(&self) -> Dbu {
        self.segments.iter().map(|s| s.length()).sum()
    }

    /// Number of vias.
    pub fn via_count(&self) -> usize {
        self.vias.len()
    }

    /// `true` when the net has no geometry at all.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty() && self.vias.is_empty()
    }

    /// Checks that the routed geometry electrically connects every pin of
    /// `net` in `design`.
    ///
    /// Connectivity is evaluated with a union–find over pin shapes, wire
    /// rectangles and vias: shapes on the same layer connect when their
    /// rectangles touch or overlap; a via connects whatever it touches on its
    /// two layers.
    pub fn connects_all_pins(&self, design: &Design, net: NetId) -> bool {
        #[derive(Clone, Copy)]
        struct Item {
            layer: u32,
            rect: Rect,
        }

        let mut items: Vec<Item> = Vec::new();
        let mut pin_first_item: Vec<usize> = Vec::new();

        for pin_id in design.net(net).pins() {
            let pin = design.pin(*pin_id);
            pin_first_item.push(items.len());
            for (layer, rect) in pin.shapes() {
                items.push(Item {
                    layer: layer.0,
                    rect: *rect,
                });
            }
        }
        let num_pin_items = items.len();
        if num_pin_items == 0 {
            return true;
        }

        for seg in &self.segments {
            items.push(Item {
                layer: seg.layer.0,
                rect: seg.rect(),
            });
        }
        // A via is modelled as two stacked unit shapes, one per layer.
        let mut via_pairs: Vec<(usize, usize)> = Vec::new();
        for via in &self.vias {
            let r = Rect::from_point(via.at).expanded(1);
            let lower = items.len();
            items.push(Item {
                layer: via.lower_layer.0,
                rect: r,
            });
            let upper = items.len();
            items.push(Item {
                layer: via.upper_layer().0,
                rect: r,
            });
            via_pairs.push((lower, upper));
        }

        // Union-find.
        let mut parent: Vec<usize> = (0..items.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        fn union(parent: &mut Vec<usize>, a: usize, b: usize) {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                parent[rb] = ra;
            }
        }

        for (a, b) in &via_pairs {
            union(&mut parent, *a, *b);
        }
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                if items[i].layer == items[j].layer && items[i].rect.intersects(&items[j].rect) {
                    union(&mut parent, i, j);
                }
            }
        }

        // Every pin's first item must be in the same component.  Pins connect
        // through any of their shapes, so first merge a pin's own shapes.
        let mut pin_roots = Vec::new();
        for (k, pin_id) in design.net(net).pins().iter().enumerate() {
            let start = pin_first_item[k];
            let count = design.pin(*pin_id).shapes().len();
            if count == 0 {
                continue;
            }
            for off in 1..count {
                union(&mut parent, start, start + off);
            }
            pin_roots.push(find(&mut parent, start));
        }
        pin_roots.windows(2).all(|w| {
            let a = w[0];
            let b = w[1];
            find(&mut parent, a) == find(&mut parent, b)
        })
    }
}

/// The routing result for a whole design.
///
/// Nets that have not been routed yet map to `None`.
#[derive(Clone, Debug, Default)]
pub struct RoutingSolution {
    nets: Vec<Option<RoutedNet>>,
}

impl RoutingSolution {
    /// Creates an empty solution able to hold `num_nets` nets.
    pub fn new(num_nets: usize) -> Self {
        Self {
            nets: vec![None; num_nets],
        }
    }

    /// Number of nets the solution can hold.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Stores (or replaces) the routed geometry of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    pub fn set(&mut self, net: NetId, routed: RoutedNet) {
        self.nets[net.index()] = Some(routed);
    }

    /// Removes the routed geometry of a net (rip-up) and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    pub fn rip_up(&mut self, net: NetId) -> Option<RoutedNet> {
        self.nets[net.index()].take()
    }

    /// The routed geometry of a net, if present.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    #[inline]
    pub fn get(&self, net: NetId) -> Option<&RoutedNet> {
        self.nets[net.index()].as_ref()
    }

    /// Iterates over routed nets as `(NetId, &RoutedNet)`.
    pub fn iter(&self) -> impl Iterator<Item = (NetId, &RoutedNet)> {
        self.nets
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|r| (NetId::from(i), r)))
    }

    /// Number of nets with stored geometry.
    pub fn routed_count(&self) -> usize {
        self.nets.iter().filter(|n| n.is_some()).count()
    }

    /// Total wirelength over all routed nets.
    pub fn total_wirelength(&self) -> Dbu {
        self.iter().map(|(_, n)| n.wirelength()).sum()
    }

    /// Total via count over all routed nets.
    pub fn total_vias(&self) -> usize {
        self.iter().map(|(_, n)| n.via_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignBuilder, Technology};

    fn two_pin_design() -> (Design, NetId) {
        let mut b = DesignBuilder::new(
            "t",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 1000, 1000),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(200, 200, 210, 210));
        let n = b.add_net("n0", vec![p0, p1]);
        (b.build().unwrap(), n)
    }

    #[test]
    fn wirelength_and_vias_accumulate() {
        let mut rn = RoutedNet::new();
        rn.segments.push(RouteSegment::new(
            LayerId::new(1),
            Segment::new(Point::new(0, 0), Point::new(100, 0)),
            8,
        ));
        rn.segments.push(RouteSegment::new(
            LayerId::new(2),
            Segment::new(Point::new(100, 0), Point::new(100, 50)),
            8,
        ));
        rn.vias
            .push(ViaInstance::new(LayerId::new(1), Point::new(100, 0)));
        assert_eq!(rn.wirelength(), 150);
        assert_eq!(rn.via_count(), 1);
        assert!(!rn.is_empty());
    }

    #[test]
    fn connectivity_detects_connected_and_broken_routes() {
        let (design, net) = two_pin_design();

        // A legitimate L-shaped connection entirely on layer 0.
        let mut good = RoutedNet::new();
        good.segments.push(RouteSegment::new(
            LayerId::new(0),
            Segment::new(Point::new(5, 5), Point::new(5, 205)),
            8,
        ));
        good.segments.push(RouteSegment::new(
            LayerId::new(0),
            Segment::new(Point::new(5, 205), Point::new(205, 205)),
            8,
        ));
        assert!(good.connects_all_pins(&design, net));

        // A broken route that stops short of the second pin.
        let mut bad = RoutedNet::new();
        bad.segments.push(RouteSegment::new(
            LayerId::new(0),
            Segment::new(Point::new(5, 5), Point::new(5, 100)),
            8,
        ));
        assert!(!bad.connects_all_pins(&design, net));

        // Same shape as `good` but on the wrong layer without vias: broken.
        let mut wrong_layer = RoutedNet::new();
        wrong_layer.segments.push(RouteSegment::new(
            LayerId::new(1),
            Segment::new(Point::new(5, 5), Point::new(5, 205)),
            8,
        ));
        wrong_layer.segments.push(RouteSegment::new(
            LayerId::new(1),
            Segment::new(Point::new(5, 205), Point::new(205, 205)),
            8,
        ));
        assert!(!wrong_layer.connects_all_pins(&design, net));

        // Adding vias at both pins fixes the wrong-layer route.
        let mut with_vias = wrong_layer.clone();
        with_vias
            .vias
            .push(ViaInstance::new(LayerId::new(0), Point::new(5, 5)));
        with_vias
            .vias
            .push(ViaInstance::new(LayerId::new(0), Point::new(205, 205)));
        assert!(with_vias.connects_all_pins(&design, net));
    }

    #[test]
    fn solution_set_get_rip_up() {
        let (design, net) = two_pin_design();
        let mut sol = RoutingSolution::new(design.nets().len());
        assert_eq!(sol.routed_count(), 0);
        let mut rn = RoutedNet::new();
        rn.segments.push(RouteSegment::new(
            LayerId::new(0),
            Segment::new(Point::new(0, 0), Point::new(10, 0)),
            8,
        ));
        sol.set(net, rn.clone());
        assert_eq!(sol.routed_count(), 1);
        assert_eq!(sol.get(net), Some(&rn));
        assert_eq!(sol.total_wirelength(), 10);
        let ripped = sol.rip_up(net);
        assert_eq!(ripped, Some(rn));
        assert_eq!(sol.routed_count(), 0);
        assert_eq!(sol.get(net), None);
    }

    #[test]
    fn via_upper_layer_is_one_above() {
        let v = ViaInstance::new(LayerId::new(2), Point::new(0, 0));
        assert_eq!(v.upper_layer(), LayerId::new(3));
    }
}
