//! Design, technology and netlist model for the Mr.TPL reproduction.
//!
//! This crate plays the role of the LEF/DEF + ISPD-contest input stack in the
//! original paper: it defines the [`Technology`] (layer stack, pitches,
//! spacings and the triple-patterning colour-spacing distance `Dcolor`), the
//! [`Design`] (die area, pins, nets, obstacles), route guides produced by the
//! global router, and the [`RoutingSolution`] data model shared by every
//! router and evaluator in the workspace.
//!
//! # Examples
//!
//! ```
//! use tpl_design::{DesignBuilder, Technology};
//! use tpl_geom::Rect;
//!
//! let tech = Technology::ispd_like(4);
//! let mut builder = DesignBuilder::new("toy", tech, Rect::from_coords(0, 0, 1000, 1000));
//! let a = builder.add_pin_shape("u1/a", 0, Rect::from_coords(10, 10, 30, 30));
//! let b = builder.add_pin_shape("u2/z", 0, Rect::from_coords(800, 800, 830, 830));
//! builder.add_net("n1", vec![a, b]);
//! let design = builder.build().unwrap();
//! assert_eq!(design.nets().len(), 1);
//! ```

#![warn(missing_docs)]

mod design;
mod error;
mod format;
mod guide;
mod ids;
mod layer;
mod net;
mod obstacle;
mod pin;
mod route;

pub use crate::design::{Design, DesignBuilder, DesignStats};
pub use error::DesignError;
pub use format::{read_design, write_design};
pub use guide::{GuideRegion, RouteGuides};
pub use ids::{LayerId, NetId, ObstacleId, PinId};
pub use layer::{Layer, Technology};
pub use net::Net;
pub use obstacle::Obstacle;
pub use pin::Pin;
pub use route::{RouteSegment, RoutedNet, RoutingSolution, ViaInstance};
