//! Error types for design construction and IO.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing a design.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DesignError {
    /// The technology description is inconsistent.
    InvalidTechnology(String),
    /// A net references a pin that does not exist or belongs to another net.
    InvalidNet(String),
    /// A pin or obstacle shape lies outside the die or on a missing layer.
    InvalidGeometry(String),
    /// The textual design format could not be parsed.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::InvalidTechnology(msg) => write!(f, "invalid technology: {msg}"),
            DesignError::InvalidNet(msg) => write!(f, "invalid net: {msg}"),
            DesignError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            DesignError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for DesignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DesignError::InvalidNet("net n1 has no pins".into());
        assert_eq!(e.to_string(), "invalid net: net n1 has no pins");
        let p = DesignError::Parse {
            line: 3,
            message: "expected rect".into(),
        };
        assert!(p.to_string().contains("line 3"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DesignError>();
    }
}
