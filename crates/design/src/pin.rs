//! Pins: the terminals a router must connect.

use crate::{LayerId, NetId, PinId};
use tpl_geom::Rect;

/// A pin is a named set of metal shapes that belongs to exactly one net.
///
/// # Examples
///
/// ```
/// use tpl_design::{LayerId, NetId, Pin, PinId};
/// use tpl_geom::Rect;
/// let pin = Pin::new(PinId::new(0), "u1/a", NetId::new(0),
///                    vec![(LayerId::new(0), Rect::from_coords(0, 0, 10, 10))]);
/// assert_eq!(pin.bbox().unwrap().width(), 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pin {
    id: PinId,
    name: String,
    net: NetId,
    shapes: Vec<(LayerId, Rect)>,
}

impl Pin {
    /// Creates a pin from its shapes.
    pub fn new(
        id: PinId,
        name: impl Into<String>,
        net: NetId,
        shapes: Vec<(LayerId, Rect)>,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            net,
            shapes,
        }
    }

    /// The pin identifier.
    #[inline]
    pub fn id(&self) -> PinId {
        self.id
    }

    /// The pin name (instance/port style, purely informational).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The net this pin belongs to.
    #[inline]
    pub fn net(&self) -> NetId {
        self.net
    }

    /// The metal shapes making up the pin.
    #[inline]
    pub fn shapes(&self) -> &[(LayerId, Rect)] {
        &self.shapes
    }

    /// Bounding box over all shapes (ignoring layers); `None` for a pin with
    /// no shapes.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.shapes.iter().map(|(_, r)| *r);
        let first = it.next()?;
        Some(it.fold(first, |acc, r| acc.hull(&r)))
    }

    /// The lowest layer any shape of this pin touches.
    pub fn lowest_layer(&self) -> Option<LayerId> {
        self.shapes.iter().map(|(l, _)| *l).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pin() -> Pin {
        Pin::new(
            PinId::new(1),
            "u3/q",
            NetId::new(2),
            vec![
                (LayerId::new(0), Rect::from_coords(0, 0, 10, 10)),
                (LayerId::new(1), Rect::from_coords(40, 40, 60, 50)),
            ],
        )
    }

    #[test]
    fn accessors() {
        let p = pin();
        assert_eq!(p.id(), PinId::new(1));
        assert_eq!(p.name(), "u3/q");
        assert_eq!(p.net(), NetId::new(2));
        assert_eq!(p.shapes().len(), 2);
    }

    #[test]
    fn bbox_covers_all_shapes() {
        assert_eq!(pin().bbox(), Some(Rect::from_coords(0, 0, 60, 50)));
    }

    #[test]
    fn empty_pin_has_no_bbox() {
        let p = Pin::new(PinId::new(0), "x", NetId::new(0), vec![]);
        assert_eq!(p.bbox(), None);
        assert_eq!(p.lowest_layer(), None);
    }

    #[test]
    fn lowest_layer_is_minimum() {
        assert_eq!(pin().lowest_layer(), Some(LayerId::new(0)));
    }
}
