//! The top-level design container and its builder.

use crate::{DesignError, LayerId, Net, NetId, Obstacle, ObstacleId, Pin, PinId, Technology};
use tpl_geom::Rect;

/// A complete routing problem instance: technology, die area, pins, nets and
/// obstacles.
///
/// `Design` is immutable once built; construct it through [`DesignBuilder`].
#[derive(Clone, Debug)]
pub struct Design {
    name: String,
    tech: Technology,
    die: Rect,
    pins: Vec<Pin>,
    nets: Vec<Net>,
    obstacles: Vec<Obstacle>,
}

impl Design {
    /// The design name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The technology the design is routed in.
    #[inline]
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// The die (routing) area.
    #[inline]
    pub fn die(&self) -> Rect {
        self.die
    }

    /// All pins, indexed by [`PinId::index`].
    #[inline]
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// All nets, indexed by [`NetId::index`].
    #[inline]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All obstacles.
    #[inline]
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// Looks up a pin.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// Looks up a net.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The bounding box of a net's pins (`None` if the net has no shapes).
    pub fn net_bbox(&self, id: NetId) -> Option<Rect> {
        let mut acc: Option<Rect> = None;
        for pin in self.net(id).pins() {
            if let Some(b) = self.pin(*pin).bbox() {
                acc = Some(match acc {
                    Some(a) => a.hull(&b),
                    None => b,
                });
            }
        }
        acc
    }

    /// Summary statistics used by reports and benchmark tables.
    pub fn stats(&self) -> DesignStats {
        let multi_pin_nets = self.nets.iter().filter(|n| n.is_multi_pin()).count();
        let total_pins = self.pins.len();
        let max_pins_per_net = self.nets.iter().map(|n| n.pin_count()).max().unwrap_or(0);
        DesignStats {
            num_nets: self.nets.len(),
            num_pins: total_pins,
            num_obstacles: self.obstacles.len(),
            num_layers: self.tech.num_layers(),
            multi_pin_nets,
            max_pins_per_net,
            die: self.die,
        }
    }
}

/// Aggregate statistics of a design.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DesignStats {
    /// Number of nets.
    pub num_nets: usize,
    /// Number of pins over all nets.
    pub num_pins: usize,
    /// Number of obstacles.
    pub num_obstacles: usize,
    /// Number of routing layers.
    pub num_layers: usize,
    /// Number of nets with more than two pins.
    pub multi_pin_nets: usize,
    /// Largest pin count of any net.
    pub max_pins_per_net: usize,
    /// The die area.
    pub die: Rect,
}

/// Incremental builder for [`Design`].
///
/// # Examples
///
/// ```
/// use tpl_design::{DesignBuilder, Technology};
/// use tpl_geom::Rect;
/// let mut b = DesignBuilder::new("d", Technology::ispd_like(3), Rect::from_coords(0, 0, 400, 400));
/// let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
/// let p1 = b.add_pin_shape("b", 0, Rect::from_coords(100, 100, 110, 110));
/// let p2 = b.add_pin_shape("c", 0, Rect::from_coords(300, 40, 310, 50));
/// b.add_net("n0", vec![p0, p1, p2]);
/// let d = b.build().unwrap();
/// assert_eq!(d.stats().multi_pin_nets, 1);
/// ```
#[derive(Clone, Debug)]
pub struct DesignBuilder {
    name: String,
    tech: Technology,
    die: Rect,
    pins: Vec<Pin>,
    nets: Vec<Net>,
    obstacles: Vec<Obstacle>,
}

impl DesignBuilder {
    /// Starts a new design.
    pub fn new(name: impl Into<String>, tech: Technology, die: Rect) -> Self {
        Self {
            name: name.into(),
            tech,
            die,
            pins: Vec::new(),
            nets: Vec::new(),
            obstacles: Vec::new(),
        }
    }

    /// Adds a single-shape pin and returns its id.  The pin is not attached
    /// to a net until [`DesignBuilder::add_net`] references it.
    pub fn add_pin_shape(&mut self, name: impl Into<String>, layer: u32, rect: Rect) -> PinId {
        self.add_pin(name, vec![(LayerId::new(layer), rect)])
    }

    /// Adds a multi-shape pin and returns its id.
    pub fn add_pin(&mut self, name: impl Into<String>, shapes: Vec<(LayerId, Rect)>) -> PinId {
        let id = PinId::from(self.pins.len());
        // The owning net is patched in `add_net`.
        self.pins
            .push(Pin::new(id, name, NetId::new(u32::MAX), shapes));
        id
    }

    /// Adds a net over previously added pins and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>, pins: Vec<PinId>) -> NetId {
        let id = NetId::from(self.nets.len());
        for pin in &pins {
            if pin.index() < self.pins.len() {
                let p = &mut self.pins[pin.index()];
                *p = Pin::new(p.id(), p.name().to_owned(), id, p.shapes().to_vec());
            }
        }
        self.nets.push(Net::new(id, name, pins));
        id
    }

    /// Adds a colourable obstacle.
    pub fn add_obstacle(&mut self, layer: u32, rect: Rect) -> ObstacleId {
        let id = ObstacleId::from(self.obstacles.len());
        self.obstacles
            .push(Obstacle::new(id, LayerId::new(layer), rect));
        id
    }

    /// Adds a non-colourable obstacle (blocks routing only).
    pub fn add_blockage(&mut self, layer: u32, rect: Rect) -> ObstacleId {
        let id = ObstacleId::from(self.obstacles.len());
        self.obstacles
            .push(Obstacle::non_colorable(id, LayerId::new(layer), rect));
        id
    }

    /// Validates the accumulated data and produces the immutable [`Design`].
    ///
    /// # Errors
    ///
    /// * [`DesignError::InvalidNet`] if a net has fewer than two pins, refers
    ///   to an unknown pin, or shares a pin with another net.
    /// * [`DesignError::InvalidGeometry`] if a pin or obstacle shape lies on a
    ///   missing layer or completely outside the die.
    pub fn build(self) -> Result<Design, DesignError> {
        let DesignBuilder {
            name,
            tech,
            die,
            pins,
            nets,
            obstacles,
        } = self;

        let mut pin_owner: Vec<Option<NetId>> = vec![None; pins.len()];
        for net in &nets {
            if net.pin_count() < 2 {
                return Err(DesignError::InvalidNet(format!(
                    "net {} has fewer than two pins",
                    net.name()
                )));
            }
            for pin in net.pins() {
                let idx = pin.index();
                if idx >= pins.len() {
                    return Err(DesignError::InvalidNet(format!(
                        "net {} references unknown pin {pin}",
                        net.name()
                    )));
                }
                if let Some(prev) = pin_owner[idx] {
                    if prev != net.id() {
                        return Err(DesignError::InvalidNet(format!(
                            "pin {pin} is claimed by two nets"
                        )));
                    }
                }
                pin_owner[idx] = Some(net.id());
            }
        }

        for pin in &pins {
            for (layer, rect) in pin.shapes() {
                if layer.index() >= tech.num_layers() {
                    return Err(DesignError::InvalidGeometry(format!(
                        "pin {} uses missing layer {layer}",
                        pin.name()
                    )));
                }
                if !die.intersects(rect) {
                    return Err(DesignError::InvalidGeometry(format!(
                        "pin {} shape {rect} lies outside the die {die}",
                        pin.name()
                    )));
                }
            }
        }
        for obs in &obstacles {
            if obs.layer.index() >= tech.num_layers() {
                return Err(DesignError::InvalidGeometry(format!(
                    "obstacle {} uses missing layer {}",
                    obs.id, obs.layer
                )));
            }
        }

        Ok(Design {
            name,
            tech,
            die,
            pins,
            nets,
            obstacles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Technology;

    fn builder() -> DesignBuilder {
        DesignBuilder::new(
            "t",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 1000, 1000),
        )
    }

    #[test]
    fn build_assigns_pin_ownership() {
        let mut b = builder();
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(50, 50, 60, 60));
        let n = b.add_net("n0", vec![p0, p1]);
        let d = b.build().unwrap();
        assert_eq!(d.pin(p0).net(), n);
        assert_eq!(d.pin(p1).net(), n);
        assert_eq!(d.net(n).pins(), &[p0, p1]);
    }

    #[test]
    fn rejects_single_pin_nets() {
        let mut b = builder();
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        b.add_net("n0", vec![p0]);
        assert!(matches!(b.build(), Err(DesignError::InvalidNet(_))));
    }

    #[test]
    fn rejects_shared_pins() {
        let mut b = builder();
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(20, 20, 30, 30));
        b.add_net("n0", vec![p0, p1]);
        b.add_net("n1", vec![p0, p1]);
        assert!(matches!(b.build(), Err(DesignError::InvalidNet(_))));
    }

    #[test]
    fn rejects_unknown_pins_and_bad_layers() {
        let mut b = builder();
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        b.add_net("n0", vec![p0, PinId::new(99)]);
        assert!(matches!(b.build(), Err(DesignError::InvalidNet(_))));

        let mut b = builder();
        let p0 = b.add_pin_shape("a", 7, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(20, 20, 30, 30));
        b.add_net("n0", vec![p0, p1]);
        assert!(matches!(b.build(), Err(DesignError::InvalidGeometry(_))));
    }

    #[test]
    fn rejects_off_die_pins() {
        let mut b = builder();
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(2000, 2000, 2010, 2010));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(20, 20, 30, 30));
        b.add_net("n0", vec![p0, p1]);
        assert!(matches!(b.build(), Err(DesignError::InvalidGeometry(_))));
    }

    #[test]
    fn stats_counts_multi_pin_nets() {
        let mut b = builder();
        let p: Vec<_> = (0..5)
            .map(|i| {
                b.add_pin_shape(
                    format!("p{i}"),
                    0,
                    Rect::from_coords(i * 50, i * 40, i * 50 + 10, i * 40 + 10),
                )
            })
            .collect();
        b.add_net("two", vec![p[0], p[1]]);
        b.add_net("three", vec![p[2], p[3], p[4]]);
        b.add_obstacle(1, Rect::from_coords(100, 100, 200, 200));
        let d = b.build().unwrap();
        let s = d.stats();
        assert_eq!(s.num_nets, 2);
        assert_eq!(s.multi_pin_nets, 1);
        assert_eq!(s.max_pins_per_net, 3);
        assert_eq!(s.num_obstacles, 1);
        assert_eq!(s.num_layers, 3);
    }

    #[test]
    fn net_bbox_covers_all_pins() {
        let mut b = builder();
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(500, 700, 510, 710));
        let n = b.add_net("n0", vec![p0, p1]);
        let d = b.build().unwrap();
        assert_eq!(d.net_bbox(n), Some(Rect::from_coords(0, 0, 510, 710)));
    }
}
