//! Closed 1-D integer intervals.

use crate::Dbu;
use std::fmt;

/// A closed interval `[lo, hi]` on one axis, in database units.
///
/// Used for track spans, rectangle projections and stitch-candidate
/// computation.  An interval with `lo > hi` is considered empty.
///
/// # Examples
///
/// ```
/// use tpl_geom::Interval;
/// let a = Interval::new(0, 10);
/// let b = Interval::new(4, 20);
/// assert_eq!(a.intersection(&b), Interval::new(4, 10));
/// assert_eq!(a.gap_to(&b), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: Dbu,
    /// Upper bound (inclusive).
    pub hi: Dbu,
}

impl Interval {
    /// Creates an interval; the bounds are taken as given (not reordered).
    #[inline]
    pub const fn new(lo: Dbu, hi: Dbu) -> Self {
        Self { lo, hi }
    }

    /// An empty interval.
    #[inline]
    pub const fn empty() -> Self {
        Self { lo: 1, hi: 0 }
    }

    /// `true` when `lo > hi`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Length of the interval (`hi - lo`), 0 for a degenerate point, and 0
    /// for empty intervals.
    #[inline]
    pub fn length(&self) -> Dbu {
        if self.is_empty() {
            0
        } else {
            self.hi - self.lo
        }
    }

    /// `true` if `v` lies within the closed interval.
    #[inline]
    pub fn contains(&self, v: Dbu) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// `true` if the two intervals share at least one value.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo <= other.hi && other.lo <= self.hi
    }

    /// The intersection of two intervals (possibly empty).
    #[inline]
    pub fn intersection(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// The smallest interval covering both inputs.
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// The gap between two disjoint intervals, 0 if they touch or overlap.
    ///
    /// # Panics
    ///
    /// Panics if either interval is empty.
    #[inline]
    pub fn gap_to(&self, other: &Interval) -> Dbu {
        assert!(
            !self.is_empty() && !other.is_empty(),
            "gap_to on empty interval"
        );
        if self.overlaps(other) {
            0
        } else if self.hi < other.lo {
            other.lo - self.hi
        } else {
            self.lo - other.hi
        }
    }

    /// Returns the interval expanded by `amount` on both sides.
    #[inline]
    pub fn expanded(&self, amount: Dbu) -> Interval {
        Interval::new(self.lo - amount, self.hi + amount)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_interval_properties() {
        let e = Interval::empty();
        assert!(e.is_empty());
        assert_eq!(e.length(), 0);
        assert!(!e.overlaps(&Interval::new(0, 100)));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        let c = Interval::new(11, 20);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersection(&b), Interval::new(5, 10));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn hull_covers_both() {
        let a = Interval::new(0, 3);
        let b = Interval::new(10, 12);
        assert_eq!(a.hull(&b), Interval::new(0, 12));
        assert_eq!(Interval::empty().hull(&a), a);
        assert_eq!(a.hull(&Interval::empty()), a);
    }

    #[test]
    fn gap_between_disjoint_intervals() {
        let a = Interval::new(0, 3);
        let b = Interval::new(10, 12);
        assert_eq!(a.gap_to(&b), 7);
        assert_eq!(b.gap_to(&a), 7);
        assert_eq!(a.gap_to(&Interval::new(3, 5)), 0);
    }

    #[test]
    fn contains_endpoints() {
        let a = Interval::new(2, 4);
        assert!(a.contains(2));
        assert!(a.contains(4));
        assert!(!a.contains(5));
    }

    #[test]
    fn expanded_grows_both_sides() {
        assert_eq!(Interval::new(2, 4).expanded(3), Interval::new(-1, 7));
    }
}
