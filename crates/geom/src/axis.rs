//! Layer routing axes.

use std::fmt;

/// The preferred routing axis of a metal layer.
///
/// Detailed routing grids alternate between horizontal and vertical layers;
/// wrong-way routing (using the non-preferred axis) is allowed but penalised.
///
/// # Examples
///
/// ```
/// use tpl_geom::Axis;
/// assert_eq!(Axis::Horizontal.perpendicular(), Axis::Vertical);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Axis {
    /// Tracks run left-to-right; wires mostly move along `x`.
    Horizontal,
    /// Tracks run bottom-to-top; wires mostly move along `y`.
    Vertical,
}

impl Axis {
    /// Returns the other axis.
    #[inline]
    pub fn perpendicular(self) -> Axis {
        match self {
            Axis::Horizontal => Axis::Vertical,
            Axis::Vertical => Axis::Horizontal,
        }
    }

    /// `true` if this axis is horizontal.
    #[inline]
    pub fn is_horizontal(self) -> bool {
        matches!(self, Axis::Horizontal)
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Horizontal => f.write_str("H"),
            Axis::Vertical => f.write_str("V"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perpendicular_is_involutive() {
        assert_eq!(
            Axis::Horizontal.perpendicular().perpendicular(),
            Axis::Horizontal
        );
        assert_eq!(Axis::Vertical.perpendicular(), Axis::Horizontal);
    }

    #[test]
    fn display_letters() {
        assert_eq!(Axis::Horizontal.to_string(), "H");
        assert_eq!(Axis::Vertical.to_string(), "V");
    }
}
