//! 2-D integer points.

use crate::{Dbu, Dir};
use std::fmt;
use std::ops::{Add, Sub};

/// A point in database units on a single layer.
///
/// Points are ordered lexicographically (`x` first, then `y`), which gives the
/// deterministic tie-breaking the routers rely on.
///
/// # Examples
///
/// ```
/// use tpl_geom::Point;
/// let p = Point::new(3, 4);
/// let q = Point::new(1, 1);
/// assert_eq!(p.manhattan(&q), 5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point {
    /// Horizontal coordinate in database units.
    pub x: Dbu,
    /// Vertical coordinate in database units.
    pub y: Dbu,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: Dbu, y: Dbu) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0, 0);

    /// Manhattan (L1) distance to another point.
    ///
    /// # Examples
    ///
    /// ```
    /// use tpl_geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan(&Point::new(2, 3)), 5);
    /// ```
    #[inline]
    pub fn manhattan(&self, other: &Point) -> Dbu {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev (L∞) distance to another point.
    #[inline]
    pub fn chebyshev(&self, other: &Point) -> Dbu {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> i128 {
        crate::dist_sq(self.x - other.x, self.y - other.y)
    }

    /// Returns the point translated by `(dx, dy)`.
    #[inline]
    pub fn translated(&self, dx: Dbu, dy: Dbu) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Returns the neighbouring point one `step` away in planar direction
    /// `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is [`Dir::Up`] or [`Dir::Down`]; those directions move
    /// between layers, not within the plane.
    #[inline]
    pub fn stepped(&self, dir: Dir, step: Dbu) -> Point {
        match dir {
            Dir::East => self.translated(step, 0),
            Dir::West => self.translated(-step, 0),
            Dir::North => self.translated(0, step),
            Dir::South => self.translated(0, -step),
            Dir::Up | Dir::Down => panic!("stepped() requires a planar direction"),
        }
    }

    /// Componentwise minimum of two points.
    #[inline]
    pub fn componentwise_min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Componentwise maximum of two points.
    #[inline]
    pub fn componentwise_max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl Add for Point {
    type Output = Point;

    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;

    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl From<(Dbu, Dbu)> for Point {
    #[inline]
    fn from((x, y): (Dbu, Dbu)) -> Self {
        Point::new(x, y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(3, -7);
        let b = Point::new(-2, 9);
        assert_eq!(a.manhattan(&b), b.manhattan(&a));
        assert_eq!(a.manhattan(&b), 5 + 16);
    }

    #[test]
    fn chebyshev_distance() {
        let a = Point::new(0, 0);
        let b = Point::new(3, -8);
        assert_eq!(a.chebyshev(&b), 8);
    }

    #[test]
    fn stepped_moves_one_grid_in_each_planar_direction() {
        let p = Point::new(5, 5);
        assert_eq!(p.stepped(Dir::East, 2), Point::new(7, 5));
        assert_eq!(p.stepped(Dir::West, 2), Point::new(3, 5));
        assert_eq!(p.stepped(Dir::North, 2), Point::new(5, 7));
        assert_eq!(p.stepped(Dir::South, 2), Point::new(5, 3));
    }

    #[test]
    #[should_panic(expected = "planar direction")]
    fn stepped_panics_on_via_direction() {
        Point::new(0, 0).stepped(Dir::Up, 1);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Point::new(10, 20);
        let b = Point::new(-3, 4);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Point::new(1, 100) < Point::new(2, 0));
        assert!(Point::new(1, 1) < Point::new(1, 2));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point::new(1, 9);
        let b = Point::new(4, 2);
        assert_eq!(a.componentwise_min(&b), Point::new(1, 2));
        assert_eq!(a.componentwise_max(&b), Point::new(4, 9));
    }

    #[test]
    fn display_format() {
        assert_eq!(Point::new(1, -2).to_string(), "(1, -2)");
    }
}
