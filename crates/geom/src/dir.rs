//! Routing directions.

use crate::Axis;
use std::fmt;

/// The six routing directions used by the grid graph.
///
/// The four planar directions move within a metal layer; [`Dir::Up`] and
/// [`Dir::Down`] move between adjacent layers through a via.  The paper's
/// Algorithm 2 iterates over exactly this set (`{F,B,R,L,U,D}`).
///
/// # Examples
///
/// ```
/// use tpl_geom::Dir;
/// assert_eq!(Dir::East.opposite(), Dir::West);
/// assert!(Dir::Up.is_via());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// Towards increasing `x`.
    East,
    /// Towards decreasing `x`.
    West,
    /// Towards increasing `y`.
    North,
    /// Towards decreasing `y`.
    South,
    /// Towards the layer above (via).
    Up,
    /// Towards the layer below (via).
    Down,
}

impl Dir {
    /// All six directions, in deterministic expansion order.
    pub const ALL: [Dir; 6] = [
        Dir::East,
        Dir::West,
        Dir::North,
        Dir::South,
        Dir::Up,
        Dir::Down,
    ];

    /// The four planar directions only.
    pub const PLANAR: [Dir; 4] = [Dir::East, Dir::West, Dir::North, Dir::South];

    /// Returns the opposite direction.
    #[inline]
    pub fn opposite(self) -> Dir {
        match self {
            Dir::East => Dir::West,
            Dir::West => Dir::East,
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
        }
    }

    /// `true` for the two via directions.
    #[inline]
    pub fn is_via(self) -> bool {
        matches!(self, Dir::Up | Dir::Down)
    }

    /// `true` for the four in-plane directions.
    #[inline]
    pub fn is_planar(self) -> bool {
        !self.is_via()
    }

    /// The axis a planar direction runs along.
    ///
    /// Returns `None` for via directions.
    #[inline]
    pub fn axis(self) -> Option<Axis> {
        match self {
            Dir::East | Dir::West => Some(Axis::Horizontal),
            Dir::North | Dir::South => Some(Axis::Vertical),
            Dir::Up | Dir::Down => None,
        }
    }

    /// A small dense index (0..6) usable for lookup tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
            Dir::Up => 4,
            Dir::Down => 5,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::East => "E",
            Dir::West => "W",
            Dir::North => "N",
            Dir::South => "S",
            Dir::Up => "U",
            Dir::Down => "D",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn planar_and_via_partition_all() {
        let planar = Dir::ALL.iter().filter(|d| d.is_planar()).count();
        let via = Dir::ALL.iter().filter(|d| d.is_via()).count();
        assert_eq!(planar, 4);
        assert_eq!(via, 2);
    }

    #[test]
    fn axis_of_planar_directions() {
        assert_eq!(Dir::East.axis(), Some(Axis::Horizontal));
        assert_eq!(Dir::West.axis(), Some(Axis::Horizontal));
        assert_eq!(Dir::North.axis(), Some(Axis::Vertical));
        assert_eq!(Dir::South.axis(), Some(Axis::Vertical));
        assert_eq!(Dir::Up.axis(), None);
    }

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = [false; 6];
        for d in Dir::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn display_single_letter() {
        assert_eq!(Dir::North.to_string(), "N");
        assert_eq!(Dir::Down.to_string(), "D");
    }
}
