//! Integer Manhattan geometry primitives for the Mr.TPL reproduction.
//!
//! Every coordinate in the workspace is an integer number of database units
//! ([`Dbu`]).  The routing problem is rectilinear, so the crate only provides
//! axis-aligned primitives: [`Point`], [`Rect`], [`Segment`] and [`Interval`],
//! together with the direction/axis vocabulary ([`Dir`], [`Axis`]) shared by
//! the grid graph and the routers, and a simple uniform-bin spatial index
//! ([`BinIndex`]) used for conflict detection and color-cost queries.
//!
//! # Examples
//!
//! ```
//! use tpl_geom::{Point, Rect};
//!
//! let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
//! let b = Rect::new(Point::new(14, 0), Point::new(20, 10));
//! assert_eq!(a.spacing_to(&b), 4);
//! assert!(!a.intersects(&b));
//! ```

#![warn(missing_docs)]

mod axis;
mod dir;
mod index;
mod interval;
mod point;
mod rect;
mod segment;

pub use axis::Axis;
pub use dir::Dir;
pub use index::BinIndex;
pub use interval::Interval;
pub use point::Point;
pub use rect::Rect;
pub use segment::Segment;

/// Database unit: the integer coordinate type used across the workspace.
pub type Dbu = i64;

/// Squared Euclidean distance helper that never overflows for layout-scale
/// coordinates (|x| < 2^31).
///
/// # Examples
///
/// ```
/// assert_eq!(tpl_geom::dist_sq(3, 4), 25);
/// ```
#[inline]
pub fn dist_sq(dx: Dbu, dy: Dbu) -> i128 {
    (dx as i128) * (dx as i128) + (dy as i128) * (dy as i128)
}
