//! Orthogonal centre-line segments.

use crate::{Axis, Dbu, Point, Rect};
use std::fmt;

/// A horizontal or vertical centre-line segment between two grid points.
///
/// Routed wires are stored as segments plus a width; [`Segment::to_rect`]
/// expands the centre line into the physical metal shape.
///
/// # Examples
///
/// ```
/// use tpl_geom::{Point, Segment};
/// let s = Segment::new(Point::new(0, 0), Point::new(30, 0));
/// assert_eq!(s.length(), 30);
/// assert!(s.axis().unwrap().is_horizontal());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Segment {
    /// First endpoint (normalised to be `<=` the second).
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment, normalising endpoint order.
    ///
    /// # Panics
    ///
    /// Panics if the segment is neither horizontal nor vertical.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        assert!(
            a.x == b.x || a.y == b.y,
            "segments must be axis-aligned: {a} -> {b}"
        );
        if a <= b {
            Self { a, b }
        } else {
            Self { a: b, b: a }
        }
    }

    /// Manhattan length of the segment (0 for a degenerate point segment).
    #[inline]
    pub fn length(&self) -> Dbu {
        self.a.manhattan(&self.b)
    }

    /// The axis the segment runs along; `None` for a degenerate point.
    #[inline]
    pub fn axis(&self) -> Option<Axis> {
        if self.a == self.b {
            None
        } else if self.a.y == self.b.y {
            Some(Axis::Horizontal)
        } else {
            Some(Axis::Vertical)
        }
    }

    /// `true` when both endpoints coincide.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.a == self.b
    }

    /// Expands the centre line into a rectangle of the given total `width`.
    ///
    /// The width is applied symmetrically (half on each side); the ends are
    /// also extended by half the width so that collinear abutting segments
    /// merge into a continuous shape.
    #[inline]
    pub fn to_rect(&self, width: Dbu) -> Rect {
        let half = width / 2;
        Rect::new(
            self.a.translated(-half, -half),
            self.b.translated(half, half),
        )
    }

    /// The tight bounding box of the centre line (zero width).
    #[inline]
    pub fn bbox(&self) -> Rect {
        Rect::new(self.a, self.b)
    }

    /// `true` if the given point lies on the centre line.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.bbox().contains(p)
            && (self.a.x == self.b.x && p.x == self.a.x || self.a.y == self.b.y && p.y == self.a.y)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_endpoint_order() {
        let s = Segment::new(Point::new(10, 0), Point::new(0, 0));
        assert_eq!(s.a, Point::new(0, 0));
        assert_eq!(s.b, Point::new(10, 0));
    }

    #[test]
    #[should_panic(expected = "axis-aligned")]
    fn rejects_diagonal_segments() {
        Segment::new(Point::new(0, 0), Point::new(3, 4));
    }

    #[test]
    fn length_and_axis() {
        let h = Segment::new(Point::new(0, 5), Point::new(20, 5));
        let v = Segment::new(Point::new(5, 0), Point::new(5, 7));
        let p = Segment::new(Point::new(1, 1), Point::new(1, 1));
        assert_eq!(h.length(), 20);
        assert_eq!(h.axis(), Some(Axis::Horizontal));
        assert_eq!(v.length(), 7);
        assert_eq!(v.axis(), Some(Axis::Vertical));
        assert!(p.is_point());
        assert_eq!(p.axis(), None);
    }

    #[test]
    fn to_rect_expands_width_symmetrically() {
        let s = Segment::new(Point::new(0, 10), Point::new(30, 10));
        let r = s.to_rect(4);
        assert_eq!(r, Rect::from_coords(-2, 8, 32, 12));
    }

    #[test]
    fn contains_point_on_line_only() {
        let s = Segment::new(Point::new(0, 0), Point::new(10, 0));
        assert!(s.contains_point(&Point::new(5, 0)));
        assert!(!s.contains_point(&Point::new(5, 1)));
        assert!(!s.contains_point(&Point::new(11, 0)));
    }
}
