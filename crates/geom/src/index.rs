//! Uniform-bin spatial index.

use crate::{Dbu, Rect};

/// A uniform-grid spatial index over `(id, Rect)` pairs.
///
/// The index divides a bounding region into square bins of a configurable
/// size; each inserted rectangle is registered in every bin it touches.
/// Queries return candidate ids whose rectangles may intersect a search
/// window — the caller re-checks exact geometry.  This is the workhorse
/// behind colour-conflict detection and colour-cost lookups, where the
/// query window is the `Dcolor` halo around a wire.
///
/// # Examples
///
/// ```
/// use tpl_geom::{BinIndex, Rect};
/// let mut idx = BinIndex::new(Rect::from_coords(0, 0, 1000, 1000), 100);
/// idx.insert(7, Rect::from_coords(10, 10, 40, 20));
/// let hits = idx.query(&Rect::from_coords(0, 0, 50, 50));
/// assert_eq!(hits, vec![7]);
/// ```
#[derive(Clone, Debug)]
pub struct BinIndex {
    region: Rect,
    bin: Dbu,
    nx: usize,
    ny: usize,
    bins: Vec<Vec<(u64, Rect)>>,
    len: usize,
}

impl BinIndex {
    /// Creates an empty index covering `region` with bins of size `bin_size`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_size <= 0` or the region is degenerate in both axes
    /// and has zero extent.
    pub fn new(region: Rect, bin_size: Dbu) -> Self {
        assert!(bin_size > 0, "bin size must be positive");
        let nx = ((region.width() / bin_size) + 1).max(1) as usize;
        let ny = ((region.height() / bin_size) + 1).max(1) as usize;
        Self {
            region,
            bin: bin_size,
            nx,
            ny,
            bins: vec![Vec::new(); nx * ny],
            len: 0,
        }
    }

    /// Number of inserted rectangles.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no rectangle has been inserted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The region the index was built for.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    fn clamp_bin_range(&self, r: &Rect) -> (usize, usize, usize, usize) {
        let bx0 = ((r.lo.x - self.region.lo.x) / self.bin).max(0) as usize;
        let by0 = ((r.lo.y - self.region.lo.y) / self.bin).max(0) as usize;
        let bx1 = ((r.hi.x - self.region.lo.x) / self.bin).max(0) as usize;
        let by1 = ((r.hi.y - self.region.lo.y) / self.bin).max(0) as usize;
        (
            bx0.min(self.nx - 1),
            by0.min(self.ny - 1),
            bx1.min(self.nx - 1),
            by1.min(self.ny - 1),
        )
    }

    /// Inserts a rectangle under the given id.  Rectangles outside the index
    /// region are clamped to the boundary bins, so nothing is ever lost.
    pub fn insert(&mut self, id: u64, rect: Rect) {
        let (bx0, by0, bx1, by1) = self.clamp_bin_range(&rect);
        for by in by0..=by1 {
            for bx in bx0..=bx1 {
                self.bins[by * self.nx + bx].push((id, rect));
            }
        }
        self.len += 1;
    }

    /// Removes every entry with the given id and an identical rectangle.
    /// Returns `true` if at least one entry was removed.
    pub fn remove(&mut self, id: u64, rect: Rect) -> bool {
        let (bx0, by0, bx1, by1) = self.clamp_bin_range(&rect);
        let mut removed = false;
        for by in by0..=by1 {
            for bx in bx0..=bx1 {
                let bin = &mut self.bins[by * self.nx + bx];
                let before = bin.len();
                bin.retain(|(i, r)| !(*i == id && *r == rect));
                if bin.len() != before {
                    removed = true;
                }
            }
        }
        if removed {
            self.len = self.len.saturating_sub(1);
        }
        removed
    }

    /// Returns the sorted, deduplicated ids of all rectangles that intersect
    /// the query window.
    pub fn query(&self, window: &Rect) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .query_entries(window)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Returns `(id, rect)` pairs intersecting the window, deduplicated,
    /// in deterministic (id, rect) order.
    pub fn query_entries(&self, window: &Rect) -> Vec<(u64, Rect)> {
        let (bx0, by0, bx1, by1) = self.clamp_bin_range(window);
        let mut out = Vec::new();
        for by in by0..=by1 {
            for bx in bx0..=bx1 {
                for (id, r) in &self.bins[by * self.nx + bx] {
                    if r.intersects(window) {
                        out.push((*id, *r));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> BinIndex {
        BinIndex::new(Rect::from_coords(0, 0, 1000, 1000), 64)
    }

    #[test]
    fn empty_index_reports_no_hits() {
        let idx = idx();
        assert!(idx.is_empty());
        assert!(idx.query(&Rect::from_coords(0, 0, 1000, 1000)).is_empty());
    }

    #[test]
    fn insert_and_query_single_bin() {
        let mut idx = idx();
        idx.insert(1, Rect::from_coords(5, 5, 10, 10));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.query(&Rect::from_coords(0, 0, 20, 20)), vec![1]);
        assert!(idx.query(&Rect::from_coords(500, 500, 600, 600)).is_empty());
    }

    #[test]
    fn rect_spanning_multiple_bins_is_reported_once() {
        let mut idx = idx();
        idx.insert(9, Rect::from_coords(0, 0, 500, 10));
        let hits = idx.query(&Rect::from_coords(0, 0, 1000, 1000));
        assert_eq!(hits, vec![9]);
    }

    #[test]
    fn remove_deletes_all_copies() {
        let mut idx = idx();
        let r = Rect::from_coords(0, 0, 500, 500);
        idx.insert(3, r);
        assert!(idx.remove(3, r));
        assert!(idx.query(&Rect::from_coords(0, 0, 1000, 1000)).is_empty());
        assert!(!idx.remove(3, r));
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn out_of_region_rect_is_clamped_not_lost() {
        let mut idx = idx();
        idx.insert(4, Rect::from_coords(-100, -100, -50, -50));
        assert_eq!(idx.query(&Rect::from_coords(-200, -200, 0, 0)), vec![4]);
    }

    #[test]
    fn query_entries_returns_geometry() {
        let mut idx = idx();
        let r1 = Rect::from_coords(0, 0, 10, 10);
        let r2 = Rect::from_coords(100, 100, 110, 110);
        idx.insert(1, r1);
        idx.insert(2, r2);
        let entries = idx.query_entries(&Rect::from_coords(0, 0, 120, 120));
        assert_eq!(entries, vec![(1, r1), (2, r2)]);
    }

    #[test]
    fn touching_window_counts_as_hit() {
        let mut idx = idx();
        idx.insert(1, Rect::from_coords(10, 10, 20, 20));
        assert_eq!(idx.query(&Rect::from_coords(20, 20, 30, 30)), vec![1]);
    }
}
