//! Axis-aligned rectangles.

use crate::{Dbu, Interval, Point};
use std::fmt;

/// A closed axis-aligned rectangle given by its lower-left and upper-right
/// corners.
///
/// Rectangles are the unit of layout geometry: pin shapes, obstacles, routed
/// wire segments and route-guide regions are all `Rect`s on some layer.
/// Degenerate rectangles (zero width or height) are allowed and represent
/// centre-line wire segments before width expansion.
///
/// # Examples
///
/// ```
/// use tpl_geom::{Point, Rect};
/// let r = Rect::new(Point::new(0, 0), Point::new(10, 4));
/// assert_eq!(r.width(), 10);
/// assert_eq!(r.height(), 4);
/// assert_eq!(r.area(), 40);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from two corners, normalising so that
    /// `lo <= hi` componentwise.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            lo: a.componentwise_min(&b),
            hi: a.componentwise_max(&b),
        }
    }

    /// Creates a rectangle from raw coordinates `(x1, y1, x2, y2)`.
    #[inline]
    pub fn from_coords(x1: Dbu, y1: Dbu, x2: Dbu, y2: Dbu) -> Self {
        Rect::new(Point::new(x1, y1), Point::new(x2, y2))
    }

    /// A unit square centred semantics helper: rectangle covering a single
    /// point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect { lo: p, hi: p }
    }

    /// Width along `x`.
    #[inline]
    pub fn width(&self) -> Dbu {
        self.hi.x - self.lo.x
    }

    /// Height along `y`.
    #[inline]
    pub fn height(&self) -> Dbu {
        self.hi.y - self.lo.y
    }

    /// Area (`width * height`).
    #[inline]
    pub fn area(&self) -> i128 {
        (self.width() as i128) * (self.height() as i128)
    }

    /// Half-perimeter wirelength of the rectangle.
    #[inline]
    pub fn half_perimeter(&self) -> Dbu {
        self.width() + self.height()
    }

    /// The centre point, rounded towards the lower-left.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(self.lo.x + self.width() / 2, self.lo.y + self.height() / 2)
    }

    /// Projection onto the x axis.
    #[inline]
    pub fn x_span(&self) -> Interval {
        Interval::new(self.lo.x, self.hi.x)
    }

    /// Projection onto the y axis.
    #[inline]
    pub fn y_span(&self) -> Interval {
        Interval::new(self.lo.y, self.hi.y)
    }

    /// `true` if the point lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.x_span().contains(p.x) && self.y_span().contains(p.y)
    }

    /// `true` if `other` is entirely inside (or equal to) `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// `true` if the two closed rectangles share at least one point
    /// (touching boundaries count as intersecting).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x_span().overlaps(&other.x_span()) && self.y_span().overlaps(&other.y_span())
    }

    /// The overlapping region, if any.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            lo: self.lo.componentwise_max(&other.lo),
            hi: self.hi.componentwise_min(&other.hi),
        })
    }

    /// The smallest rectangle covering both inputs.
    #[inline]
    pub fn hull(&self, other: &Rect) -> Rect {
        Rect {
            lo: self.lo.componentwise_min(&other.lo),
            hi: self.hi.componentwise_max(&other.hi),
        }
    }

    /// Returns the rectangle expanded by `amount` on every side (bloat).
    /// Negative amounts shrink the rectangle.
    #[inline]
    pub fn expanded(&self, amount: Dbu) -> Rect {
        Rect {
            lo: self.lo.translated(-amount, -amount),
            hi: self.hi.translated(amount, amount),
        }
    }

    /// Rectilinear spacing between two rectangles.
    ///
    /// If the rectangles overlap in one axis, the spacing is the gap along the
    /// other axis; if they overlap in both, the spacing is 0.  When the
    /// rectangles are diagonal to each other the spacing is the Chebyshev
    /// corner distance (the larger of the two gaps), matching how contest
    /// checkers evaluate the colour-spacing rule on grid-aligned geometry.
    ///
    /// # Examples
    ///
    /// ```
    /// use tpl_geom::Rect;
    /// let a = Rect::from_coords(0, 0, 10, 10);
    /// let b = Rect::from_coords(13, 0, 20, 10);
    /// assert_eq!(a.spacing_to(&b), 3);
    /// ```
    #[inline]
    pub fn spacing_to(&self, other: &Rect) -> Dbu {
        let dx = self.x_span().gap_to(&other.x_span());
        let dy = self.y_span().gap_to(&other.y_span());
        dx.max(dy)
    }

    /// Squared Euclidean spacing between two rectangles (0 when they touch or
    /// overlap).  Used when the colour-spacing rule is a Euclidean distance.
    #[inline]
    pub fn euclidean_spacing_sq(&self, other: &Rect) -> i128 {
        let dx = self.x_span().gap_to(&other.x_span());
        let dy = self.y_span().gap_to(&other.y_span());
        crate::dist_sq(dx, dy)
    }

    /// Spacing from the rectangle to a point (0 if the point is inside).
    #[inline]
    pub fn spacing_to_point(&self, p: &Point) -> Dbu {
        self.spacing_to(&Rect::from_point(*p))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} - {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalises_corners() {
        let r = Rect::new(Point::new(10, 0), Point::new(0, 10));
        assert_eq!(r.lo, Point::new(0, 0));
        assert_eq!(r.hi, Point::new(10, 10));
    }

    #[test]
    fn dimensions_and_area() {
        let r = Rect::from_coords(2, 3, 12, 8);
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 5);
        assert_eq!(r.area(), 50);
        assert_eq!(r.half_perimeter(), 15);
        assert_eq!(r.center(), Point::new(7, 5));
    }

    #[test]
    fn containment() {
        let r = Rect::from_coords(0, 0, 10, 10);
        assert!(r.contains(&Point::new(0, 0)));
        assert!(r.contains(&Point::new(10, 10)));
        assert!(!r.contains(&Point::new(11, 5)));
        assert!(r.contains_rect(&Rect::from_coords(2, 2, 8, 8)));
        assert!(!r.contains_rect(&Rect::from_coords(2, 2, 11, 8)));
    }

    #[test]
    fn intersection_of_overlapping_rects() {
        let a = Rect::from_coords(0, 0, 10, 10);
        let b = Rect::from_coords(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), Some(Rect::from_coords(5, 5, 10, 10)));
        let c = Rect::from_coords(11, 11, 20, 20);
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn touching_rects_intersect_with_zero_area() {
        let a = Rect::from_coords(0, 0, 10, 10);
        let b = Rect::from_coords(10, 0, 20, 10);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).unwrap().area(), 0);
        assert_eq!(a.spacing_to(&b), 0);
    }

    #[test]
    fn spacing_in_one_axis() {
        let a = Rect::from_coords(0, 0, 10, 10);
        let b = Rect::from_coords(14, 2, 20, 8);
        assert_eq!(a.spacing_to(&b), 4);
        let c = Rect::from_coords(0, 17, 10, 20);
        assert_eq!(a.spacing_to(&c), 7);
    }

    #[test]
    fn diagonal_spacing_uses_corner_distance() {
        let a = Rect::from_coords(0, 0, 10, 10);
        let b = Rect::from_coords(13, 14, 20, 20);
        assert_eq!(a.spacing_to(&b), 4);
        assert_eq!(a.euclidean_spacing_sq(&b), 9 + 16);
    }

    #[test]
    fn expanded_bloats_all_sides() {
        let r = Rect::from_coords(5, 5, 10, 10).expanded(2);
        assert_eq!(r, Rect::from_coords(3, 3, 12, 12));
    }

    #[test]
    fn hull_covers_both() {
        let a = Rect::from_coords(0, 0, 1, 1);
        let b = Rect::from_coords(10, -5, 12, 0);
        assert_eq!(a.hull(&b), Rect::from_coords(0, -5, 12, 1));
    }
}
