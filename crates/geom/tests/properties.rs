//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use tpl_geom::{BinIndex, Interval, Point, Rect, Segment};

fn arb_point() -> impl Strategy<Value = Point> {
    (-10_000i64..10_000, -10_000i64..10_000).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a, b))
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (-10_000i64..10_000, 0i64..5_000).prop_map(|(lo, len)| Interval::new(lo, lo + len))
}

proptest! {
    #[test]
    fn manhattan_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.manhattan(&c) <= a.manhattan(&b) + b.manhattan(&c));
    }

    #[test]
    fn manhattan_dominates_chebyshev(a in arb_point(), b in arb_point()) {
        prop_assert!(a.manhattan(&b) >= a.chebyshev(&b));
        prop_assert!(a.manhattan(&b) <= 2 * a.chebyshev(&b));
    }

    #[test]
    fn rect_normalisation_holds(r in arb_rect()) {
        prop_assert!(r.lo.x <= r.hi.x);
        prop_assert!(r.lo.y <= r.hi.y);
        prop_assert!(r.area() >= 0);
    }

    #[test]
    fn rect_intersection_is_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert_eq!(a.spacing_to(&b), 0);
        } else {
            prop_assert!(a.spacing_to(&b) > 0);
        }
    }

    #[test]
    fn rect_hull_contains_both(a in arb_rect(), b in arb_rect()) {
        let h = a.hull(&b);
        prop_assert!(h.contains_rect(&a));
        prop_assert!(h.contains_rect(&b));
    }

    #[test]
    fn spacing_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.spacing_to(&b), b.spacing_to(&a));
        prop_assert_eq!(a.euclidean_spacing_sq(&b), b.euclidean_spacing_sq(&a));
    }

    #[test]
    fn expanded_rects_touch_when_spacing_small(a in arb_rect(), b in arb_rect(), halo in 1i64..200) {
        // The fundamental query used for conflict detection: bloating one rect
        // by `halo` finds exactly the rects with spacing <= halo.
        let bloated = a.expanded(halo);
        let within = a.spacing_to(&b) <= halo;
        prop_assert_eq!(bloated.intersects(&b), within);
    }

    #[test]
    fn interval_intersection_commutes(a in arb_interval(), b in arb_interval()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn interval_gap_zero_iff_overlap_or_touch(a in arb_interval(), b in arb_interval()) {
        let gap = a.gap_to(&b);
        if a.overlaps(&b) {
            prop_assert_eq!(gap, 0);
        } else {
            prop_assert!(gap >= 0);
        }
    }

    #[test]
    fn segment_rect_expansion_contains_centerline(p in arb_point(), len in 0i64..500, width in 0i64..20, horizontal in any::<bool>()) {
        let q = if horizontal { p.translated(len, 0) } else { p.translated(0, len) };
        let s = Segment::new(p, q);
        let r = s.to_rect(width * 2);
        prop_assert!(r.contains(&s.a));
        prop_assert!(r.contains(&s.b));
        prop_assert!(r.contains_rect(&s.bbox()));
    }

    #[test]
    fn bin_index_query_matches_linear_scan(
        rects in prop::collection::vec(arb_rect(), 1..40),
        window in arb_rect(),
    ) {
        let region = Rect::from_coords(-10_000, -10_000, 10_000, 10_000);
        let mut idx = BinIndex::new(region, 512);
        for (i, r) in rects.iter().enumerate() {
            idx.insert(i as u64, *r);
        }
        let mut expected: Vec<u64> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, _)| i as u64)
            .collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(idx.query(&window), expected);
    }

    #[test]
    fn bin_index_remove_is_exact(rects in prop::collection::vec(arb_rect(), 1..20)) {
        let region = Rect::from_coords(-10_000, -10_000, 10_000, 10_000);
        let mut idx = BinIndex::new(region, 256);
        for (i, r) in rects.iter().enumerate() {
            idx.insert(i as u64, *r);
        }
        // Remove every other entry and confirm the survivors are intact.
        for (i, r) in rects.iter().enumerate().step_by(2) {
            prop_assert!(idx.remove(i as u64, *r));
        }
        let all = idx.query(&region);
        for (i, _) in rects.iter().enumerate() {
            let should_exist = i % 2 == 1;
            prop_assert_eq!(all.contains(&(i as u64)), should_exist);
        }
    }
}
