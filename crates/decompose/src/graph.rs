//! Conflict-graph construction.

use crate::FeatureNode;
use tpl_design::Design;
use tpl_geom::BinIndex;

/// The TPL conflict graph: one vertex per feature, one edge per pair of
/// different-net features on the same layer with spacing below `Dcolor`.
#[derive(Clone, Debug)]
pub struct ConflictGraph {
    adjacency: Vec<Vec<usize>>,
    num_edges: usize,
}

impl ConflictGraph {
    /// Builds the conflict graph of a feature set.
    pub fn build(design: &Design, nodes: &[FeatureNode]) -> Self {
        let dcolor = design.tech().dcolor();
        let num_layers = design.tech().num_layers();
        let mut per_layer: Vec<BinIndex> = (0..num_layers)
            .map(|_| BinIndex::new(design.die(), (4 * dcolor).max(64)))
            .collect();
        for (i, n) in nodes.iter().enumerate() {
            per_layer[n.layer.index()].insert(i as u64, n.rect);
        }

        let mut adjacency = vec![Vec::new(); nodes.len()];
        let mut num_edges = 0;
        for (i, n) in nodes.iter().enumerate() {
            let window = n.rect.expanded(dcolor - 1);
            for j in per_layer[n.layer.index()].query(&window) {
                let j = j as usize;
                if j <= i {
                    continue;
                }
                let m = &nodes[j];
                if m.net == n.net {
                    continue;
                }
                if n.rect.spacing_to(&m.rect) < dcolor {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                    num_edges += 1;
                }
            }
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
            adj.dedup();
        }
        Self {
            adjacency,
            num_edges,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The neighbours of a vertex.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// The degree of a vertex.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_color::FeatureKind;
    use tpl_design::{DesignBuilder, LayerId, NetId, Technology};
    use tpl_geom::Rect;

    fn design() -> Design {
        let mut b = DesignBuilder::new(
            "g",
            Technology::ispd_like(2),
            Rect::from_coords(0, 0, 1000, 1000),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(900, 900, 910, 910));
        b.add_net("n", vec![p0, p1]);
        b.build().unwrap()
    }

    fn wire(net: u32, layer: u32, rect: Rect) -> FeatureNode {
        FeatureNode {
            net: NetId::new(net),
            layer: LayerId::new(layer),
            rect,
            kind: FeatureKind::Wire,
        }
    }

    #[test]
    fn close_different_net_features_are_adjacent() {
        let d = design();
        let nodes = vec![
            wire(0, 0, Rect::from_coords(0, 0, 200, 8)),
            wire(1, 0, Rect::from_coords(0, 20, 200, 28)),
            wire(2, 0, Rect::from_coords(0, 100, 200, 108)),
            wire(3, 1, Rect::from_coords(0, 20, 200, 28)),
        ];
        let g = ConflictGraph::build(&d, &nodes);
        assert_eq!(g.num_nodes(), 4);
        // Nodes 0 and 1 are 12 apart on the same layer: adjacent.
        assert_eq!(g.neighbors(0), &[1]);
        // Node 2 is 72 away from node 1: not adjacent.
        assert!(g.neighbors(2).is_empty());
        // Node 3 is on another layer: not adjacent to anyone.
        assert!(g.neighbors(3).is_empty());
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn same_net_features_are_never_adjacent() {
        let d = design();
        let nodes = vec![
            wire(0, 0, Rect::from_coords(0, 0, 200, 8)),
            wire(0, 0, Rect::from_coords(0, 20, 200, 28)),
        ];
        let g = ConflictGraph::build(&d, &nodes);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn four_packed_wires_form_a_clique_of_pressure() {
        let d = design();
        // Four parallel wires on adjacent tracks: with dcolor = 45 every pair
        // within two tracks conflicts, so vertex 1 has degree 3.
        let nodes: Vec<FeatureNode> = (0..4)
            .map(|i| {
                wire(
                    i,
                    0,
                    Rect::from_coords(0, 20 * i as i64, 400, 20 * i as i64 + 8),
                )
            })
            .collect();
        let g = ConflictGraph::build(&d, &nodes);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(0), 2);
    }
}
