//! Graph simplification and 3-colouring.

use crate::{ConflictGraph, DecomposeConfig, FeatureNode};
use std::collections::HashMap;
use tpl_color::Mask;

/// Colours the conflict graph: peel low-degree vertices, colour the residual
/// cores (exactly for small components, greedily for large ones), then
/// re-insert the peeled vertices in reverse order.
///
/// Returns the per-node mask assignment and the number of residual
/// components.
pub fn color_graph(
    graph: &ConflictGraph,
    nodes: &[FeatureNode],
    config: &DecomposeConfig,
) -> (Vec<Option<Mask>>, usize) {
    let n = graph.num_nodes();
    let mut masks: Vec<Option<Mask>> = vec![None; n];
    if n == 0 {
        return (masks, 0);
    }

    // Same-net touching siblings (for stitch-aware tie-breaking).
    let siblings = sibling_lists(nodes);

    // 1. Peel vertices with active degree < 3.
    let mut active = vec![true; n];
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let mut stack: Vec<usize> = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if active[v] && degree[v] < 3 {
                active[v] = false;
                stack.push(v);
                for &u in graph.neighbors(v) {
                    if active[u] {
                        degree[u] = degree[u].saturating_sub(1);
                    }
                }
                changed = true;
            }
        }
    }

    // 2. Connected components of the residual graph.
    let mut component: Vec<Option<usize>> = vec![None; n];
    let mut components: Vec<Vec<usize>> = Vec::new();
    for v in 0..n {
        if !active[v] || component[v].is_some() {
            continue;
        }
        let id = components.len();
        let mut queue = vec![v];
        let mut members = Vec::new();
        component[v] = Some(id);
        while let Some(u) = queue.pop() {
            members.push(u);
            for &w in graph.neighbors(u) {
                if active[w] && component[w].is_none() {
                    component[w] = Some(id);
                    queue.push(w);
                }
            }
        }
        components.push(members);
    }

    // 3. Colour each residual component.
    for members in &components {
        if members.len() <= config.exact_component_limit {
            color_component_exact(graph, members, &mut masks, config.max_backtrack_steps);
        } else {
            color_component_greedy(graph, members, &siblings, &mut masks);
        }
    }

    // 4. Re-insert peeled vertices in reverse order.
    for &v in stack.iter().rev() {
        masks[v] = Some(pick_mask(graph, &siblings, &masks, v));
    }

    (masks, components.len())
}

/// Same-net touching chunks, used to prefer stitch-free colours.
fn sibling_lists(nodes: &[FeatureNode]) -> Vec<Vec<usize>> {
    let mut by_net: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        by_net
            .entry((node.net.0, node.layer.0))
            .or_default()
            .push(i);
    }
    let mut siblings = vec![Vec::new(); nodes.len()];
    for members in by_net.values() {
        for (a_idx, &a) in members.iter().enumerate() {
            for &b in &members[a_idx + 1..] {
                if nodes[a].rect.intersects(&nodes[b].rect) {
                    siblings[a].push(b);
                    siblings[b].push(a);
                }
            }
        }
    }
    siblings
}

/// The greedy mask choice for one vertex: fewest conflicts with coloured
/// conflict-neighbours, then fewest stitches with coloured siblings, then the
/// lowest mask index.
fn pick_mask(
    graph: &ConflictGraph,
    siblings: &[Vec<usize>],
    masks: &[Option<Mask>],
    v: usize,
) -> Mask {
    let mut conflict_count = [0usize; 3];
    for &u in graph.neighbors(v) {
        if let Some(m) = masks[u] {
            conflict_count[m.index()] += 1;
        }
    }
    let mut stitch_count = [0usize; 3];
    for &s in &siblings[v] {
        if let Some(m) = masks[s] {
            for c in Mask::ALL {
                if c != m {
                    stitch_count[c.index()] += 1;
                }
            }
        }
    }
    Mask::ALL
        .into_iter()
        .min_by_key(|m| {
            (
                conflict_count[m.index()],
                stitch_count[m.index()],
                m.index(),
            )
        })
        .expect("three masks")
}

/// Greedy colouring of one component, highest degree first.
fn color_component_greedy(
    graph: &ConflictGraph,
    members: &[usize],
    siblings: &[Vec<usize>],
    masks: &mut [Option<Mask>],
) {
    let mut order: Vec<usize> = members.to_vec();
    order.sort_by_key(|v| (std::cmp::Reverse(graph.degree(*v)), *v));
    for v in order {
        masks[v] = Some(pick_mask(graph, siblings, masks, v));
    }
}

/// Exact backtracking colouring of a small component, minimising the number
/// of same-mask adjacent pairs inside the component.
fn color_component_exact(
    graph: &ConflictGraph,
    members: &[usize],
    masks: &mut [Option<Mask>],
    max_steps: usize,
) {
    let index_of: HashMap<usize, usize> =
        members.iter().enumerate().map(|(i, v)| (*v, i)).collect();
    let k = members.len();
    let mut best: Vec<usize> = vec![0; k];
    let mut best_cost = usize::MAX;
    let mut current: Vec<usize> = vec![0; k];
    let mut steps = 0usize;

    fn conflicts_of(
        graph: &ConflictGraph,
        members: &[usize],
        index_of: &HashMap<usize, usize>,
        current: &[usize],
        upto: usize,
        candidate: usize,
    ) -> usize {
        let v = members[upto];
        let mut cost = 0;
        for &u in graph.neighbors(v) {
            if let Some(&ui) = index_of.get(&u) {
                if ui < upto && current[ui] == candidate {
                    cost += 1;
                }
            }
        }
        cost
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        graph: &ConflictGraph,
        members: &[usize],
        index_of: &HashMap<usize, usize>,
        current: &mut Vec<usize>,
        depth: usize,
        cost_so_far: usize,
        best: &mut Vec<usize>,
        best_cost: &mut usize,
        steps: &mut usize,
        max_steps: usize,
    ) {
        if *steps > max_steps || cost_so_far >= *best_cost {
            return;
        }
        *steps += 1;
        if depth == members.len() {
            *best_cost = cost_so_far;
            best.copy_from_slice(current);
            return;
        }
        for mask in 0..3 {
            let extra = conflicts_of(graph, members, index_of, current, depth, mask);
            current[depth] = mask;
            recurse(
                graph,
                members,
                index_of,
                current,
                depth + 1,
                cost_so_far + extra,
                best,
                best_cost,
                steps,
                max_steps,
            );
        }
    }

    recurse(
        graph,
        members,
        &index_of,
        &mut current,
        0,
        0,
        &mut best,
        &mut best_cost,
        &mut steps,
        max_steps,
    );
    for (i, &v) in members.iter().enumerate() {
        masks[v] = Some(Mask::from_index(best[i]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_color::FeatureKind;
    use tpl_design::{DesignBuilder, LayerId, NetId, Technology};
    use tpl_geom::Rect;

    fn design() -> tpl_design::Design {
        let mut b = DesignBuilder::new(
            "c",
            Technology::ispd_like(2),
            Rect::from_coords(0, 0, 1000, 1000),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(900, 900, 910, 910));
        b.add_net("n", vec![p0, p1]);
        b.build().unwrap()
    }

    fn wire(net: u32, rect: Rect) -> FeatureNode {
        FeatureNode {
            net: NetId::new(net),
            layer: LayerId::new(0),
            rect,
            kind: FeatureKind::Wire,
        }
    }

    fn count_conflicts(graph: &ConflictGraph, masks: &[Option<Mask>]) -> usize {
        let mut c = 0;
        for v in 0..graph.num_nodes() {
            for &u in graph.neighbors(v) {
                if u > v && masks[u].is_some() && masks[u] == masks[v] {
                    c += 1;
                }
            }
        }
        c
    }

    #[test]
    fn three_mutually_conflicting_wires_get_three_masks() {
        let d = design();
        let nodes = vec![
            wire(0, Rect::from_coords(0, 0, 400, 8)),
            wire(1, Rect::from_coords(0, 20, 400, 28)),
            wire(2, Rect::from_coords(0, 40, 400, 48)),
        ];
        let graph = ConflictGraph::build(&d, &nodes);
        let (masks, _) = color_graph(&graph, &nodes, &DecomposeConfig::default());
        assert!(masks.iter().all(|m| m.is_some()));
        assert_eq!(count_conflicts(&graph, &masks), 0);
        let unique: std::collections::HashSet<_> = masks.iter().flatten().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn four_packed_wires_cannot_be_fully_legalised() {
        let d = design();
        // Tracks 0..4 of the same layer, all pairwise within dcolor except
        // the outermost pair: a W4 structure needing 4 colours locally is not
        // present, but the K4 formed by tracks 0-3 with a fifth crossing wire
        // is; simplest guaranteed-infeasible case: 4 wires pairwise within
        // dcolor (tracks 0,1,2 plus one wire overlapping all three spans).
        let nodes = vec![
            wire(0, Rect::from_coords(0, 0, 400, 8)),
            wire(1, Rect::from_coords(0, 20, 400, 28)),
            wire(2, Rect::from_coords(0, 40, 400, 48)),
            // A wrong-way wire crossing right next to the three above.
            wire(3, Rect::from_coords(200, 0, 208, 48)),
        ];
        let graph = ConflictGraph::build(&d, &nodes);
        // Vertex 3 conflicts with all of 0, 1, 2 -> K4.
        assert_eq!(graph.degree(3), 3);
        let (masks, _) = color_graph(&graph, &nodes, &DecomposeConfig::default());
        assert!(masks.iter().all(|m| m.is_some()));
        // A K4 cannot be 3-coloured: exactly one conflict remains.
        assert_eq!(count_conflicts(&graph, &masks), 1);
    }

    #[test]
    fn exact_and_greedy_agree_on_easy_components() {
        let d = design();
        let nodes: Vec<FeatureNode> = (0..6)
            .map(|i| {
                wire(
                    i,
                    Rect::from_coords(0, 20 * i as i64, 400, 20 * i as i64 + 8),
                )
            })
            .collect();
        let graph = ConflictGraph::build(&d, &nodes);
        let exact = color_graph(
            &graph,
            &nodes,
            &DecomposeConfig {
                exact_component_limit: 20,
                ..DecomposeConfig::default()
            },
        );
        let greedy = color_graph(
            &graph,
            &nodes,
            &DecomposeConfig {
                exact_component_limit: 0,
                ..DecomposeConfig::default()
            },
        );
        assert_eq!(count_conflicts(&graph, &exact.0), 0);
        assert_eq!(count_conflicts(&graph, &greedy.0), 0);
    }

    #[test]
    fn sibling_chunks_prefer_the_same_mask() {
        let d = design();
        // Two touching chunks of the same net with no conflicts at all: they
        // must receive the same mask (no gratuitous stitch).
        let nodes = vec![
            wire(0, Rect::from_coords(0, 0, 100, 8)),
            wire(0, Rect::from_coords(100, 0, 200, 8)),
        ];
        let graph = ConflictGraph::build(&d, &nodes);
        let (masks, _) = color_graph(&graph, &nodes, &DecomposeConfig::default());
        assert_eq!(masks[0], masks[1]);
    }
}
