//! Feature extraction and stitch-candidate generation.

use tpl_color::FeatureKind;
use tpl_design::{Design, LayerId, NetId, RoutingSolution};
use tpl_geom::{Dbu, Rect};

/// One vertex of the conflict graph: a wire chunk or a pin shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeatureNode {
    /// The owning net.
    pub net: NetId,
    /// The layer of the feature.
    pub layer: LayerId,
    /// The geometry of the feature.
    pub rect: Rect,
    /// Wire chunk or pin.
    pub kind: FeatureKind,
}

/// Extracts conflict-graph vertices from a routed layout.
///
/// Wire segments are cut into chunks of at most `chunk_pitches` layer pitches
/// along their long axis; each chunk boundary is a stitch candidate (two
/// adjacent chunks of the same wire may end up on different masks, which the
/// evaluator then counts as a stitch).  Pin shapes are kept whole.
pub fn extract_features(
    design: &Design,
    solution: &RoutingSolution,
    chunk_pitches: i64,
) -> Vec<FeatureNode> {
    let mut nodes = Vec::new();
    let pitch = design.tech().layers()[0].pitch.max(1);
    let chunk_len: Dbu = (chunk_pitches.max(1)) * pitch;

    for (net_id, routed) in solution.iter() {
        for seg in &routed.segments {
            let rect = seg.rect();
            let horizontal = rect.width() >= rect.height();
            let length = if horizontal {
                rect.width()
            } else {
                rect.height()
            };
            let chunks = ((length + chunk_len - 1) / chunk_len).max(1);
            for k in 0..chunks {
                let lo = k * chunk_len;
                let hi = ((k + 1) * chunk_len).min(length);
                let chunk_rect = if horizontal {
                    Rect::from_coords(rect.lo.x + lo, rect.lo.y, rect.lo.x + hi, rect.hi.y)
                } else {
                    Rect::from_coords(rect.lo.x, rect.lo.y + lo, rect.hi.x, rect.lo.y + hi)
                };
                nodes.push(FeatureNode {
                    net: net_id,
                    layer: seg.layer,
                    rect: chunk_rect,
                    kind: FeatureKind::Wire,
                });
            }
        }
    }
    for pin in design.pins() {
        for (layer, rect) in pin.shapes() {
            nodes.push(FeatureNode {
                net: pin.net(),
                layer: *layer,
                rect: *rect,
                kind: FeatureKind::Pin,
            });
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_design::{DesignBuilder, RouteSegment, RoutedNet, Technology};
    use tpl_geom::{Point, Segment};

    fn routed_design() -> (Design, RoutingSolution) {
        let mut b = DesignBuilder::new(
            "f",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 1000, 1000),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(500, 0, 510, 10));
        let net = b.add_net("n0", vec![p0, p1]);
        let d = b.build().unwrap();
        let mut sol = RoutingSolution::new(1);
        let mut rn = RoutedNet::new();
        rn.segments.push(RouteSegment::new(
            tpl_design::LayerId::new(1),
            Segment::new(Point::new(5, 5), Point::new(505, 5)),
            8,
        ));
        sol.set(net, rn);
        (d, sol)
    }

    #[test]
    fn long_wires_are_chunked_and_chunks_cover_the_wire() {
        let (d, sol) = routed_design();
        let nodes = extract_features(&d, &sol, 6);
        let wire_chunks: Vec<_> = nodes
            .iter()
            .filter(|n| n.kind == FeatureKind::Wire)
            .collect();
        // 500 dbu of wire cut into 120-dbu chunks -> 5 chunks.
        assert_eq!(wire_chunks.len(), 5);
        // Chunks tile the full wire without gaps: consecutive chunks touch.
        let full = wire_chunks
            .iter()
            .map(|n| n.rect)
            .reduce(|a, b| a.hull(&b))
            .unwrap();
        assert_eq!(full, Rect::from_coords(1, 1, 509, 9));
        for w in wire_chunks.windows(2) {
            assert!(w[0].rect.intersects(&w[1].rect));
        }
        // Pins appear as pin features.
        assert_eq!(
            nodes.iter().filter(|n| n.kind == FeatureKind::Pin).count(),
            2
        );
    }

    #[test]
    fn huge_chunk_length_keeps_wires_whole() {
        let (d, sol) = routed_design();
        let nodes = extract_features(&d, &sol, 1_000);
        assert_eq!(
            nodes.iter().filter(|n| n.kind == FeatureKind::Wire).count(),
            1
        );
    }
}
