//! OpenMPL-like triple-patterning layout decomposition baseline.
//!
//! The layout-decomposition flow the paper compares against in Table III
//! colours an *already routed* layout after the fact:
//!
//! 1. **Feature extraction** — routed wires are cut into stitch-candidate
//!    chunks, pins are kept whole (the `features` module).
//! 2. **Conflict-graph construction** — features of different nets on the
//!    same layer closer than `Dcolor` become adjacent (the `graph` module).
//! 3. **Graph simplification** — vertices with fewer than three neighbours
//!    are peeled off (they can always be coloured last) and the residual
//!    graph splits into independent components.
//! 4. **Colouring** — small cores are coloured exactly by backtracking, large
//!    ones greedily; peeled vertices are re-inserted in reverse order
//!    (the `coloring` module).
//!
//! Because the wire geometry is fixed before any colour is known, dense
//! regions routinely contain structures that no 3-colouring can legalise;
//! those show up as the large conflict counts of the OpenMPL column in
//! Table III.
//!
//! # Examples
//!
//! ```
//! use tpl_decompose::{DecomposeConfig, Decomposer};
//! use tpl_drcu::{DrCuConfig, DrCuRouter};
//! use tpl_global::{GlobalConfig, GlobalRouter};
//! use tpl_ispd::CaseParams;
//!
//! let design = CaseParams::ispd19_like(1).scaled(0.25).generate();
//! let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
//! let routed = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);
//! let colored = Decomposer::new(DecomposeConfig::default()).decompose(&design, &routed.solution);
//! assert!(colored.stats.uncolored_features == 0);
//! ```

#![warn(missing_docs)]

mod coloring;
mod features;
mod graph;

pub use coloring::color_graph;
pub use features::{extract_features, FeatureNode};
pub use graph::ConflictGraph;

use std::time::Instant;
use tpl_color::{ColoredLayout, Feature, Mask};
use tpl_design::{Design, RoutingSolution};

/// Configuration of the decomposer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecomposeConfig {
    /// Length (in layer pitches) of a stitch-candidate wire chunk.
    pub chunk_pitches: i64,
    /// Components with at most this many vertices are coloured exactly by
    /// backtracking; larger ones greedily.
    pub exact_component_limit: usize,
    /// Upper bound on backtracking steps per component (safety valve).
    pub max_backtrack_steps: usize,
}

impl Default for DecomposeConfig {
    fn default() -> Self {
        Self {
            chunk_pitches: 6,
            exact_component_limit: 14,
            max_backtrack_steps: 200_000,
        }
    }
}

/// Statistics of a decomposition run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DecomposeStats {
    /// Colour conflicts in the coloured layout (routing-induced pairs).
    pub conflicts: usize,
    /// Stitches in the coloured layout.
    pub stitches: usize,
    /// Number of features (graph vertices).
    pub features: usize,
    /// Number of conflict-graph edges.
    pub edges: usize,
    /// Number of connected components after simplification.
    pub components: usize,
    /// Features that never received a mask (should be zero).
    pub uncolored_features: usize,
    /// Wall-clock decomposition time in seconds.
    pub runtime_seconds: f64,
}

/// The outcome of a decomposition run.
#[derive(Clone, Debug)]
pub struct DecomposeResult {
    /// The coloured layout used for evaluation.
    pub layout: ColoredLayout,
    /// Per-feature mask assignment, parallel to the extracted feature list.
    pub masks: Vec<Option<Mask>>,
    /// Run statistics.
    pub stats: DecomposeStats,
}

/// The OpenMPL-like layout decomposer.
#[derive(Clone, Debug)]
pub struct Decomposer {
    config: DecomposeConfig,
}

impl Decomposer {
    /// Creates a decomposer with the given configuration.
    pub fn new(config: DecomposeConfig) -> Self {
        Self { config }
    }

    /// Colours a routed layout.
    pub fn decompose(&self, design: &Design, solution: &RoutingSolution) -> DecomposeResult {
        let start = Instant::now();
        let nodes = extract_features(design, solution, self.config.chunk_pitches);
        let graph = ConflictGraph::build(design, &nodes);
        let (masks, components) = color_graph(&graph, &nodes, &self.config);

        let mut layout = ColoredLayout::new(
            design.die(),
            design.tech().num_layers(),
            design.tech().dcolor(),
        );
        for (node, mask) in nodes.iter().zip(masks.iter()) {
            layout.add(Feature {
                net: Some(node.net),
                layer: node.layer,
                rect: node.rect,
                mask: *mask,
                kind: node.kind,
            });
        }
        let layout_stats = layout.stats();
        let stats = DecomposeStats {
            conflicts: layout_stats.conflicts,
            stitches: layout_stats.stitches,
            features: nodes.len(),
            edges: graph.num_edges(),
            components,
            uncolored_features: masks.iter().filter(|m| m.is_none()).count(),
            runtime_seconds: start.elapsed().as_secs_f64(),
        };
        DecomposeResult {
            layout,
            masks,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_drcu::{DrCuConfig, DrCuRouter};
    use tpl_global::{GlobalConfig, GlobalRouter};
    use tpl_ispd::CaseParams;

    #[test]
    fn decomposes_a_routed_benchmark_without_leaving_uncolored_features() {
        let design = CaseParams::ispd19_like(1).scaled(0.35).generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        let routed = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);
        let result =
            Decomposer::new(DecomposeConfig::default()).decompose(&design, &routed.solution);
        assert_eq!(result.stats.uncolored_features, 0);
        assert!(result.stats.features > 0);
        assert!(result.stats.edges > 0);
        assert_eq!(result.masks.len(), result.stats.features);
    }

    #[test]
    fn decomposition_is_deterministic() {
        let design = CaseParams::ispd19_like(1).scaled(0.3).generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        let routed = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);
        let a = Decomposer::new(DecomposeConfig::default()).decompose(&design, &routed.solution);
        let b = Decomposer::new(DecomposeConfig::default()).decompose(&design, &routed.solution);
        assert_eq!(a.masks, b.masks);
        assert_eq!(a.stats.conflicts, b.stats.conflicts);
        assert_eq!(a.stats.stitches, b.stats.stitches);
    }

    #[test]
    fn chunk_length_controls_feature_granularity() {
        // Finer stitch candidates split wires into more features; both
        // granularities colour every feature.
        let design = CaseParams::ispd19_like(1).scaled(0.3).generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        let routed = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);
        let coarse = Decomposer::new(DecomposeConfig {
            chunk_pitches: 1_000,
            ..DecomposeConfig::default()
        })
        .decompose(&design, &routed.solution);
        let fine = Decomposer::new(DecomposeConfig {
            chunk_pitches: 4,
            ..DecomposeConfig::default()
        })
        .decompose(&design, &routed.solution);
        assert!(fine.stats.features > coarse.stats.features);
        assert_eq!(fine.stats.uncolored_features, 0);
        assert_eq!(coarse.stats.uncolored_features, 0);
    }
}
