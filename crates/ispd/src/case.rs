//! A runnable benchmark case: synthetic parameters or an ingested LEF/DEF
//! pair.
//!
//! The harness and CLI layers run over [`Case`] values so that externally
//! ingested designs flow through exactly the same scheduler, methods and
//! reports as the synthetic suites.

use crate::CaseParams;
use std::path::{Path, PathBuf};
use tpl_design::Design;
use tpl_lefdef::LefDefError;

/// Where a case's design comes from.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum CaseSource {
    /// A seeded synthetic case; the design is generated on demand.
    Synthetic(CaseParams),
    /// An externally ingested LEF/DEF pair, loaded eagerly so input errors
    /// surface before any routing starts.
    External {
        /// The LEF file the technology came from.
        lef: PathBuf,
        /// The DEF file the design came from.
        def: PathBuf,
        /// The lowered design.
        design: Box<Design>,
    },
}

/// One runnable benchmark case.
#[derive(Clone, Debug)]
pub struct Case {
    source: CaseSource,
}

impl Case {
    /// Wraps synthetic case parameters.
    pub fn synthetic(params: CaseParams) -> Self {
        Case {
            source: CaseSource::Synthetic(params),
        }
    }

    /// Loads an external case from a LEF/DEF pair on disk.
    ///
    /// The case is named after the DEF's `DESIGN` statement.
    ///
    /// # Errors
    ///
    /// Propagates the I/O, parse and lowering errors of
    /// [`tpl_lefdef::load_design`].
    pub fn from_lefdef(lef: &Path, def: &Path) -> Result<Self, LefDefError> {
        let lowered = tpl_lefdef::load_design(lef, def)?;
        Ok(Case {
            source: CaseSource::External {
                lef: lef.to_path_buf(),
                def: def.to_path_buf(),
                design: Box::new(lowered.design),
            },
        })
    }

    /// The case name used in reports and logs.
    pub fn name(&self) -> &str {
        match &self.source {
            CaseSource::Synthetic(params) => &params.name,
            CaseSource::External { design, .. } => design.name(),
        }
    }

    /// The synthetic parameters, when this is a synthetic case.
    pub fn params(&self) -> Option<&CaseParams> {
        match &self.source {
            CaseSource::Synthetic(params) => Some(params),
            CaseSource::External { .. } => None,
        }
    }

    /// The `(lef, def)` paths, when this is an external case.
    pub fn lefdef_paths(&self) -> Option<(&Path, &Path)> {
        match &self.source {
            CaseSource::Synthetic(_) => None,
            CaseSource::External { lef, def, .. } => Some((lef, def)),
        }
    }

    /// The source of the case.
    pub fn source(&self) -> &CaseSource {
        &self.source
    }

    /// Produces the case's design: generates the synthetic design or clones
    /// the ingested one.
    pub fn instantiate(&self) -> Design {
        match &self.source {
            CaseSource::Synthetic(params) => params.generate(),
            CaseSource::External { design, .. } => (**design).clone(),
        }
    }
}

impl From<CaseParams> for Case {
    fn from(params: CaseParams) -> Self {
        Case::synthetic(params)
    }
}

/// Loads every `*.def` in a directory as an external case, sorted by file
/// name.
///
/// The matching LEF is the sibling `<stem>.lef` when it exists, otherwise the
/// directory-wide `tech.lef`.  Duplicate design names are rejected, since
/// reports key records by case name.
///
/// # Errors
///
/// [`LefDefError::Io`] when the directory cannot be read, no DEF is found or
/// a DEF has no matching LEF; parse/lowering errors from the individual
/// files; [`LefDefError::Lower`] on duplicate design names.
pub fn cases_from_def_dir(dir: &Path) -> Result<Vec<Case>, LefDefError> {
    let io_err = |message: String| LefDefError::Io {
        path: dir.display().to_string(),
        message,
    };
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(e.to_string()))?;
    let mut defs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "def"))
        .collect();
    defs.sort();
    if defs.is_empty() {
        return Err(io_err("no .def files found".to_string()));
    }
    let shared_lef = dir.join("tech.lef");
    let mut cases = Vec::with_capacity(defs.len());
    for def in &defs {
        let sibling = def.with_extension("lef");
        let lef = if sibling.is_file() {
            sibling
        } else if shared_lef.is_file() {
            shared_lef.clone()
        } else {
            return Err(LefDefError::Io {
                path: def.display().to_string(),
                message: format!(
                    "no matching LEF: neither {} nor {} exists",
                    sibling.display(),
                    shared_lef.display()
                ),
            });
        };
        let case = Case::from_lefdef(&lef, def)?;
        if cases.iter().any(|c: &Case| c.name() == case.name()) {
            return Err(LefDefError::Lower(format!(
                "duplicate design name `{}` in {}",
                case.name(),
                dir.display()
            )));
        }
        cases.push(case);
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_case_exposes_params_and_generates() {
        let params = CaseParams::ispd18_like(1).scaled(0.2);
        let case = Case::from(params.clone());
        assert_eq!(case.name(), params.name);
        assert_eq!(case.params(), Some(&params));
        assert!(case.lefdef_paths().is_none());
        assert_eq!(case.instantiate().name(), params.name);
    }

    #[test]
    fn missing_def_dir_is_an_io_error() {
        let err = cases_from_def_dir(Path::new("/nonexistent/defs")).unwrap_err();
        assert!(matches!(err, LefDefError::Io { .. }), "{err}");
    }
}
