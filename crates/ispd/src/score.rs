//! ISPD-2018-style routing cost scoring.
//!
//! The contest score is a weighted sum of wirelength, via count, out-of-guide
//! wirelength, wrong-way wirelength and design-rule (spacing) violations.
//! The absolute weights here follow the contest's relative magnitudes; the
//! Table II "cost" column compares two routers under the *same* scorer, so
//! only the relative weighting matters for the reproduction.

use std::collections::HashSet;
use std::fmt;
use tpl_design::{Design, NetId, RouteGuides, RoutingSolution};
use tpl_geom::{BinIndex, Dbu};

/// Weights of the individual cost terms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoreWeights {
    /// Cost per track-pitch of wirelength.
    pub wirelength: f64,
    /// Cost per via.
    pub via: f64,
    /// Extra cost per track-pitch of wire outside the net's route guide.
    pub out_of_guide: f64,
    /// Extra cost per track-pitch of wire routed against the preferred axis.
    pub wrong_way: f64,
    /// Cost per spacing violation between different nets (or net/obstacle).
    pub spacing_violation: f64,
    /// Cost per net left unrouted.
    pub unrouted_net: f64,
}

impl Default for ScoreWeights {
    fn default() -> Self {
        // Mirrors the ISPD 2018 evaluation: WL 0.5/track, via 4, off-guide 1,
        // wrong-way 1, hard violation 500.
        Self {
            wirelength: 0.5,
            via: 4.0,
            out_of_guide: 1.0,
            wrong_way: 1.0,
            spacing_violation: 500.0,
            unrouted_net: 5000.0,
        }
    }
}

/// The individual terms making up a routing score.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostBreakdown {
    /// Total wirelength in database units.
    pub wirelength_dbu: Dbu,
    /// Number of vias.
    pub vias: usize,
    /// Wirelength outside the route guide, in database units.
    pub out_of_guide_dbu: Dbu,
    /// Wirelength routed against the preferred axis, in database units.
    pub wrong_way_dbu: Dbu,
    /// Number of different-net spacing violations.
    pub spacing_violations: usize,
    /// Number of nets without routed geometry.
    pub unrouted_nets: usize,
    /// The weighted total.
    pub total: f64,
}

impl CostBreakdown {
    /// The weighted total score.
    pub fn total(&self) -> f64 {
        self.total
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wl={} vias={} offguide={} wrongway={} spacing={} unrouted={} total={:.4e}",
            self.wirelength_dbu,
            self.vias,
            self.out_of_guide_dbu,
            self.wrong_way_dbu,
            self.spacing_violations,
            self.unrouted_nets,
            self.total
        )
    }
}

/// Scores a routing solution with the given weights.
///
/// The score covers every net of the design; nets missing from the solution
/// are charged the `unrouted_net` penalty.
pub fn score_solution(
    design: &Design,
    guides: &RouteGuides,
    solution: &RoutingSolution,
    weights: &ScoreWeights,
) -> CostBreakdown {
    let pitch = design.tech().layers()[0].pitch.max(1);
    let mut breakdown = CostBreakdown::default();

    // Per-layer spatial index over (net, rect) for spacing checks.
    let num_layers = design.tech().num_layers();
    let mut indexes: Vec<BinIndex> = (0..num_layers)
        .map(|_| BinIndex::new(design.die(), 16 * pitch))
        .collect();
    // Entry id encoding: net index (or obstacle marker) packed with a serial.
    let mut entry_net: Vec<NetId> = Vec::new();
    const OBSTACLE_NET: u32 = u32::MAX;

    for (net_id, routed) in solution.iter() {
        for seg in &routed.segments {
            let layer = design.tech().layer(seg.layer);
            let len = seg.length();
            breakdown.wirelength_dbu += len;
            if seg.seg.axis().map(|a| a != layer.axis).unwrap_or(false) {
                breakdown.wrong_way_dbu += len;
            }
            if !guides.covers(net_id, seg.layer, &seg.rect()) {
                breakdown.out_of_guide_dbu += len;
            }
            let idx = entry_net.len() as u64;
            entry_net.push(net_id);
            indexes[seg.layer.index()].insert(idx, seg.rect());
        }
        breakdown.vias += routed.via_count();
    }

    // Obstacles participate in spacing checks too.
    let obstacle_base = entry_net.len() as u64;
    for obs in design.obstacles() {
        let idx = entry_net.len() as u64;
        entry_net.push(NetId::new(OBSTACLE_NET));
        indexes[obs.layer.index()].insert(idx, obs.rect);
    }
    let _ = obstacle_base;

    // Spacing violations: different-net pairs closer than the layer spacing.
    let mut violating_pairs: HashSet<(u64, u64)> = HashSet::new();
    for (net_id, routed) in solution.iter() {
        for seg in &routed.segments {
            let layer = design.tech().layer(seg.layer);
            let window = seg.rect().expanded(layer.spacing);
            for (other_id, other_rect) in indexes[seg.layer.index()].query_entries(&window) {
                let other_net = entry_net[other_id as usize];
                if other_net == net_id {
                    continue;
                }
                if seg.rect().spacing_to(&other_rect) < layer.spacing {
                    // Identify the pair by the spatial-index ids to avoid
                    // double counting; the segment's own id is recovered by
                    // searching its rect (cheaper: use position in entry_net).
                    let my_id = indexes[seg.layer.index()]
                        .query_entries(&seg.rect())
                        .into_iter()
                        .find(|(id, r)| entry_net[*id as usize] == net_id && *r == seg.rect())
                        .map(|(id, _)| id)
                        .unwrap_or(u64::MAX);
                    let key = if my_id < other_id {
                        (my_id, other_id)
                    } else {
                        (other_id, my_id)
                    };
                    violating_pairs.insert(key);
                }
            }
        }
    }
    breakdown.spacing_violations = violating_pairs.len();

    breakdown.unrouted_nets = design
        .nets()
        .iter()
        .filter(|n| solution.get(n.id()).map(|r| r.is_empty()).unwrap_or(true))
        .count();

    let pitchf = pitch as f64;
    breakdown.total = weights.wirelength * breakdown.wirelength_dbu as f64 / pitchf
        + weights.via * breakdown.vias as f64
        + weights.out_of_guide * breakdown.out_of_guide_dbu as f64 / pitchf
        + weights.wrong_way * breakdown.wrong_way_dbu as f64 / pitchf
        + weights.spacing_violation * breakdown.spacing_violations as f64
        + weights.unrouted_net * breakdown.unrouted_nets as f64;
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_design::{
        DesignBuilder, LayerId as L, RouteSegment, RoutedNet, Technology, ViaInstance,
    };
    use tpl_geom::{Point, Rect, Segment};

    fn design() -> Design {
        let mut b = DesignBuilder::new(
            "score",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 1000, 1000),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(200, 200, 210, 210));
        let p2 = b.add_pin_shape("c", 0, Rect::from_coords(400, 10, 410, 20));
        let p3 = b.add_pin_shape("d", 0, Rect::from_coords(600, 600, 610, 610));
        b.add_net("n0", vec![p0, p1]);
        b.add_net("n1", vec![p2, p3]);
        b.build().unwrap()
    }

    fn straight_route(layer: u32, from: Point, to: Point) -> RoutedNet {
        let mut rn = RoutedNet::new();
        rn.segments
            .push(RouteSegment::new(L::new(layer), Segment::new(from, to), 8));
        rn
    }

    #[test]
    fn unrouted_nets_are_penalised() {
        let d = design();
        let guides = RouteGuides::new(d.nets().len());
        let sol = RoutingSolution::new(d.nets().len());
        let score = score_solution(&d, &guides, &sol, &ScoreWeights::default());
        assert_eq!(score.unrouted_nets, 2);
        assert!(score.total >= 10_000.0);
    }

    #[test]
    fn wirelength_and_vias_are_counted() {
        let d = design();
        let guides = RouteGuides::new(d.nets().len());
        let mut sol = RoutingSolution::new(d.nets().len());
        let mut rn = straight_route(0, Point::new(5, 5), Point::new(205, 5));
        rn.vias
            .push(ViaInstance::new(L::new(0), Point::new(205, 5)));
        sol.set(NetId::new(0), rn);
        let score = score_solution(&d, &guides, &sol, &ScoreWeights::default());
        assert_eq!(score.wirelength_dbu, 200);
        assert_eq!(score.vias, 1);
        assert_eq!(score.unrouted_nets, 1);
        // Horizontal wire on the horizontal layer M1: no wrong-way length.
        assert_eq!(score.wrong_way_dbu, 0);
    }

    #[test]
    fn wrong_way_wire_is_flagged() {
        let d = design();
        let guides = RouteGuides::new(d.nets().len());
        let mut sol = RoutingSolution::new(d.nets().len());
        // Vertical wire on the horizontal layer M1.
        sol.set(
            NetId::new(0),
            straight_route(0, Point::new(5, 5), Point::new(5, 205)),
        );
        let score = score_solution(&d, &guides, &sol, &ScoreWeights::default());
        assert_eq!(score.wrong_way_dbu, 200);
    }

    #[test]
    fn out_of_guide_wire_is_charged() {
        let d = design();
        let mut guides = RouteGuides::new(d.nets().len());
        guides.add(NetId::new(0), L::new(0), Rect::from_coords(0, 0, 100, 100));
        let mut sol = RoutingSolution::new(d.nets().len());
        // Entirely outside the guide box.
        sol.set(
            NetId::new(0),
            straight_route(0, Point::new(300, 300), Point::new(500, 300)),
        );
        let score = score_solution(&d, &guides, &sol, &ScoreWeights::default());
        assert_eq!(score.out_of_guide_dbu, 200);
    }

    #[test]
    fn spacing_violations_between_nets_are_detected() {
        let d = design();
        let guides = RouteGuides::new(d.nets().len());
        let mut sol = RoutingSolution::new(d.nets().len());
        // Two parallel wires 4 dbu apart edge to edge (violates spacing 8).
        sol.set(
            NetId::new(0),
            straight_route(0, Point::new(0, 100), Point::new(300, 100)),
        );
        sol.set(
            NetId::new(1),
            straight_route(0, Point::new(0, 112), Point::new(300, 112)),
        );
        let score = score_solution(&d, &guides, &sol, &ScoreWeights::default());
        assert_eq!(score.spacing_violations, 1);

        // Moving the second wire a full pitch away removes the violation.
        let mut sol2 = RoutingSolution::new(d.nets().len());
        sol2.set(
            NetId::new(0),
            straight_route(0, Point::new(0, 100), Point::new(300, 100)),
        );
        sol2.set(
            NetId::new(1),
            straight_route(0, Point::new(0, 120), Point::new(300, 120)),
        );
        let score2 = score_solution(&d, &guides, &sol2, &ScoreWeights::default());
        assert_eq!(score2.spacing_violations, 0);
        assert!(score2.total < score.total);
    }

    #[test]
    fn display_mentions_total() {
        let b = CostBreakdown {
            total: 1234.5,
            ..Default::default()
        };
        assert!(b.to_string().contains("total=1.2345e3"));
    }
}
