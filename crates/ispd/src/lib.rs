//! Synthetic ISPD-2018/2019-like benchmark generator and cost scorer.
//!
//! The original paper evaluates on the ISPD 2018 and ISPD 2019 initial
//! detailed routing contest benchmarks.  Those LEF/DEF files are not
//! redistributable and are far larger than what a laptop-scale reproduction
//! can route in minutes, so this crate provides *deterministic, seeded,
//! synthetic* cases whose structural properties (die size, net count,
//! multi-pin fraction, pin clustering, obstacle density) grow from `test1` to
//! `test10` the same way the contest suites do.  See `DESIGN.md` for the
//! substitution rationale.
//!
//! The crate also implements an ISPD-2018-style cost scorer
//! ([`score_solution`]) used for the "cost" column of Table II.
//!
//! # Examples
//!
//! ```
//! use tpl_ispd::CaseParams;
//!
//! let case = CaseParams::ispd18_like(1).scaled(0.25);
//! let design = case.generate();
//! assert!(design.nets().len() > 0);
//! assert!(design.stats().multi_pin_nets > 0);
//! ```

#![warn(missing_docs)]

mod case;
mod generator;
mod params;
mod score;
mod suite;

pub use case::{cases_from_def_dir, Case, CaseSource};
pub use generator::generate_design;
pub use params::CaseParams;
pub use score::{score_solution, CostBreakdown, ScoreWeights};
pub use suite::{ispd18_suite, ispd19_suite, run_suite, Suite};
