//! Parameters describing one synthetic benchmark case.

use crate::generator::generate_design;
use tpl_design::Design;
use tpl_geom::Dbu;

/// Parameters of a synthetic ISPD-like benchmark case.
///
/// All sizes are expressed in *tracks* (multiples of the layer pitch), which
/// keeps the parameters independent of the database unit.  The generator
/// turns them into a concrete [`Design`].
#[derive(Clone, Debug, PartialEq)]
pub struct CaseParams {
    /// Case name, e.g. `ispd18_like_test3`.
    pub name: String,
    /// Die width in tracks.
    pub width_tracks: usize,
    /// Die height in tracks.
    pub height_tracks: usize,
    /// Number of routing layers.
    pub num_layers: usize,
    /// Number of nets to generate.
    pub num_nets: usize,
    /// Fraction (0..=1) of nets that have exactly two pins.
    pub two_pin_fraction: f64,
    /// Largest pin count for multi-pin nets (inclusive).
    pub max_pins_per_net: usize,
    /// Number of rectangular routing obstacles.
    pub num_obstacles: usize,
    /// Pin-cluster window, in tracks: pins of one net are placed inside a
    /// window of roughly this size (controls locality/congestion).
    pub cluster_tracks: usize,
    /// RNG seed; two identical `CaseParams` always generate identical designs.
    pub seed: u64,
    /// Track pitch in database units (20 in the canonical stack).
    pub pitch: Dbu,
}

impl CaseParams {
    /// Parameters mirroring case `idx` (1..=10) of the ISPD-2018-like suite.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not in `1..=10`.
    pub fn ispd18_like(idx: usize) -> Self {
        assert!((1..=10).contains(&idx), "ISPD18-like cases are 1..=10");
        // (width, height, layers, nets, 2-pin frac, max pins, obstacles, cluster)
        let table = [
            (40, 40, 4, 30, 0.55, 5, 6, 16),
            (60, 60, 4, 75, 0.55, 6, 10, 16),
            (72, 72, 4, 110, 0.55, 6, 14, 16),
            (84, 84, 4, 150, 0.50, 7, 18, 15),
            (96, 96, 5, 200, 0.50, 7, 22, 15),
            (108, 108, 5, 260, 0.50, 8, 26, 15),
            (120, 120, 5, 330, 0.45, 8, 30, 14),
            (130, 130, 5, 390, 0.45, 9, 34, 14),
            (140, 140, 5, 450, 0.45, 9, 38, 14),
            (148, 148, 5, 540, 0.40, 10, 42, 12),
        ];
        let (w, h, layers, nets, two_pin, max_pins, obstacles, cluster) = table[idx - 1];
        CaseParams {
            name: format!("ispd18_like_test{idx}"),
            width_tracks: w,
            height_tracks: h,
            num_layers: layers,
            num_nets: nets,
            two_pin_fraction: two_pin,
            max_pins_per_net: max_pins,
            num_obstacles: obstacles,
            cluster_tracks: cluster,
            seed: 0x1807_0000 + idx as u64,
            pitch: 20,
        }
    }

    /// Parameters mirroring case `idx` (1..=10) of the ISPD-2019-like suite.
    ///
    /// The 2019 contest added denser pin configurations and more irregular
    /// case sizes; the synthetic analogues are correspondingly denser and
    /// less monotone in size than the 2018 suite.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not in `1..=10`.
    pub fn ispd19_like(idx: usize) -> Self {
        assert!((1..=10).contains(&idx), "ISPD19-like cases are 1..=10");
        let table = [
            (48, 48, 4, 50, 0.50, 6, 8, 14),
            (64, 64, 5, 100, 0.50, 6, 12, 14),
            (56, 56, 4, 72, 0.55, 5, 10, 14),
            (80, 80, 5, 170, 0.45, 8, 18, 13),
            (88, 88, 5, 200, 0.45, 8, 22, 13),
            (96, 96, 5, 245, 0.45, 9, 26, 13),
            (104, 104, 5, 300, 0.40, 9, 30, 12),
            (116, 116, 5, 375, 0.40, 10, 34, 12),
            (128, 128, 5, 460, 0.40, 10, 38, 12),
            (140, 140, 5, 560, 0.35, 11, 42, 11),
        ];
        let (w, h, layers, nets, two_pin, max_pins, obstacles, cluster) = table[idx - 1];
        CaseParams {
            name: format!("ispd19_like_test{idx}"),
            width_tracks: w,
            height_tracks: h,
            num_layers: layers,
            num_nets: nets,
            two_pin_fraction: two_pin,
            max_pins_per_net: max_pins,
            num_obstacles: obstacles,
            cluster_tracks: cluster,
            seed: 0x1907_0000 + idx as u64,
            pitch: 20,
        }
    }

    /// Returns a proportionally smaller (or larger) copy of the case.
    ///
    /// `factor` scales the die linearly and the net/obstacle counts
    /// quadratically so routing density stays roughly constant.  Used by unit
    /// tests and Criterion benches to keep runtimes small.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(&self, factor: f64) -> CaseParams {
        assert!(factor > 0.0, "scale factor must be positive");
        let scale_dim = |v: usize| ((v as f64 * factor).round() as usize).max(12);
        let scale_count = |v: usize| ((v as f64 * factor * factor).round() as usize).max(4);
        CaseParams {
            name: format!("{}_x{:.2}", self.name, factor),
            width_tracks: scale_dim(self.width_tracks),
            height_tracks: scale_dim(self.height_tracks),
            num_layers: self.num_layers,
            num_nets: scale_count(self.num_nets),
            two_pin_fraction: self.two_pin_fraction,
            max_pins_per_net: self.max_pins_per_net,
            num_obstacles: scale_count(self.num_obstacles).max(1),
            cluster_tracks: self.cluster_tracks.min(scale_dim(self.cluster_tracks)),
            seed: self.seed,
            pitch: self.pitch,
        }
    }

    /// Generates the concrete design for these parameters.
    pub fn generate(&self) -> Design {
        generate_design(self)
    }

    /// Die width in database units.
    pub fn width_dbu(&self) -> Dbu {
        self.width_tracks as Dbu * self.pitch
    }

    /// Die height in database units.
    pub fn height_dbu(&self) -> Dbu {
        self.height_tracks as Dbu * self.pitch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_grow_monotonically() {
        let mut prev_nets = 0;
        for idx in 1..=10 {
            let p = CaseParams::ispd18_like(idx);
            assert!(p.num_nets >= prev_nets, "case {idx} should not shrink");
            prev_nets = p.num_nets;
        }
    }

    #[test]
    #[should_panic(expected = "1..=10")]
    fn rejects_out_of_range_case() {
        CaseParams::ispd18_like(11);
    }

    #[test]
    fn scaled_keeps_density_roughly_constant() {
        let p = CaseParams::ispd18_like(5);
        let s = p.scaled(0.5);
        let density = p.num_nets as f64 / (p.width_tracks * p.height_tracks) as f64;
        let density_s = s.num_nets as f64 / (s.width_tracks * s.height_tracks) as f64;
        assert!((density - density_s).abs() / density < 0.35);
    }

    #[test]
    fn ispd19_cases_are_distinct_from_ispd18() {
        let a = CaseParams::ispd18_like(3);
        let b = CaseParams::ispd19_like(3);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.name, b.name);
    }

    #[test]
    fn width_dbu_uses_pitch() {
        let p = CaseParams::ispd18_like(1);
        assert_eq!(p.width_dbu(), 40 * 20);
    }
}
