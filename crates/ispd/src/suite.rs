//! Convenience constructors for whole benchmark suites.

use crate::CaseParams;

/// The ten ISPD-2018-like cases, in order (`test1` .. `test10`).
pub fn ispd18_suite() -> Vec<CaseParams> {
    (1..=10).map(CaseParams::ispd18_like).collect()
}

/// The ten ISPD-2019-like cases, in order (`test1` .. `test10`).
pub fn ispd19_suite() -> Vec<CaseParams> {
    (1..=10).map(CaseParams::ispd19_like).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_ten_cases_each() {
        assert_eq!(ispd18_suite().len(), 10);
        assert_eq!(ispd19_suite().len(), 10);
    }

    #[test]
    fn case_names_are_unique() {
        let mut names: Vec<String> = ispd18_suite()
            .into_iter()
            .chain(ispd19_suite())
            .map(|c| c.name)
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
