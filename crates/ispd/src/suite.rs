//! Convenience constructors for whole benchmark suites.

use crate::{Case, CaseParams};
use std::path::Path;
use tpl_lefdef::LefDefError;

/// The two synthetic benchmark suites the paper's tables run over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// The ISPD-2018-like suite (Table II).
    Ispd18,
    /// The ISPD-2019-like suite (Table III).
    Ispd19,
}

impl Suite {
    /// Parses a suite name as used by CLI flags (`ispd18` / `ispd19`).
    pub fn parse(name: &str) -> Option<Suite> {
        match name {
            "ispd18" => Some(Suite::Ispd18),
            "ispd19" => Some(Suite::Ispd19),
            _ => None,
        }
    }

    /// The canonical CLI/report name of the suite.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Ispd18 => "ispd18",
            Suite::Ispd19 => "ispd19",
        }
    }

    /// Parameters of case `idx` (1..=10) of this suite.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not in `1..=10`.
    pub fn case(self, idx: usize) -> CaseParams {
        match self {
            Suite::Ispd18 => CaseParams::ispd18_like(idx),
            Suite::Ispd19 => CaseParams::ispd19_like(idx),
        }
    }

    /// Loads every `*.def` file in `dir` as an externally ingested case, in
    /// file-name order (see [`crate::cases_from_def_dir`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O, parse and lowering errors from the LEF/DEF files.
    pub fn from_def_dir(dir: &Path) -> Result<Vec<Case>, LefDefError> {
        crate::cases_from_def_dir(dir)
    }
}

/// The ten ISPD-2018-like cases, in order (`test1` .. `test10`).
pub fn ispd18_suite() -> Vec<CaseParams> {
    (1..=10).map(CaseParams::ispd18_like).collect()
}

/// The ten ISPD-2019-like cases, in order (`test1` .. `test10`).
pub fn ispd19_suite() -> Vec<CaseParams> {
    (1..=10).map(CaseParams::ispd19_like).collect()
}

/// Builds the ready-to-run case list of one suite run: picks the requested
/// case indices (all ten when `indices` is empty) and applies the scale
/// factor in one place.
///
/// A factor within `f64::EPSILON` of `1.0` leaves the cases untouched so
/// full-size runs keep their canonical, suffix-free names.  This is the one
/// spot that pairs [`CaseParams`] with a scale factor; CLI layers should not
/// re-implement the pairing.
///
/// # Panics
///
/// Panics if an index is not in `1..=10` or the scale factor is not positive.
pub fn run_suite(suite: Suite, indices: &[usize], scale: f64) -> Vec<Case> {
    let all: Vec<usize> = (1..=10).collect();
    let picked = if indices.is_empty() { &all } else { indices };
    picked
        .iter()
        .map(|&idx| {
            let params = suite.case(idx);
            Case::synthetic(if (scale - 1.0).abs() < f64::EPSILON {
                params
            } else {
                params.scaled(scale)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_ten_cases_each() {
        assert_eq!(ispd18_suite().len(), 10);
        assert_eq!(ispd19_suite().len(), 10);
    }

    #[test]
    fn case_names_are_unique() {
        let mut names: Vec<String> = ispd18_suite()
            .into_iter()
            .chain(ispd19_suite())
            .map(|c| c.name)
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn suite_parses_and_round_trips_names() {
        assert_eq!(Suite::parse("ispd18"), Some(Suite::Ispd18));
        assert_eq!(Suite::parse("ispd19"), Some(Suite::Ispd19));
        assert_eq!(Suite::parse("ispd20"), None);
        for suite in [Suite::Ispd18, Suite::Ispd19] {
            assert_eq!(Suite::parse(suite.name()), Some(suite));
        }
    }

    #[test]
    fn run_suite_defaults_to_all_ten_unscaled() {
        let cases = run_suite(Suite::Ispd18, &[], 1.0);
        let params: Vec<CaseParams> = cases.iter().map(|c| c.params().unwrap().clone()).collect();
        assert_eq!(params, ispd18_suite());
        assert!(cases.iter().all(|c| !c.name().contains("_x")));
    }

    #[test]
    fn run_suite_picks_indices_in_order_and_scales() {
        let cases = run_suite(Suite::Ispd19, &[4, 2], 0.5);
        assert_eq!(cases.len(), 2);
        assert_eq!(
            cases[0].params(),
            Some(&CaseParams::ispd19_like(4).scaled(0.5))
        );
        assert_eq!(
            cases[1].params(),
            Some(&CaseParams::ispd19_like(2).scaled(0.5))
        );
    }

    #[test]
    #[should_panic(expected = "1..=10")]
    fn run_suite_rejects_out_of_range_indices() {
        run_suite(Suite::Ispd18, &[11], 1.0);
    }
}
