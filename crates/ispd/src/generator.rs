//! Deterministic synthetic design generation.

use crate::CaseParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tpl_design::{Design, DesignBuilder, Technology};
use tpl_geom::{Dbu, Rect};

/// Generates a design from benchmark parameters.
///
/// The generator is fully deterministic: the same [`CaseParams`] (including
/// the seed) always produce the same [`Design`].
///
/// Pins are placed on track crossings of layer `M1`, grouped per net inside a
/// cluster window to create local congestion; cluster centres follow a
/// mixture of uniform placement and a few deliberate hot spots, which is what
/// drives colour-conflict pressure for colour-blind routers.  Obstacles are
/// rectangular blockages on intermediate layers.
pub fn generate_design(params: &CaseParams) -> Design {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let tech = Technology::ispd_like(params.num_layers);
    let pitch = params.pitch;
    let die = Rect::from_coords(0, 0, params.width_dbu(), params.height_dbu());
    let mut builder = DesignBuilder::new(params.name.clone(), tech, die);

    let w = params.width_tracks as i64;
    let h = params.height_tracks as i64;
    let half_pin: Dbu = 4;

    // A handful of hot spots that several nets gravitate towards.
    let num_hotspots = (params.num_nets / 60).clamp(1, 8);
    let hotspots: Vec<(i64, i64)> = (0..num_hotspots)
        .map(|_| {
            (
                rng.gen_range(4..w.max(5) - 4),
                rng.gen_range(4..h.max(5) - 4),
            )
        })
        .collect();

    // Slot bookkeeping: which net owns each used track crossing.  Pins of
    // different nets keep a Chebyshev distance of at least `PIN_HALO + 1`
    // tracks, which keeps the pin fabric nearly colour-clean (dense K4
    // clusters of foreign pins, which no router could ever legalise, do not
    // occur in the contest benchmarks either).
    const PIN_HALO: i64 = 1;
    let mut used_slots: HashMap<(i64, i64), usize> = HashMap::new();
    let slot_free_for = |used: &HashMap<(i64, i64), usize>, tx: i64, ty: i64, net: usize| -> bool {
        if used.contains_key(&(tx, ty)) {
            return false;
        }
        for dx in -PIN_HALO..=PIN_HALO {
            for dy in -PIN_HALO..=PIN_HALO {
                if let Some(owner) = used.get(&(tx + dx, ty + dy)) {
                    if *owner != net {
                        return false;
                    }
                }
            }
        }
        true
    };
    let track_coord = |t: i64| -> Dbu { t * pitch + pitch / 2 };

    let mut pin_counter = 0usize;
    for net_idx in 0..params.num_nets {
        // Pin count for this net.
        let num_pins = if rng.gen_bool(params.two_pin_fraction) {
            2
        } else {
            rng.gen_range(3..=params.max_pins_per_net.max(3))
        };

        // Cluster centre: a quarter of the nets anchor to a hot spot (local
        // congestion), the rest are uniform over the die.
        let (cx, cy) = if rng.gen_bool(0.25) {
            let (hx, hy) = hotspots[rng.gen_range(0..hotspots.len())];
            (
                (hx + rng.gen_range(-6..=6)).clamp(1, w - 2),
                (hy + rng.gen_range(-6..=6)).clamp(1, h - 2),
            )
        } else {
            (rng.gen_range(1..w - 1), rng.gen_range(1..h - 1))
        };

        let window = params.cluster_tracks as i64;
        let mut pin_ids = Vec::with_capacity(num_pins);
        let mut guard = 0;
        while pin_ids.len() < num_pins {
            guard += 1;
            // Give up on exclusivity if the window is saturated; widen instead.
            let widen = 1 + guard / 40;
            let tx = (cx + rng.gen_range(-window * widen..=window * widen)).clamp(0, w - 1);
            let ty = (cy + rng.gen_range(-window * widen..=window * widen)).clamp(0, h - 1);
            // If the die is so saturated that no halo-respecting slot can be
            // found (only possible for aggressively scaled-down test cases),
            // fall back to plain slot exclusivity so generation always
            // terminates.
            let relaxed = guard > 40 * (w + h);
            let ok = if relaxed {
                !used_slots.contains_key(&(tx, ty))
            } else {
                slot_free_for(&used_slots, tx, ty, net_idx)
            };
            if !ok {
                continue;
            }
            used_slots.insert((tx, ty), net_idx);
            let x = track_coord(tx);
            let y = track_coord(ty);
            let rect = Rect::from_coords(x - half_pin, y - half_pin, x + half_pin, y + half_pin);
            let pin_id = builder.add_pin_shape(format!("n{net_idx}_p{pin_counter}"), 0, rect);
            pin_counter += 1;
            pin_ids.push(pin_id);
        }
        builder.add_net(format!("net{net_idx}"), pin_ids);
    }

    // Obstacles: blockages on intermediate layers, sized 3..=8 tracks.
    for _ in 0..params.num_obstacles {
        let layer = if params.num_layers > 2 {
            rng.gen_range(1..params.num_layers as u32 - 1)
        } else {
            1.min(params.num_layers as u32 - 1)
        };
        let ow = rng.gen_range(3..=8).min(w - 2);
        let oh = rng.gen_range(3..=8).min(h - 2);
        let ox = rng.gen_range(0..(w - ow).max(1));
        let oy = rng.gen_range(0..(h - oh).max(1));
        let rect = Rect::from_coords(ox * pitch, oy * pitch, (ox + ow) * pitch, (oy + oh) * pitch);
        if rng.gen_bool(0.8) {
            builder.add_obstacle(layer, rect);
        } else {
            builder.add_blockage(layer, rect);
        }
    }

    builder
        .build()
        .expect("generated benchmark designs are always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_design::write_design;

    #[test]
    fn generation_is_deterministic() {
        let p = CaseParams::ispd18_like(1);
        let a = generate_design(&p);
        let b = generate_design(&p);
        assert_eq!(write_design(&a), write_design(&b));
    }

    #[test]
    fn different_seeds_give_different_designs() {
        let p1 = CaseParams::ispd18_like(1);
        let mut p2 = p1.clone();
        p2.seed += 1;
        assert_ne!(
            write_design(&generate_design(&p1)),
            write_design(&generate_design(&p2))
        );
    }

    #[test]
    fn generated_design_matches_params() {
        let p = CaseParams::ispd18_like(2).scaled(0.5);
        let d = generate_design(&p);
        let stats = d.stats();
        assert_eq!(stats.num_nets, p.num_nets);
        assert_eq!(stats.num_layers, p.num_layers);
        assert_eq!(stats.num_obstacles, p.num_obstacles);
        assert!(
            stats.multi_pin_nets > 0,
            "suite must contain multi-pin nets"
        );
        assert!(stats.max_pins_per_net <= p.max_pins_per_net);
        assert_eq!(d.die().width(), p.width_dbu());
    }

    #[test]
    fn pins_do_not_overlap_each_other() {
        let p = CaseParams::ispd18_like(1);
        let d = generate_design(&p);
        let pins = d.pins();
        for i in 0..pins.len() {
            for j in (i + 1)..pins.len() {
                let a = pins[i].shapes()[0].1;
                let b = pins[j].shapes()[0].1;
                assert!(!a.intersects(&b), "pins {i} and {j} overlap: {a} vs {b}");
            }
        }
    }

    #[test]
    fn pins_of_different_nets_are_never_on_adjacent_crossings() {
        let p = CaseParams::ispd18_like(2);
        let d = generate_design(&p);
        let pitch = 20;
        let pins = d.pins();
        for i in 0..pins.len() {
            for j in (i + 1)..pins.len() {
                if pins[i].net() == pins[j].net() {
                    continue;
                }
                let a = pins[i].shapes()[0].1;
                let b = pins[j].shapes()[0].1;
                // Pins of different nets sit at least two tracks apart, so
                // their spacing always exceeds one pitch.
                assert!(
                    a.spacing_to(&b) > pitch,
                    "pins {} and {} of different nets are {} apart",
                    pins[i].name(),
                    pins[j].name(),
                    a.spacing_to(&b),
                );
            }
        }
    }

    #[test]
    fn pins_are_inside_the_die() {
        let p = CaseParams::ispd19_like(1);
        let d = generate_design(&p);
        for pin in d.pins() {
            for (_, rect) in pin.shapes() {
                assert!(d.die().contains_rect(rect) || d.die().intersects(rect));
            }
        }
    }
}
