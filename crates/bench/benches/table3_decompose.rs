//! Criterion bench behind Table III: Mr.TPL vs the route-then-decompose flow
//! (Dr.CU-like router + OpenMPL-style decomposition) on scaled ISPD-2019-like
//! cases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrtpl_core::MrTplConfig;
use tpl_bench::{prepare_case, run_decompose, run_mrtpl};
use tpl_decompose::DecomposeConfig;
use tpl_drcu::DrCuConfig;
use tpl_ispd::CaseParams;

fn table3_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_decompose");
    group.sample_size(10);
    for idx in [1usize, 2] {
        let params = CaseParams::ispd19_like(idx).scaled(0.5);
        let (design, guides) = prepare_case(&params);
        group.bench_with_input(BenchmarkId::new("mrtpl", idx), &idx, |b, _| {
            b.iter(|| run_mrtpl(&design, &guides, &MrTplConfig::default()).0)
        });
        group.bench_with_input(
            BenchmarkId::new("route_then_decompose", idx),
            &idx,
            |b, _| {
                b.iter(|| {
                    run_decompose(
                        &design,
                        &guides,
                        &DrCuConfig::default(),
                        &DecomposeConfig::default(),
                    )
                    .0
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, table3_decompose);
criterion_main!(benches);
