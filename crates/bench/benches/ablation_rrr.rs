//! Ablation A3: effect of the number of rip-up-and-reroute iterations on
//! runtime (conflict convergence is recorded in `conflict_history` and
//! discussed in EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrtpl_core::MrTplConfig;
use tpl_bench::{prepare_case, run_mrtpl};
use tpl_ispd::CaseParams;

fn ablation_rrr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rrr");
    group.sample_size(10);
    let params = CaseParams::ispd18_like(4).scaled(0.5);
    let (design, guides) = prepare_case(&params);
    for iterations in [0usize, 2, 5] {
        let config = MrTplConfig {
            max_rrr_iterations: iterations,
            ..MrTplConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("rrr_iterations", iterations),
            &iterations,
            |b, _| b.iter(|| run_mrtpl(&design, &guides, &config).0),
        );
    }
    group.finish();
}

criterion_group!(benches, ablation_rrr);
criterion_main!(benches);
