//! Ablation A2: sweep of the stitch-cost weight (β of Eq. (1)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrtpl_core::MrTplConfig;
use tpl_bench::{prepare_case, run_mrtpl};
use tpl_ispd::CaseParams;

fn ablation_weights(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_weights");
    group.sample_size(10);
    let params = CaseParams::ispd18_like(3).scaled(0.5);
    let (design, guides) = prepare_case(&params);
    for stitch_cost in [5.0f64, 20.0, 80.0] {
        let config = MrTplConfig {
            stitch_cost,
            ..MrTplConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("stitch_cost", stitch_cost as u64),
            &stitch_cost,
            |b, _| b.iter(|| run_mrtpl(&design, &guides, &config).0),
        );
    }
    group.finish();
}

criterion_group!(benches, ablation_weights);
criterion_main!(benches);
