//! Criterion bench behind Table II's runtime/speedup column: Mr.TPL vs the
//! DAC'12 baseline on (scaled) ISPD-2018-like cases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrtpl_core::MrTplConfig;
use tpl_bench::{prepare_case, run_dac12, run_mrtpl};
use tpl_dac12::Dac12Config;
use tpl_ispd::CaseParams;

fn table2_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_runtime");
    group.sample_size(10);
    for idx in [1usize, 2, 3] {
        let params = CaseParams::ispd18_like(idx).scaled(0.5);
        let (design, guides) = prepare_case(&params);
        group.bench_with_input(BenchmarkId::new("mrtpl", idx), &idx, |b, _| {
            b.iter(|| run_mrtpl(&design, &guides, &MrTplConfig::default()).0)
        });
        group.bench_with_input(BenchmarkId::new("dac12", idx), &idx, |b, _| {
            b.iter(|| run_dac12(&design, &guides, &Dac12Config::default()).0)
        });
    }
    group.finish();
}

criterion_group!(benches, table2_runtime);
criterion_main!(benches);
