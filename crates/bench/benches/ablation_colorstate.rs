//! Ablation A1: set-based colour states (the paper's method) vs committing a
//! single colour greedily during search.  Reports runtime; the quality gap is
//! reported by the `ablations` binary output of the same configurations in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrtpl_core::{MrTplConfig, SearchPolicy};
use tpl_bench::{prepare_case, run_mrtpl};
use tpl_ispd::CaseParams;

fn ablation_colorstate(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_colorstate");
    group.sample_size(10);
    for idx in [2usize, 3] {
        let params = CaseParams::ispd18_like(idx).scaled(0.5);
        let (design, guides) = prepare_case(&params);
        group.bench_with_input(BenchmarkId::new("set_based", idx), &idx, |b, _| {
            b.iter(|| run_mrtpl(&design, &guides, &MrTplConfig::default()).0)
        });
        let greedy = MrTplConfig {
            policy: SearchPolicy::GreedySingleColor,
            ..MrTplConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("greedy_single_color", idx),
            &idx,
            |b, _| b.iter(|| run_mrtpl(&design, &guides, &greedy).0),
        );
    }
    group.finish();
}

criterion_group!(benches, ablation_colorstate);
criterion_main!(benches);
