//! Argument parsing and text rendering of the `mrtpl-bench` binary.

use std::path::Path;
use tpl_harness::{run_matrix, InputProvenance, MethodRegistry, RunOptions, RunReport};
use tpl_ispd::{cases_from_def_dir, run_suite, Case, Suite};
use tpl_metrics::{format_table, SuiteTotals, TableRow};

/// Output format of `mrtpl-bench`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Aligned plain-text table plus per-method totals.
    Text,
    /// The JSON report of `tpl-harness` (see its schema docs).
    Json,
}

/// Parsed `mrtpl-bench` arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchArgs {
    /// The suite to run.
    pub suite: Suite,
    /// Case indices (empty means all ten).
    pub cases: Vec<usize>,
    /// Comma-separated method selection.
    pub methods: String,
    /// Scale factor applied to every case.
    pub scale: f64,
    /// Worker-thread count (cases × methods fan-out).
    pub jobs: usize,
    /// Intra-case worker count (net-level parallelism inside each router).
    pub net_jobs: usize,
    /// Output format.
    pub format: Format,
    /// Write the report to this path instead of stdout.
    pub out: Option<String>,
    /// Route an external DEF file (or a directory of `.def` files) instead
    /// of a synthetic suite.
    pub def: Option<String>,
    /// Explicit LEF for `--def`; defaults to the DEF's sibling `<stem>.lef`,
    /// then `tech.lef` in the same directory.
    pub lef: Option<String>,
    /// Zero wall-clock fields for byte-stable output.
    pub deterministic: bool,
    /// Write trace exports (Chrome trace, per-phase metrics, wall-clock
    /// timings) into this directory; also turns tracing on for the run.
    pub trace: Option<String>,
    /// Goal-directed A* in the search kernels (`--a-star on|off`).
    pub a_star: bool,
    /// Bucket priority queue in the search kernels (`--bucket-queue on|off`).
    pub bucket_queue: bool,
    /// Search-node budget per attempt (`--budget`); deterministic, so it
    /// composes with `--deterministic` byte-comparisons.
    pub budget: Option<u64>,
    /// Wall-clock deadline per attempt in seconds (`--deadline`); inherently
    /// machine-dependent, so not for byte-compared runs.
    pub deadline: Option<f64>,
    /// Seed of a deterministic fault-injection plan (`--fault-plan`); faults
    /// fire at fixed `tpl-fault` sites as a pure function of the seed.
    pub fault_plan: Option<u64>,
    /// Print the method registry and exit.
    pub list_methods: bool,
    /// Print usage and exit.
    pub help: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            suite: Suite::Ispd18,
            cases: Vec::new(),
            methods: "dac12,mrtpl".to_string(),
            scale: 1.0,
            jobs: 1,
            net_jobs: 1,
            format: Format::Text,
            out: None,
            def: None,
            lef: None,
            deterministic: false,
            trace: None,
            a_star: true,
            bucket_queue: true,
            budget: None,
            deadline: None,
            fault_plan: None,
            list_methods: false,
            help: false,
        }
    }
}

/// The usage text printed by `--help` and on parse errors.
pub const USAGE: &str = "\
mrtpl-bench — run a method × case matrix over an ISPD-like suite

USAGE:
  mrtpl-bench [OPTIONS]

OPTIONS:
  --suite <ispd18|ispd19>   suite to run (default: ispd18)
  --cases <LIST>            comma-separated case indices 1..=10 (default: all)
  --methods <LIST>          comma-separated methods (default: dac12,mrtpl)
  --scale <S>               case scale factor (default: 1.0)
  --jobs <N>                worker threads over the case matrix (default: 1)
  --net-jobs <N>            worker threads inside each router; never changes
                            results, only wall clock (default: 1)
  --def <PATH>              route an external DEF file (or a directory of
                            .def files) instead of a synthetic suite
  --lef <PATH>              LEF for --def (default: the DEF's sibling
                            <stem>.lef, then tech.lef in its directory)
  --format <text|json>      output format (default: text)
  --out <PATH>              write the report to a file instead of stdout
  --deterministic           zero wall-clock fields (byte-stable output);
                            real runtimes go to a *.timings.json sidecar
                            next to --out
  --trace <DIR>             enable tpl-trace and write DIR/chrome.trace.json
                            (load in chrome://tracing or Perfetto),
                            DIR/metrics.json (report + per-phase counters)
                            and DIR/timings.json; never changes the report
  --a-star <on|off>         goal-directed A* in the search kernels (default:
                            on); never changes guides, but may pick different
                            equal-cost ties in the mrtpl colour search
  --bucket-queue <on|off>   bucket priority queue in the search kernels
                            (default: on); never changes any result
  --budget <NODES>          search-node budget per attempt; budget-stopped
                            runs return best-so-far partial results marked
                            degraded/aborted and retry down the degradation
                            ladder; deterministic across --jobs/--net-jobs
  --deadline <SECS>         wall-clock deadline per attempt (machine-
                            dependent; not for byte-compared runs)
  --fault-plan <SEED>       install a deterministic fault-injection plan:
                            panics/delays/budget trips fire at fixed sites
                            as a pure function of the seed (robustness
                            testing; the scheduler must always survive)
  --list-methods            print the method registry and exit
  --help                    print this help

PRESETS:
  table2 == --suite ispd18 --methods dac12,mrtpl
  table3 == --suite ispd19 --methods decompose,mrtpl
";

/// Parses a `--scale` value: a strictly positive, finite float (`inf` would
/// saturate the case dimensions instead of erroring).
pub fn parse_scale_value(v: &str) -> Result<f64, String> {
    v.parse::<f64>()
        .ok()
        .filter(|s| s.is_finite() && *s > 0.0)
        .ok_or_else(|| format!("invalid --scale value `{v}`"))
}

/// Parses a `--jobs` value: an integer of at least 1.
pub fn parse_jobs_value(v: &str) -> Result<usize, String> {
    v.parse::<usize>()
        .ok()
        .filter(|j| *j >= 1)
        .ok_or_else(|| format!("invalid --jobs value `{v}`"))
}

/// Parses a `--budget` value: a non-negative integer node count (0 is legal
/// and means "degrade everything immediately").
pub fn parse_budget_value(v: &str) -> Result<u64, String> {
    v.parse::<u64>()
        .map_err(|_| format!("invalid --budget value `{v}`"))
}

/// Parses a `--deadline` value: a strictly positive, finite seconds count.
pub fn parse_deadline_value(v: &str) -> Result<f64, String> {
    v.parse::<f64>()
        .ok()
        .filter(|s| s.is_finite() && *s > 0.0)
        .ok_or_else(|| format!("invalid --deadline value `{v}`"))
}

/// Parses a `--fault-plan` seed: any u64.
pub fn parse_seed_value(v: &str) -> Result<u64, String> {
    v.parse::<u64>()
        .map_err(|_| format!("invalid --fault-plan seed `{v}`"))
}

/// Parses an `on|off` knob value (used by `--a-star` and `--bucket-queue`).
pub fn parse_on_off(flag: &str, v: &str) -> Result<bool, String> {
    match v {
        "on" => Ok(true),
        "off" => Ok(false),
        _ => Err(format!("invalid {flag} value `{v}` (on or off)")),
    }
}

/// Parses `mrtpl-bench` arguments (without the program name).
pub fn parse_bench_args(args: impl Iterator<Item = String>) -> Result<BenchArgs, String> {
    let mut parsed = BenchArgs::default();
    let mut iter = args;
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        match arg.as_str() {
            "--suite" => {
                let v = take("--suite")?;
                parsed.suite = Suite::parse(&v)
                    .ok_or_else(|| format!("unknown suite `{v}` (ispd18 or ispd19)"))?;
            }
            "--cases" => {
                let v = take("--cases")?;
                parsed.cases = parse_case_list(&v)?;
            }
            "--methods" => parsed.methods = take("--methods")?,
            "--scale" => parsed.scale = parse_scale_value(&take("--scale")?)?,
            "--jobs" => parsed.jobs = parse_jobs_value(&take("--jobs")?)?,
            "--net-jobs" => parsed.net_jobs = parse_jobs_value(&take("--net-jobs")?)?,
            "--format" => {
                let v = take("--format")?;
                parsed.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    _ => return Err(format!("unknown format `{v}` (text or json)")),
                };
            }
            "--budget" => parsed.budget = Some(parse_budget_value(&take("--budget")?)?),
            "--deadline" => parsed.deadline = Some(parse_deadline_value(&take("--deadline")?)?),
            "--fault-plan" => parsed.fault_plan = Some(parse_seed_value(&take("--fault-plan")?)?),
            "--a-star" => parsed.a_star = parse_on_off("--a-star", &take("--a-star")?)?,
            "--bucket-queue" => {
                parsed.bucket_queue = parse_on_off("--bucket-queue", &take("--bucket-queue")?)?
            }
            "--def" => parsed.def = Some(take("--def")?),
            "--lef" => parsed.lef = Some(take("--lef")?),
            "--out" => parsed.out = Some(take("--out")?),
            "--trace" => parsed.trace = Some(take("--trace")?),
            "--deterministic" => parsed.deterministic = true,
            "--list-methods" => parsed.list_methods = true,
            "--help" | "-h" => parsed.help = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn parse_case_list(spec: &str) -> Result<Vec<usize>, String> {
    let mut cases = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let idx: usize = part
            .parse()
            .map_err(|_| format!("invalid case index `{part}`"))?;
        if !(1..=10).contains(&idx) {
            return Err(format!("case index {idx} out of range 1..=10"));
        }
        cases.push(idx);
    }
    Ok(cases)
}

/// Builds the case list of an external `--def` run.
fn external_cases(args: &BenchArgs, def: &str) -> Result<Vec<Case>, String> {
    if !args.cases.is_empty() {
        return Err(
            "--cases selects synthetic suite indices; it cannot be combined with --def".to_string(),
        );
    }
    if (args.scale - 1.0).abs() > f64::EPSILON {
        return Err(
            "--scale applies to synthetic cases; it cannot be combined with --def".to_string(),
        );
    }
    let def_path = Path::new(def);
    if def_path.is_dir() {
        if args.lef.is_some() {
            return Err(
                "--lef needs a single DEF file; a --def directory discovers each case's LEF"
                    .to_string(),
            );
        }
        return cases_from_def_dir(def_path).map_err(|e| e.to_string());
    }
    let lef_path = match &args.lef {
        Some(lef) => Path::new(lef).to_path_buf(),
        None => {
            let sibling = def_path.with_extension("lef");
            let shared = def_path.with_file_name("tech.lef");
            if sibling.is_file() {
                sibling
            } else if shared.is_file() {
                shared
            } else {
                return Err(format!(
                    "no LEF for {def}: pass --lef or provide {} or {}",
                    sibling.display(),
                    shared.display()
                ));
            }
        }
    };
    let case = Case::from_lefdef(&lef_path, def_path).map_err(|e| e.to_string())?;
    Ok(vec![case])
}

/// Runs the parsed matrix through the harness and returns the report.
pub fn execute(args: &BenchArgs) -> Result<RunReport, String> {
    let registry = MethodRegistry::builtin();
    let methods = registry.select(&args.methods)?;
    let (suite, input, cases) = match &args.def {
        Some(def) => (
            "external".to_string(),
            InputProvenance::External {
                lef: args.lef.clone(),
                def: def.clone(),
            },
            external_cases(args, def)?,
        ),
        None => {
            if args.lef.is_some() {
                return Err("--lef only makes sense together with --def".to_string());
            }
            (
                args.suite.name().to_string(),
                InputProvenance::Synthetic,
                run_suite(args.suite, &args.cases, args.scale),
            )
        }
    };
    if args.trace.is_some() {
        tpl_trace::enable();
    }
    match args.fault_plan {
        // Install (or replace) the process-wide plan so every fault site
        // keys off this run's seed; without the flag, clear any leftover
        // plan so fault points stay zero-cost.
        Some(seed) => tpl_fault::install(seed),
        None => tpl_fault::clear(),
    }
    let options = RunOptions {
        jobs: args.jobs,
        net_jobs: args.net_jobs,
        deterministic: args.deterministic,
        trace: args.trace.is_some(),
        a_star: args.a_star,
        bucket_queue: args.bucket_queue,
        max_search_nodes: args.budget,
        deadline_seconds: args.deadline,
    };
    let records = run_matrix(&methods, &cases, &options);
    Ok(RunReport {
        suite,
        input,
        scale: args.scale,
        jobs: args.jobs,
        net_jobs: args.net_jobs,
        deterministic: args.deterministic,
        methods: methods.iter().map(|m| m.name().to_string()).collect(),
        records,
    })
}

/// Renders a report as an aligned text table plus per-method totals.
pub fn render_text(report: &RunReport) -> String {
    let rows: Vec<TableRow> = report
        .records
        .iter()
        .map(|job| match job.record() {
            Some(r) => TableRow::new([
                job.case.clone(),
                job.method.clone(),
                "ok".to_string(),
                r.conflicts.to_string(),
                r.stitches.to_string(),
                format!("{:.4e}", r.cost),
                format!("{:.2}", r.runtime_seconds),
            ]),
            None => TableRow::new([
                job.case.clone(),
                job.method.clone(),
                "FAILED".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        })
        .collect();
    let mut out = format_table(
        &[
            "case",
            "method",
            "status",
            "conflicts",
            "stitches",
            "cost",
            "time s",
        ],
        &rows,
    );
    out.push('\n');
    for method in &report.methods {
        let totals = SuiteTotals::from_records(&report.records_of(method));
        let failed = report.failures_of(method);
        out.push_str(&format!(
            "total {method:<10} cases {:2} (failed {failed}): conflicts {:5}  stitches {:5}  cost {:.4e}  time {:.2}s\n",
            totals.cases, totals.conflicts, totals.stitches, totals.cost, totals.runtime_seconds,
        ));
    }
    // No speedup line in deterministic mode: wall-clock fields are zeroed,
    // so a ratio would be a misleading 0.00x.
    if report.methods.len() > 1 && !report.deterministic {
        let baseline = &report.methods[0];
        for method in &report.methods[1..] {
            let (base, ours) = report.paired_records(baseline, method);
            if !ours.is_empty() {
                out.push_str(&format!(
                    "geomean speedup {method} vs {baseline}: {:.2}x\n",
                    tpl_metrics::geomean_speedup(&base, &ours)
                ));
            }
        }
    }
    out
}

/// The `*.timings.json` sidecar path of a `--deterministic --out` report:
/// `reports/foo.json` → `reports/foo.timings.json`.  Deterministic reports
/// zero `runtime_seconds` for byte-stable comparison, so the real wall-clock
/// numbers land next to the report instead of inside it.
pub fn timings_sidecar_path(out: &str) -> String {
    Path::new(out)
        .with_extension("timings.json")
        .to_string_lossy()
        .into_owned()
}

/// Writes the three `--trace` exports into `dir`:
///
/// * `chrome.trace.json` — the raw event stream in Chrome `trace_event`
///   format, loadable in `chrome://tracing` or Perfetto,
/// * `metrics.json` — the JSON report plus a per-phase `phases` block on
///   every traced record,
/// * `timings.json` — real per-job wall-clock seconds (measured even in
///   deterministic mode).
///
/// Draining the trace registry consumes the run's raw events, so this is
/// called once, after the report is rendered.
pub fn write_trace_outputs(report: &RunReport, dir: &str) -> Result<(), String> {
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let dump = tpl_trace::drain();
    let writes = [
        ("chrome.trace.json", dump.to_chrome_json()),
        ("metrics.json", report.to_json_with_phases()),
        ("timings.json", report.timings_json()),
    ];
    for (name, contents) in writes {
        let path = dir.join(name);
        std::fs::write(&path, contents)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Renders the method registry for `--list-methods`.
pub fn render_method_list() -> String {
    let registry = MethodRegistry::builtin();
    let mut out = String::new();
    for method in registry.iter() {
        out.push_str(&format!("{:<10} {}\n", method.name(), method.description()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchArgs, String> {
        parse_bench_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_match_table2_preset() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, BenchArgs::default());
        assert_eq!(args.suite, Suite::Ispd18);
        assert_eq!(args.methods, "dac12,mrtpl");
    }

    #[test]
    fn full_flag_set_parses() {
        let args = parse(&[
            "--suite",
            "ispd19",
            "--cases",
            "1,3, 5",
            "--methods",
            "decompose,mrtpl",
            "--scale",
            "0.5",
            "--jobs",
            "8",
            "--net-jobs",
            "4",
            "--format",
            "json",
            "--out",
            "report.json",
            "--trace",
            "out/trace",
            "--deterministic",
            "--a-star",
            "off",
            "--bucket-queue",
            "off",
        ])
        .unwrap();
        assert_eq!(args.suite, Suite::Ispd19);
        assert_eq!(args.cases, vec![1, 3, 5]);
        assert_eq!(args.methods, "decompose,mrtpl");
        assert_eq!(args.scale, 0.5);
        assert_eq!(args.jobs, 8);
        assert_eq!(args.net_jobs, 4);
        assert_eq!(args.format, Format::Json);
        assert_eq!(args.out.as_deref(), Some("report.json"));
        assert_eq!(args.trace.as_deref(), Some("out/trace"));
        assert!(args.deterministic);
        assert!(!args.a_star);
        assert!(!args.bucket_queue);
    }

    #[test]
    fn search_kernel_knobs_default_on_and_parse_on_off() {
        let args = parse(&[]).unwrap();
        assert!(args.a_star);
        assert!(args.bucket_queue);
        let args = parse(&["--a-star", "off"]).unwrap();
        assert!(!args.a_star);
        assert!(args.bucket_queue);
        let args = parse(&["--bucket-queue", "off", "--a-star", "on"]).unwrap();
        assert!(args.a_star);
        assert!(!args.bucket_queue);
    }

    #[test]
    fn robustness_flags_parse_and_default_off() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.budget, None);
        assert_eq!(args.deadline, None);
        assert_eq!(args.fault_plan, None);
        let args = parse(&[
            "--budget",
            "50000",
            "--deadline",
            "2.5",
            "--fault-plan",
            "42",
        ])
        .unwrap();
        assert_eq!(args.budget, Some(50_000));
        assert_eq!(args.deadline, Some(2.5));
        assert_eq!(args.fault_plan, Some(42));
        // Zero budget is legal: everything degrades immediately.
        assert_eq!(parse(&["--budget", "0"]).unwrap().budget, Some(0));
        assert!(parse(&["--budget", "-1"]).unwrap_err().contains("budget"));
        assert!(parse(&["--deadline", "0"])
            .unwrap_err()
            .contains("deadline"));
        assert!(parse(&["--deadline", "inf"])
            .unwrap_err()
            .contains("deadline"));
        assert!(parse(&["--fault-plan", "x"])
            .unwrap_err()
            .contains("fault-plan"));
    }

    #[test]
    fn timings_sidecar_sits_next_to_the_report() {
        assert_eq!(
            timings_sidecar_path("reports/foo.json"),
            "reports/foo.timings.json"
        );
        assert_eq!(timings_sidecar_path("foo"), "foo.timings.json");
    }

    #[test]
    fn bad_inputs_are_rejected_with_messages() {
        assert!(parse(&["--suite", "ispd20"]).unwrap_err().contains("suite"));
        assert!(parse(&["--cases", "11"]).unwrap_err().contains("range"));
        assert!(parse(&["--cases", "x"]).unwrap_err().contains("invalid"));
        assert!(parse(&["--scale", "-1"]).unwrap_err().contains("scale"));
        assert!(parse(&["--scale", "inf"]).unwrap_err().contains("scale"));
        assert!(parse(&["--scale", "NaN"]).unwrap_err().contains("scale"));
        assert!(parse(&["--jobs", "0"]).unwrap_err().contains("job"));
        assert!(parse(&["--net-jobs", "0"]).unwrap_err().contains("job"));
        assert!(parse(&["--format", "xml"]).unwrap_err().contains("format"));
        assert!(parse(&["--a-star", "maybe"])
            .unwrap_err()
            .contains("a-star"));
        assert!(parse(&["--bucket-queue", "1"])
            .unwrap_err()
            .contains("bucket-queue"));
        assert!(parse(&["--scale"]).unwrap_err().contains("missing value"));
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("unknown"));
    }

    #[test]
    fn execute_produces_a_report_with_both_formats() {
        let args = BenchArgs {
            cases: vec![1],
            scale: 0.25,
            jobs: 2,
            deterministic: true,
            ..BenchArgs::default()
        };
        let report = execute(&args).unwrap();
        assert_eq!(report.records.len(), 2);
        let text = render_text(&report);
        assert!(text.contains("ispd18_like_test1"));
        assert!(text.contains("total dac12"));
        let json = report.to_json();
        assert!(json.contains("\"suite\": \"ispd18\""));
    }

    #[test]
    fn unknown_method_selection_fails_execute() {
        let args = BenchArgs {
            methods: "nope".to_string(),
            ..BenchArgs::default()
        };
        assert!(execute(&args).unwrap_err().contains("unknown method"));
    }

    #[test]
    fn def_and_lef_flags_parse() {
        let args = parse(&["--def", "designs/chip.def", "--lef", "designs/tech.lef"]).unwrap();
        assert_eq!(args.def.as_deref(), Some("designs/chip.def"));
        assert_eq!(args.lef.as_deref(), Some("designs/tech.lef"));
    }

    #[test]
    fn external_runs_reject_synthetic_only_flags() {
        let base = BenchArgs {
            def: Some("/nonexistent/chip.def".to_string()),
            ..BenchArgs::default()
        };
        let with_cases = BenchArgs {
            cases: vec![1],
            ..base.clone()
        };
        assert!(execute(&with_cases).unwrap_err().contains("--cases"));
        let with_scale = BenchArgs {
            scale: 0.5,
            ..base.clone()
        };
        assert!(execute(&with_scale).unwrap_err().contains("--scale"));
        let lef_only = BenchArgs {
            lef: Some("tech.lef".to_string()),
            def: None,
            ..BenchArgs::default()
        };
        assert!(execute(&lef_only).unwrap_err().contains("--def"));
        // A missing DEF fails with the LEF-discovery error, not a panic.
        assert!(execute(&base).unwrap_err().contains("no LEF"));
    }

    #[test]
    fn method_list_names_all_builtins() {
        let list = render_method_list();
        for name in ["mrtpl", "dac12", "drcu", "decompose"] {
            assert!(list.contains(name));
        }
    }
}
