//! Regenerates Table II of the paper: Mr.TPL vs the DAC'12 TPL-aware router
//! on the ISPD-2018-like suite.
//!
//! ```bash
//! cargo run --release -p tpl-bench --bin table2 [case indices] [--scale s]
//! ```

fn main() {
    let (cases, scale) = tpl_bench::parse_cli(std::env::args().skip(1));
    eprintln!(
        "Table II — Mr.TPL vs DAC'12 baseline (cases {:?}, scale {scale})",
        cases
    );
    let table = tpl_bench::render_table2(&cases, scale);
    println!("{table}");
}
