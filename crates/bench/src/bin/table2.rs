//! Regenerates Table II of the paper: Mr.TPL vs the DAC'12 TPL-aware router
//! on the ISPD-2018-like suite.  A thin preset over the `tpl-harness`
//! execution engine (see the `mrtpl-bench` binary for the general CLI).
//!
//! ```bash
//! cargo run --release -p tpl-bench --bin table2 [case indices] [--scale s] [--jobs n]
//! ```

fn main() {
    let (cases, scale, jobs) = match tpl_bench::parse_cli(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "Table II — Mr.TPL vs DAC'12 baseline (cases {:?}, scale {scale}, jobs {jobs})",
        cases
    );
    let table = tpl_bench::render_table2(&cases, scale, jobs);
    println!("{table}");
}
