//! Regenerates Table III of the paper: Mr.TPL vs OpenMPL-style layout
//! decomposition of the colour-blind router's output, on the ISPD-2019-like
//! suite.
//!
//! ```bash
//! cargo run --release -p tpl-bench --bin table3 [case indices] [--scale s]
//! ```

fn main() {
    let (cases, scale) = tpl_bench::parse_cli(std::env::args().skip(1));
    eprintln!(
        "Table III — Mr.TPL vs OpenMPL-style decomposition (cases {:?}, scale {scale})",
        cases
    );
    let table = tpl_bench::render_table3(&cases, scale);
    println!("{table}");
}
