//! Regenerates Table III of the paper: Mr.TPL vs OpenMPL-style layout
//! decomposition of the colour-blind router's output, on the ISPD-2019-like
//! suite.  A thin preset over the `tpl-harness` execution engine (see the
//! `mrtpl-bench` binary for the general CLI).
//!
//! ```bash
//! cargo run --release -p tpl-bench --bin table3 [case indices] [--scale s] [--jobs n]
//! ```

fn main() {
    let (cases, scale, jobs) = match tpl_bench::parse_cli(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "Table III — Mr.TPL vs OpenMPL-style decomposition (cases {:?}, scale {scale}, jobs {jobs})",
        cases
    );
    let table = tpl_bench::render_table3(&cases, scale, jobs);
    println!("{table}");
}
