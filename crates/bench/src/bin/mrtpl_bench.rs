//! Unified suite-execution CLI: run any method × case matrix over the
//! ISPD-2018/2019-like suites — or externally ingested LEF/DEF designs —
//! in parallel and report text or JSON.
//!
//! ```bash
//! cargo run --release -p tpl-bench --bin mrtpl-bench -- \
//!     --suite ispd18 --cases 1,2 --methods dac12,mrtpl \
//!     --jobs 8 --format json --out report.json
//!
//! cargo run --release -p tpl-bench --bin mrtpl-bench -- \
//!     --lef tech.lef --def chip.def --methods dac12,mrtpl
//! ```
//!
//! See `--help` for the full flag list; `table2`/`table3` are thin presets
//! over this binary's engine.

use std::process::ExitCode;
use tpl_bench::cli::{self, Format};

fn main() -> ExitCode {
    // Exit codes: 0 success, 1 run completed with failed jobs or I/O error,
    // 2 usage error — same convention as the table bins.
    let args = match cli::parse_bench_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", cli::USAGE);
            return ExitCode::from(2);
        }
    };
    if args.help {
        print!("{}", cli::USAGE);
        return ExitCode::SUCCESS;
    }
    if args.list_methods {
        print!("{}", cli::render_method_list());
        return ExitCode::SUCCESS;
    }

    if let Some(def) = &args.def {
        eprintln!(
            "mrtpl-bench: external def {def} methods {} jobs {}",
            args.methods, args.jobs,
        );
    } else {
        eprintln!(
            "mrtpl-bench: suite {} cases {} methods {} scale {} jobs {}",
            args.suite.name(),
            if args.cases.is_empty() {
                "all".to_string()
            } else {
                format!("{:?}", args.cases)
            },
            args.methods,
            args.scale,
            args.jobs,
        );
    }
    let report = match cli::execute(&args) {
        Ok(report) => report,
        // Execute errors are bad input — an unknown --methods name or an
        // unreadable/invalid --def or --lef: usage error.
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let rendered = match args.format {
        Format::Text => cli::render_text(&report),
        Format::Json => report.to_json(),
    };
    if let Some(path) = &args.out {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("error: cannot create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {path}");
        // Deterministic reports zero runtime_seconds for byte-stable
        // comparison; keep the real wall-clock numbers in a sidecar that is
        // never byte-compared.
        if args.deterministic {
            let sidecar = cli::timings_sidecar_path(path);
            if let Err(e) = std::fs::write(&sidecar, report.timings_json()) {
                eprintln!("error: cannot write {sidecar}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("timings written to {sidecar}");
        }
    } else {
        print!("{rendered}");
    }
    if let Some(dir) = &args.trace {
        if let Err(message) = cli::write_trace_outputs(&report, dir) {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace exports written to {dir}/");
    }
    let failed = report
        .records
        .iter()
        .filter(|r| r.error().is_some())
        .count();
    if failed > 0 {
        eprintln!("{failed} job(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
