//! Benchmark harness reproducing the paper's tables.
//!
//! The crate provides the plumbing shared by the table-generator binaries
//! (`table2`, `table3`) and the Criterion benches: run one benchmark case
//! through the global router plus one of the three competing methods and
//! collect a [`CaseRecord`] with the columns of the paper's tables.
//!
//! * **Table II** (`table2`): Mr.TPL vs the DAC'12 TPL-aware router on the
//!   ISPD-2018-like suite — conflicts, stitches, ISPD cost, runtime, speedup.
//! * **Table III** (`table3`): Mr.TPL vs OpenMPL-style decomposition of the
//!   colour-blind Dr.CU-like router's output on the ISPD-2019-like suite —
//!   conflicts and stitches.

#![warn(missing_docs)]

use mrtpl_core::{MrTplConfig, MrTplRouter};
use std::time::Instant;
use tpl_dac12::{Dac12Config, Dac12Router};
use tpl_decompose::{DecomposeConfig, Decomposer};
use tpl_design::{Design, RouteGuides};
use tpl_drcu::{DrCuConfig, DrCuRouter};
use tpl_global::{GlobalConfig, GlobalRouter};
use tpl_ispd::{score_solution, CaseParams, ScoreWeights};
use tpl_metrics::{format_table, CaseRecord, SuiteSummary, TableRow};

/// Generates a case and its route guides (the part shared by every method).
pub fn prepare_case(params: &CaseParams) -> (Design, RouteGuides) {
    let design = params.generate();
    let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
    (design, guides)
}

/// Runs Mr.TPL on a prepared case.
pub fn run_mrtpl(
    design: &Design,
    guides: &RouteGuides,
    config: &MrTplConfig,
) -> (CaseRecord, mrtpl_core::MrTplResult) {
    let result = MrTplRouter::new(*config).route(design, guides);
    let cost = score_solution(design, guides, &result.solution, &ScoreWeights::default());
    (
        CaseRecord {
            case: design.name().to_string(),
            conflicts: result.stats.conflicts,
            stitches: result.stats.stitches,
            cost: cost.total(),
            runtime_seconds: result.stats.runtime_seconds,
        },
        result,
    )
}

/// Runs the DAC'12 baseline on a prepared case.
pub fn run_dac12(
    design: &Design,
    guides: &RouteGuides,
    config: &Dac12Config,
) -> (CaseRecord, tpl_dac12::Dac12Result) {
    let result = Dac12Router::new(*config).route(design, guides);
    let cost = score_solution(design, guides, &result.solution, &ScoreWeights::default());
    (
        CaseRecord {
            case: design.name().to_string(),
            conflicts: result.stats.conflicts,
            stitches: result.stats.stitches,
            cost: cost.total(),
            runtime_seconds: result.stats.runtime_seconds,
        },
        result,
    )
}

/// Runs the Dr.CU-like colour-blind router followed by the OpenMPL-style
/// decomposition on a prepared case.
pub fn run_decompose(
    design: &Design,
    guides: &RouteGuides,
    route_config: &DrCuConfig,
    decompose_config: &DecomposeConfig,
) -> (CaseRecord, tpl_decompose::DecomposeResult) {
    let start = Instant::now();
    let routed = DrCuRouter::new(*route_config).route(design, guides);
    let result = Decomposer::new(*decompose_config).decompose(design, &routed.solution);
    let cost = score_solution(design, guides, &routed.solution, &ScoreWeights::default());
    (
        CaseRecord {
            case: design.name().to_string(),
            conflicts: result.stats.conflicts,
            stitches: result.stats.stitches,
            cost: cost.total(),
            runtime_seconds: start.elapsed().as_secs_f64(),
        },
        result,
    )
}

/// Renders Table II (Mr.TPL vs DAC'12) for the given ISPD-2018-like case
/// indices, optionally scaled down.
pub fn render_table2(cases: &[usize], scale: f64) -> String {
    let mut baseline_rows = Vec::new();
    let mut ours_rows = Vec::new();
    let mut rows = Vec::new();
    for &idx in cases {
        let params = scaled_case(CaseParams::ispd18_like(idx), scale);
        let (design, guides) = prepare_case(&params);
        let (dac, _) = run_dac12(&design, &guides, &Dac12Config::default());
        let (ours, _) = run_mrtpl(&design, &guides, &MrTplConfig::default());
        rows.push(TableRow::new([
            format!("test{idx}"),
            dac.conflicts.to_string(),
            ours.conflicts.to_string(),
            dac.stitches.to_string(),
            ours.stitches.to_string(),
            format!("{:.4e}", dac.cost),
            format!("{:.4e}", ours.cost),
            format!("{:.2}", dac.runtime_seconds),
            format!("{:.2}", ours.runtime_seconds),
            format!(
                "{:.2}x",
                tpl_metrics::safe_speedup(dac.runtime_seconds, ours.runtime_seconds)
            ),
        ]));
        baseline_rows.push(dac);
        ours_rows.push(ours);
    }
    let summary = SuiteSummary::from_records(&baseline_rows, &ours_rows);
    let mut out = format_table(
        &[
            "case",
            "conflict[5]",
            "conflict ours",
            "stitch[5]",
            "stitch ours",
            "cost[5]",
            "cost ours",
            "time[5] s",
            "time ours s",
            "speedup",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\navg: conflicts {:.2} -> {:.2} (improvement {:.2}%), stitches {:.2} -> {:.2} ({:.2}%), cost improvement {:.2}%, speedup {:.2}x\n",
        summary.baseline_conflicts,
        summary.ours_conflicts,
        summary.conflict_improvement,
        summary.baseline_stitches,
        summary.ours_stitches,
        summary.stitch_improvement,
        summary.cost_improvement,
        summary.speedup,
    ));
    out
}

/// Renders Table III (Mr.TPL vs OpenMPL-style decomposition) for the given
/// ISPD-2019-like case indices, optionally scaled down.
pub fn render_table3(cases: &[usize], scale: f64) -> String {
    let mut baseline_rows = Vec::new();
    let mut ours_rows = Vec::new();
    let mut rows = Vec::new();
    for &idx in cases {
        let params = scaled_case(CaseParams::ispd19_like(idx), scale);
        let (design, guides) = prepare_case(&params);
        let (decomp, _) = run_decompose(
            &design,
            &guides,
            &DrCuConfig::default(),
            &DecomposeConfig::default(),
        );
        let (ours, _) = run_mrtpl(&design, &guides, &MrTplConfig::default());
        rows.push(TableRow::new([
            format!("test{idx}"),
            decomp.conflicts.to_string(),
            ours.conflicts.to_string(),
            decomp.stitches.to_string(),
            ours.stitches.to_string(),
        ]));
        baseline_rows.push(decomp);
        ours_rows.push(ours);
    }
    let summary = SuiteSummary::from_records(&baseline_rows, &ours_rows);
    let mut out = format_table(
        &[
            "case",
            "conflict[2]",
            "conflict ours",
            "stitch[2]",
            "stitch ours",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\navg: conflicts {:.2} -> {:.2} (improvement {:.2}%), stitches {:.2} -> {:.2} ({:.2}%)\n",
        summary.baseline_conflicts,
        summary.ours_conflicts,
        summary.conflict_improvement,
        summary.baseline_stitches,
        summary.ours_stitches,
        summary.stitch_improvement,
    ));
    out
}

fn scaled_case(params: CaseParams, scale: f64) -> CaseParams {
    if (scale - 1.0).abs() < f64::EPSILON {
        params
    } else {
        params.scaled(scale)
    }
}

/// Parses the common `[case indices...] [--scale s]` CLI arguments of the
/// table binaries.  With no explicit cases, all ten are run.
pub fn parse_cli(args: impl Iterator<Item = String>) -> (Vec<usize>, f64) {
    let mut cases = Vec::new();
    let mut scale = 1.0;
    let mut expect_scale = false;
    for arg in args {
        if expect_scale {
            scale = arg.parse().unwrap_or(1.0);
            expect_scale = false;
        } else if arg == "--scale" {
            expect_scale = true;
        } else if let Ok(idx) = arg.parse::<usize>() {
            if (1..=10).contains(&idx) {
                cases.push(idx);
            }
        }
    }
    if cases.is_empty() {
        cases = (1..=10).collect();
    }
    (cases, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parsing_defaults_to_all_cases() {
        let (cases, scale) = parse_cli(Vec::<String>::new().into_iter());
        assert_eq!(cases, (1..=10).collect::<Vec<_>>());
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn cli_parsing_reads_cases_and_scale() {
        let args = ["3", "5", "--scale", "0.5", "99"].map(String::from);
        let (cases, scale) = parse_cli(args.into_iter());
        assert_eq!(cases, vec![3, 5]);
        assert_eq!(scale, 0.5);
    }

    #[test]
    fn table2_runs_on_a_tiny_case() {
        let text = render_table2(&[1], 0.3);
        assert!(text.contains("test1"));
        assert!(text.contains("speedup"));
        assert!(text.contains("avg:"));
    }

    #[test]
    fn table3_runs_on_a_tiny_case() {
        let text = render_table3(&[1], 0.3);
        assert!(text.contains("test1"));
        assert!(text.contains("avg:"));
    }
}
