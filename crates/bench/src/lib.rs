//! Benchmark front-end reproducing the paper's tables.
//!
//! Execution lives in `tpl-harness` (the [`Method`](tpl_harness::Method)
//! registry, the parallel scheduler, JSON reports); this crate is the
//! presentation layer on top of it:
//!
//! * [`render_table2`] / [`render_table3`] — the paper's Table II/III as
//!   plain text, now thin presets over the harness matrix runner.
//! * [`cli`] — argument parsing and text rendering of the `mrtpl-bench`
//!   binary, which subsumes the `table2`/`table3` bins.
//! * Re-exported flow functions ([`prepare_case`], [`run_mrtpl`], …) used by
//!   the Criterion benches to iterate on a pre-generated case.

#![warn(missing_docs)]

pub mod cli;

pub use tpl_harness::flows::{prepare_case, run_dac12, run_decompose, run_drcu, run_mrtpl};

use tpl_harness::{run_matrix, JobRecord, MethodRegistry, RunOptions};
use tpl_ispd::{run_suite, Suite};
use tpl_metrics::{format_table, safe_speedup, CaseRecord, SuiteSummary, TableRow};

/// Runs a baseline-vs-Mr.TPL preset over one suite through the harness.
///
/// Returns one entry per requested case index (all ten when `cases` is
/// empty), pairing the index with the (baseline, ours) records — `None` when
/// either job of that case failed, so rows never shift against their labels.
fn run_preset(
    suite: Suite,
    baseline: &str,
    cases: &[usize],
    scale: f64,
    jobs: usize,
) -> Vec<(usize, Option<(CaseRecord, CaseRecord)>)> {
    let registry = MethodRegistry::builtin();
    let methods = registry
        .select(&format!("{baseline},mrtpl"))
        .expect("preset methods are built in");
    let indices: Vec<usize> = if cases.is_empty() {
        (1..=10).collect()
    } else {
        cases.to_vec()
    };
    let params = run_suite(suite, &indices, scale);
    let options = RunOptions {
        jobs,
        ..RunOptions::default()
    };
    let records: Vec<JobRecord> = run_matrix(&methods, &params, &options);
    indices
        .into_iter()
        .zip(records.chunks(2))
        .map(|(idx, pair)| {
            let paired = match (pair[0].record(), pair[1].record()) {
                (Some(b), Some(o)) => Some((b.clone(), o.clone())),
                _ => None,
            };
            (idx, paired)
        })
        .collect()
}

/// A table row of `-` placeholders for a case whose jobs failed.
fn failed_row(idx: usize, num_cols: usize) -> TableRow {
    let mut cells = vec![format!("test{idx}"), "FAILED".to_string()];
    cells.resize(num_cols, "-".to_string());
    TableRow { cells }
}

/// Renders Table II (Mr.TPL vs DAC'12) for the given ISPD-2018-like case
/// indices (all ten when empty), optionally scaled down, fanning cases over
/// `jobs` workers.
pub fn render_table2(cases: &[usize], scale: f64, jobs: usize) -> String {
    let mut baseline_rows = Vec::new();
    let mut ours_rows = Vec::new();
    let mut rows = Vec::new();
    for (idx, pair) in run_preset(Suite::Ispd18, "dac12", cases, scale, jobs) {
        let Some((dac, ours)) = pair else {
            rows.push(failed_row(idx, 10));
            continue;
        };
        rows.push(TableRow::new([
            format!("test{idx}"),
            dac.conflicts.to_string(),
            ours.conflicts.to_string(),
            dac.stitches.to_string(),
            ours.stitches.to_string(),
            format!("{:.4e}", dac.cost),
            format!("{:.4e}", ours.cost),
            format!("{:.2}", dac.runtime_seconds),
            format!("{:.2}", ours.runtime_seconds),
            format!(
                "{:.2}x",
                safe_speedup(dac.runtime_seconds, ours.runtime_seconds)
            ),
        ]));
        baseline_rows.push(dac);
        ours_rows.push(ours);
    }
    let summary = SuiteSummary::from_records(&baseline_rows, &ours_rows);
    let mut out = format_table(
        &[
            "case",
            "conflict[5]",
            "conflict ours",
            "stitch[5]",
            "stitch ours",
            "cost[5]",
            "cost ours",
            "time[5] s",
            "time ours s",
            "speedup",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\navg: conflicts {:.2} -> {:.2} (improvement {:.2}%), stitches {:.2} -> {:.2} ({:.2}%), cost improvement {:.2}%, speedup {:.2}x (geomean {:.2}x)\n",
        summary.baseline_conflicts,
        summary.ours_conflicts,
        summary.conflict_improvement,
        summary.baseline_stitches,
        summary.ours_stitches,
        summary.stitch_improvement,
        summary.cost_improvement,
        summary.speedup,
        summary.geomean_speedup,
    ));
    out
}

/// Renders Table III (Mr.TPL vs OpenMPL-style decomposition) for the given
/// ISPD-2019-like case indices (all ten when empty), optionally scaled down,
/// fanning cases over `jobs` workers.
pub fn render_table3(cases: &[usize], scale: f64, jobs: usize) -> String {
    let mut baseline_rows = Vec::new();
    let mut ours_rows = Vec::new();
    let mut rows = Vec::new();
    for (idx, pair) in run_preset(Suite::Ispd19, "decompose", cases, scale, jobs) {
        let Some((decomp, ours)) = pair else {
            rows.push(failed_row(idx, 5));
            continue;
        };
        rows.push(TableRow::new([
            format!("test{idx}"),
            decomp.conflicts.to_string(),
            ours.conflicts.to_string(),
            decomp.stitches.to_string(),
            ours.stitches.to_string(),
        ]));
        baseline_rows.push(decomp);
        ours_rows.push(ours);
    }
    let summary = SuiteSummary::from_records(&baseline_rows, &ours_rows);
    let mut out = format_table(
        &[
            "case",
            "conflict[2]",
            "conflict ours",
            "stitch[2]",
            "stitch ours",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\navg: conflicts {:.2} -> {:.2} (improvement {:.2}%), stitches {:.2} -> {:.2} ({:.2}%)\n",
        summary.baseline_conflicts,
        summary.ours_conflicts,
        summary.conflict_improvement,
        summary.baseline_stitches,
        summary.ours_stitches,
        summary.stitch_improvement,
    ));
    out
}

/// Parses the common `[case indices...] [--scale s] [--jobs n]` CLI arguments
/// of the table binaries.  With no explicit cases, all ten are run.
///
/// Case tokens outside `1..=10` are silently ignored (historic behaviour);
/// a missing or unparsable `--scale`/`--jobs` value is an error so a flag
/// can never be swallowed as another flag's value.
pub fn parse_cli(args: impl Iterator<Item = String>) -> Result<(Vec<usize>, f64, usize), String> {
    let mut cases = Vec::new();
    let mut scale = 1.0;
    let mut jobs = 1usize;
    let mut expect = None::<&str>;
    for arg in args {
        match expect.take() {
            Some("scale") => scale = cli::parse_scale_value(&arg)?,
            Some("jobs") => jobs = cli::parse_jobs_value(&arg)?,
            _ => {
                if arg == "--scale" {
                    expect = Some("scale");
                } else if arg == "--jobs" {
                    expect = Some("jobs");
                } else if let Ok(idx) = arg.parse::<usize>() {
                    if (1..=10).contains(&idx) {
                        cases.push(idx);
                    }
                }
            }
        }
    }
    if let Some(flag) = expect {
        return Err(format!("missing value after --{flag}"));
    }
    if cases.is_empty() {
        cases = (1..=10).collect();
    }
    Ok((cases, scale, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parsing_defaults_to_all_cases() {
        let (cases, scale, jobs) = parse_cli(Vec::<String>::new().into_iter()).unwrap();
        assert_eq!(cases, (1..=10).collect::<Vec<_>>());
        assert_eq!(scale, 1.0);
        assert_eq!(jobs, 1);
    }

    #[test]
    fn cli_parsing_reads_cases_scale_and_jobs() {
        let args = ["3", "5", "--scale", "0.5", "--jobs", "4", "99"].map(String::from);
        let (cases, scale, jobs) = parse_cli(args.into_iter()).unwrap();
        assert_eq!(cases, vec![3, 5]);
        assert_eq!(scale, 0.5);
        assert_eq!(jobs, 4);
    }

    #[test]
    fn cli_parsing_rejects_bad_or_missing_flag_values() {
        let parse = |args: &[&str]| parse_cli(args.iter().map(|s| s.to_string()));
        // A flag is never swallowed as another flag's value.
        assert!(parse(&["--scale", "--jobs", "4"])
            .unwrap_err()
            .contains("--scale"));
        assert!(parse(&["--jobs"]).unwrap_err().contains("missing value"));
        assert!(parse(&["--scale", "-1"]).unwrap_err().contains("--scale"));
        assert!(parse(&["--jobs", "0"]).unwrap_err().contains("--jobs"));
    }

    #[test]
    fn table2_runs_on_a_tiny_case() {
        let text = render_table2(&[1], 0.3, 2);
        assert!(text.contains("test1"));
        assert!(text.contains("speedup"));
        assert!(text.contains("avg:"));
        assert!(text.contains("geomean"));
    }

    #[test]
    fn table3_runs_on_a_tiny_case() {
        let text = render_table3(&[1], 0.3, 1);
        assert!(text.contains("test1"));
        assert!(text.contains("avg:"));
    }
}
