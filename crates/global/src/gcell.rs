//! The coarse gcell grid.

use tpl_design::Design;
use tpl_geom::{Dbu, Point, Rect};

/// A coarse grid of rectangular gcells over the die.
///
/// Global routing works on this grid; each gcell spans a configurable number
/// of detailed-routing tracks.
#[derive(Clone, Debug)]
pub struct GCellGrid {
    die: Rect,
    cell: Dbu,
    nx: usize,
    ny: usize,
}

impl GCellGrid {
    /// Builds a gcell grid with cells of `tracks_per_gcell` track pitches.
    ///
    /// # Panics
    ///
    /// Panics if `tracks_per_gcell` is zero.
    pub fn build(design: &Design, tracks_per_gcell: usize) -> Self {
        assert!(tracks_per_gcell > 0, "gcells must span at least one track");
        let die = design.die();
        let pitch = design.tech().layers()[0].pitch;
        let cell = pitch * tracks_per_gcell as Dbu;
        let nx = ((die.width() + cell - 1) / cell).max(1) as usize;
        let ny = ((die.height() + cell - 1) / cell).max(1) as usize;
        Self { die, cell, nx, ny }
    }

    /// Number of gcell columns.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of gcell rows.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Side length of a gcell in database units.
    #[inline]
    pub fn cell_size(&self) -> Dbu {
        self.cell
    }

    /// The gcell containing a point (clamped to the grid).
    pub fn cell_of(&self, p: Point) -> (usize, usize) {
        let gx = ((p.x - self.die.lo.x) / self.cell).clamp(0, self.nx as Dbu - 1) as usize;
        let gy = ((p.y - self.die.lo.y) / self.cell).clamp(0, self.ny as Dbu - 1) as usize;
        (gx, gy)
    }

    /// The rectangle covered by gcell `(gx, gy)`, clipped to the die.
    ///
    /// # Panics
    ///
    /// Panics if the gcell coordinates are out of range.
    pub fn cell_rect(&self, gx: usize, gy: usize) -> Rect {
        assert!(gx < self.nx && gy < self.ny, "gcell out of range");
        let lo = Point::new(
            self.die.lo.x + gx as Dbu * self.cell,
            self.die.lo.y + gy as Dbu * self.cell,
        );
        let hi = Point::new(
            (lo.x + self.cell).min(self.die.hi.x),
            (lo.y + self.cell).min(self.die.hi.y),
        );
        Rect::new(lo, hi)
    }

    /// Dense index of a gcell.
    #[inline]
    pub fn index(&self, gx: usize, gy: usize) -> usize {
        gy * self.nx + gx
    }

    /// Total number of gcells.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// `true` when the grid has no cells (never happens for valid designs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_design::{DesignBuilder, Technology};

    fn design() -> Design {
        let mut b = DesignBuilder::new(
            "g",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 430, 430),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(400, 400, 410, 410));
        b.add_net("n", vec![p0, p1]);
        b.build().unwrap()
    }

    #[test]
    fn grid_dimensions_round_up() {
        let g = GCellGrid::build(&design(), 5);
        // Die 430 wide, gcell 100 -> 5 columns.
        assert_eq!(g.nx(), 5);
        assert_eq!(g.ny(), 5);
        assert_eq!(g.cell_size(), 100);
        assert_eq!(g.len(), 25);
        assert!(!g.is_empty());
    }

    #[test]
    fn cell_lookup_and_rect() {
        let g = GCellGrid::build(&design(), 5);
        assert_eq!(g.cell_of(Point::new(0, 0)), (0, 0));
        assert_eq!(g.cell_of(Point::new(250, 140)), (2, 1));
        assert_eq!(g.cell_of(Point::new(10_000, 10_000)), (4, 4));
        let r = g.cell_rect(4, 4);
        assert_eq!(r, Rect::from_coords(400, 400, 430, 430));
        assert!(g.cell_rect(2, 1).contains(&Point::new(250, 140)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_rect_checks_bounds() {
        GCellGrid::build(&design(), 5).cell_rect(9, 0);
    }
}
