//! Coarse-grid congestion-aware global router producing route guides.
//!
//! The paper's detailed routers consume global-routing (GR) guides: Mr.TPL
//! "calculates color cost by GR guide" and the ISPD cost function penalises
//! out-of-guide wiring.  This crate provides the guide-producing substrate:
//! a classic gcell-based global router with
//!
//! 1. minimum-spanning-tree topology generation per net,
//! 2. L-shape pattern routing with congestion lookahead,
//! 3. a maze-routing fallback on the coarse grid, and
//! 4. a small number of negotiation (rip-up and reroute) rounds on
//!    over-capacity gcell edges.
//!
//! # Examples
//!
//! ```
//! use tpl_global::{GlobalConfig, GlobalRouter};
//! use tpl_ispd::CaseParams;
//!
//! let design = CaseParams::ispd18_like(1).scaled(0.3).generate();
//! let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
//! assert_eq!(guides.num_nets(), design.nets().len());
//! ```

#![warn(missing_docs)]

mod gcell;
mod router;

pub use gcell::GCellGrid;
pub use router::{GlobalConfig, GlobalRouter, GlobalStats};
