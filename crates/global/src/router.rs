//! The congestion-aware global router.

use crate::GCellGrid;
use std::cmp::Reverse;
use tpl_design::{Design, LayerId, NetId, RouteGuides};
use tpl_geom::Point;
use tpl_grid::{EpochStamps, Frontier, Outcome, RouteBudget, SearchConfig, StopReason};
use tpl_par::{par_map_pooled, plan_batches, Parallelism, Region, ScratchPool};

/// How often the maze loop probes the wall-clock/cancellation checks.
const INTERRUPT_PROBE_MASK: usize = 0x0FFF;

/// Configuration of the global router.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GlobalConfig {
    /// Number of detailed-routing tracks per gcell side.
    pub tracks_per_gcell: usize,
    /// Usable routing capacity per gcell edge (tracks), per planar layer.
    pub capacity_per_layer: usize,
    /// Number of negotiation rounds after the initial pass.
    pub negotiation_rounds: usize,
    /// Cost multiplier applied to an over-capacity gcell edge.
    pub overflow_penalty: f64,
    /// History cost added to every overflowed edge per negotiation round.
    pub history_increment: f64,
    /// Number of gcells by which guides are expanded around the route.
    pub guide_expansion: usize,
    /// Number of gcells the maze fallback may stray outside a net's terminal
    /// bounding box.  Bounding the search keeps a net's demand confined to
    /// its declared region (which makes conflict-free batches exact) and
    /// prunes the Dijkstra frontier on large dies.
    pub maze_margin: usize,
    /// Intra-case net-level parallelism: nets with disjoint windows are
    /// routed concurrently against frozen edge demand, with updates applied
    /// at batch barriers.  The result is identical for every worker count.
    pub parallelism: Parallelism,
    /// Shortest-path kernel knobs for the maze fallback.  The maze drains
    /// its frontier through the goal key and rebuilds the path with a
    /// canonical backtrace, so flipping either knob never changes the
    /// routed paths — only the search effort.
    pub search: SearchConfig,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        Self {
            tracks_per_gcell: 5,
            capacity_per_layer: 4,
            negotiation_rounds: 2,
            overflow_penalty: 8.0,
            history_increment: 2.0,
            guide_expansion: 1,
            maze_margin: 8,
            parallelism: Parallelism::sequential(),
            search: SearchConfig {
                // Matches the historical `(cost * 1024.0) as u64` maze
                // quantisation; the minimum edge cost of 1.0 is then exactly
                // one bucket of `1 << 10` key units.
                key_resolution: 1024.0,
                bucket_shift: 10,
                ..SearchConfig::default()
            },
        }
    }
}

/// Statistics reported after global routing.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GlobalStats {
    /// Total number of gcell-to-gcell edges used, summed over nets.
    pub total_edge_usage: usize,
    /// Number of edges whose demand exceeds capacity after the final round.
    pub overflowed_edges: usize,
    /// Number of 2-pin connections routed with an L-pattern.
    pub pattern_routed: usize,
    /// Number of 2-pin connections that needed the maze fallback.
    pub maze_routed: usize,
    /// Total heap pops across all maze searches (search effort, independent
    /// of wall clock and worker count).
    pub search_nodes: usize,
    /// How the run ended: `Complete` without a budget, `Degraded` after a
    /// search-node budget trip (budget-stopped mazes fall back to L-paths),
    /// `Aborted` on deadline or cancellation.
    pub outcome: Outcome,
}

/// Per-net routing counters, merged into [`GlobalStats`] at batch barriers.
#[derive(Clone, Copy, Debug, Default)]
struct NetRouteStats {
    pattern_routed: usize,
    maze_routed: usize,
    search_nodes: usize,
    /// Worst stop reason any of this net's maze searches hit.
    stop: Option<StopReason>,
}

/// Reusable per-worker maze search state: epoch-stamped distances and queued
/// keys plus the frontier, so a maze call allocates nothing and starts in
/// O(1) instead of re-initialising O(cells) vectors.
struct MazeScratch {
    stamps: EpochStamps,
    dist: Vec<f64>,
    queued_key: Vec<u64>,
    frontier: Frontier,
}

impl MazeScratch {
    fn new(cells: usize, search: &SearchConfig) -> Self {
        Self {
            stamps: EpochStamps::new(cells),
            dist: vec![f64::INFINITY; cells],
            queued_key: vec![0; cells],
            frontier: Frontier::for_config(search),
        }
    }
}

/// The gcell-based global router.
///
/// See the crate documentation for the algorithm outline.
#[derive(Clone, Debug)]
pub struct GlobalRouter {
    config: GlobalConfig,
}

/// Internal edge-demand bookkeeping on the coarse grid.
struct EdgeMap {
    nx: usize,
    /// demand on horizontal edges ((gx,gy) -> (gx+1,gy)), size (nx-1)*ny.
    h_demand: Vec<u32>,
    /// demand on vertical edges ((gx,gy) -> (gx,gy+1)), size nx*(ny-1).
    v_demand: Vec<u32>,
    h_history: Vec<f64>,
    v_history: Vec<f64>,
    capacity: u32,
}

impl EdgeMap {
    fn new(nx: usize, ny: usize, capacity: u32) -> Self {
        let _ = ny;
        Self {
            nx,
            h_demand: vec![0; (nx.saturating_sub(1)) * ny],
            v_demand: vec![0; nx * (ny.saturating_sub(1))],
            h_history: vec![0.0; (nx.saturating_sub(1)) * ny],
            v_history: vec![0.0; nx * (ny.saturating_sub(1))],
            capacity,
        }
    }

    fn h_index(&self, gx: usize, gy: usize) -> usize {
        gy * (self.nx - 1) + gx
    }

    fn v_index(&self, gx: usize, gy: usize) -> usize {
        gy * self.nx + gx
    }

    /// Cost of crossing the edge between two horizontally adjacent cells.
    fn h_cost(&self, gx: usize, gy: usize, cfg: &GlobalConfig) -> f64 {
        let i = self.h_index(gx, gy);
        let demand = self.h_demand[i];
        let over = demand >= self.capacity;
        1.0 + self.h_history[i] + if over { cfg.overflow_penalty } else { 0.0 }
    }

    fn v_cost(&self, gx: usize, gy: usize, cfg: &GlobalConfig) -> f64 {
        let i = self.v_index(gx, gy);
        let demand = self.v_demand[i];
        let over = demand >= self.capacity;
        1.0 + self.v_history[i] + if over { cfg.overflow_penalty } else { 0.0 }
    }

    fn add_path(&mut self, path: &[(usize, usize)], delta: i64) {
        for w in path.windows(2) {
            let (ax, ay) = w[0];
            let (bx, by) = w[1];
            if ay == by {
                let i = self.h_index(ax.min(bx), ay);
                self.h_demand[i] = (self.h_demand[i] as i64 + delta).max(0) as u32;
            } else {
                let i = self.v_index(ax, ay.min(by));
                self.v_demand[i] = (self.v_demand[i] as i64 + delta).max(0) as u32;
            }
        }
    }

    fn path_overflowed(&self, path: &[(usize, usize)]) -> bool {
        path.windows(2).any(|w| {
            let (ax, ay) = w[0];
            let (bx, by) = w[1];
            if ay == by {
                self.h_demand[self.h_index(ax.min(bx), ay)] > self.capacity
            } else {
                self.v_demand[self.v_index(ax, ay.min(by))] > self.capacity
            }
        })
    }

    fn bump_history_on_overflow(&mut self, increment: f64) -> usize {
        let mut overflowed = 0;
        for i in 0..self.h_demand.len() {
            if self.h_demand[i] > self.capacity {
                self.h_history[i] += increment;
                overflowed += 1;
            }
        }
        for i in 0..self.v_demand.len() {
            if self.v_demand[i] > self.capacity {
                self.v_history[i] += increment;
                overflowed += 1;
            }
        }
        overflowed
    }

    fn overflowed_edges(&self) -> usize {
        self.h_demand.iter().filter(|d| **d > self.capacity).count()
            + self.v_demand.iter().filter(|d| **d > self.capacity).count()
    }
}

impl GlobalRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: GlobalConfig) -> Self {
        Self { config }
    }

    /// Routes every net of the design and returns its route guides.
    pub fn route(&self, design: &Design) -> RouteGuides {
        self.route_with_stats(design).0
    }

    /// Routes every net and also returns routing statistics.
    ///
    /// Each pass (the initial pass and every negotiation round) partitions
    /// its queue into conflict-free batches — nets whose maze windows are
    /// disjoint — routes each batch against frozen edge demand on
    /// `config.parallelism.jobs` workers, and commits demand updates at the
    /// batch barrier in deterministic net order.  Every per-net task is a
    /// pure function of the frozen edge-demand map, so the result is identical
    /// for every worker count (`jobs = 1` runs the same algorithm inline).
    pub fn route_with_stats(&self, design: &Design) -> (RouteGuides, GlobalStats) {
        self.route_with_budget(design, &RouteBudget::default())
    }

    /// Like [`route_with_stats`](GlobalRouter::route_with_stats), under a
    /// [`RouteBudget`].
    ///
    /// Node accounting mirrors the detailed router: committed maze pops are
    /// charged at batch barriers, every net of a batch searches under the
    /// same remaining-node snapshot, and a budget-stopped maze falls back to
    /// the cheaper L-path — so a budgeted run still produces guides covering
    /// every pin, just less congestion-aware ones, with `stats.outcome` set
    /// to [`Outcome::Degraded`].  A passed deadline or cancellation stops
    /// the pass at the next barrier with [`Outcome::Aborted`]; terminal
    /// gcells are always included in the guides, so even aborted runs emit
    /// structurally valid (pin-covering) guides.
    pub fn route_with_budget(
        &self,
        design: &Design,
        budget: &RouteBudget,
    ) -> (RouteGuides, GlobalStats) {
        let _route_span = tpl_trace::span!("global.route", nets = design.nets().len());
        tpl_fault::point!("global.route");
        let mut budget = budget.clone();
        if tpl_fault::trips_budget("global.budget") {
            // Injected budget exhaustion: behave exactly like a zero-node
            // budget and exercise the degraded path.
            budget.max_search_nodes = Some(0);
        }
        let budget = &budget;
        let mut run_outcome = Outcome::Complete;
        let cfg = &self.config;
        let grid = GCellGrid::build(design, cfg.tracks_per_gcell);
        // Planar capacity: layers above M1 contribute their tracks.
        let planar_layers = design.tech().num_layers().saturating_sub(1).max(1);
        let capacity = (cfg.capacity_per_layer * planar_layers) as u32;
        let mut edges = EdgeMap::new(grid.nx(), grid.ny(), capacity);
        let mut stats = GlobalStats::default();
        let pool: ScratchPool<MazeScratch> = ScratchPool::new(cfg.parallelism);

        // Net order: larger bounding boxes first (they have fewer detour
        // options), deterministic tie-break on id.
        let mut order: Vec<NetId> = design.nets().iter().map(|n| n.id()).collect();
        order.sort_by_key(|id| {
            let bbox = design
                .net_bbox(*id)
                .map(|b| b.half_perimeter())
                .unwrap_or(0);
            (Reverse(bbox), id.index())
        });

        // Terminal gcells are derived from the pin shapes exactly once per
        // net, then reused by every routing pass and by the final guide
        // conversion (which previously re-scanned all pins of the design).
        let net_terminals: Vec<Vec<(usize, usize)>> = design
            .nets()
            .iter()
            .map(|net| {
                let mut terminals: Vec<(usize, usize)> = net
                    .pins()
                    .iter()
                    .filter_map(|p| design.pin(*p).bbox())
                    .map(|b| grid.cell_of(b.center()))
                    .collect();
                terminals.sort_unstable();
                terminals.dedup();
                terminals
            })
            .collect();

        // Each net is decomposed into MST edges over its pin centres.
        let mut net_paths: Vec<Vec<Vec<(usize, usize)>>> = vec![Vec::new(); design.nets().len()];

        // Pass 0 routes everything; negotiation rounds rip up and reroute
        // the nets crossing overflowed edges with history cost in place.
        let mut queue: Vec<NetId> = order.clone();
        'rounds: for round in 0..=cfg.negotiation_rounds {
            let _round_span = tpl_trace::span!("global.round", round = round);
            tpl_fault::point!("global.round", round);
            if round > 0 {
                let overflowed = edges.bump_history_on_overflow(cfg.history_increment);
                if overflowed == 0 {
                    break;
                }
                let next: Vec<NetId> = order
                    .iter()
                    .copied()
                    .filter(|id| {
                        net_paths[id.index()]
                            .iter()
                            .any(|p| edges.path_overflowed(p))
                    })
                    .collect();
                if next.is_empty() {
                    break;
                }
                for &net_id in &next {
                    for p in &net_paths[net_id.index()] {
                        edges.add_path(p, -1);
                    }
                    net_paths[net_id.index()].clear();
                }
                queue = next;
            }

            let regions: Vec<Region> = queue
                .iter()
                .map(|id| {
                    let (x0, y0, x1, y1) = self.net_window(&grid, &net_terminals[id.index()]);
                    Region::new(x0 as i64, y0 as i64, x1 as i64, y1 as i64)
                })
                .collect();

            for batch in plan_batches(&regions) {
                // Budget accounting happens at this barrier only: every net
                // of the batch searches under the same remaining-node
                // snapshot, so the trip point is independent of worker count.
                let remaining = budget.remaining_nodes(stats.search_nodes as u64);
                let barrier_stop = if remaining == 0 {
                    Some(StopReason::SearchNodes)
                } else {
                    budget.interrupted()
                };
                if let Some(reason) = barrier_stop {
                    run_outcome = run_outcome.merge(Outcome::from_stop(reason));
                    // Skipped nets keep their previous-round paths (pass 0:
                    // none); the terminal gcells added below still give every
                    // net a pin-covering guide.
                    break 'rounds;
                }
                let nets: Vec<NetId> = batch.iter().map(|&i| queue[i]).collect();
                tpl_trace::value!("global.batch_size", nets.len());
                let routed = par_map_pooled(
                    cfg.parallelism,
                    &nets,
                    &pool,
                    || MazeScratch::new(grid.len(), &cfg.search),
                    |scratch, &net_id| {
                        self.route_net(
                            &grid,
                            &edges,
                            &net_terminals[net_id.index()],
                            scratch,
                            remaining,
                            budget,
                        )
                    },
                )
                .unwrap_or_else(|p| panic!("{p}"));

                // Barrier: commit demand and merge counters in net order.
                for (net_id, (paths, net_stats)) in nets.iter().copied().zip(routed) {
                    for p in &paths {
                        edges.add_path(p, 1);
                    }
                    stats.pattern_routed += net_stats.pattern_routed;
                    stats.maze_routed += net_stats.maze_routed;
                    stats.search_nodes += net_stats.search_nodes;
                    if let Some(reason) = net_stats.stop {
                        run_outcome = run_outcome.merge(Outcome::from_stop(reason));
                    }
                    tpl_trace::counter!("global.pattern_routed", net_stats.pattern_routed);
                    tpl_trace::counter!("global.maze_routed", net_stats.maze_routed);
                    tpl_trace::counter!("global.search_nodes", net_stats.search_nodes);
                    net_paths[net_id.index()] = paths;
                }
            }
        }
        stats.outcome = run_outcome;

        stats.overflowed_edges = edges.overflowed_edges();
        stats.total_edge_usage = net_paths
            .iter()
            .map(|paths| {
                paths
                    .iter()
                    .map(|p| p.len().saturating_sub(1))
                    .sum::<usize>()
            })
            .sum();

        // Convert paths into guides: the union of visited gcells expanded by
        // `guide_expansion` cells, emitted on every routing layer.  The pin
        // gcells collected before routing are included so single-gcell nets
        // still get a guide.
        let mut guides = RouteGuides::new(design.nets().len());
        for net in design.nets() {
            let idx = net.id().index();
            let mut cells: Vec<(usize, usize)> = net_paths[idx].iter().flatten().copied().collect();
            cells.extend_from_slice(&net_terminals[idx]);
            cells.sort_unstable();
            cells.dedup();
            let e = cfg.guide_expansion;
            for (gx, gy) in cells {
                let lo = grid.cell_rect(gx.saturating_sub(e), gy.saturating_sub(e));
                let hi = grid.cell_rect((gx + e).min(grid.nx() - 1), (gy + e).min(grid.ny() - 1));
                let rect = lo.hull(&hi);
                for layer in 0..design.tech().num_layers() {
                    guides.add(net.id(), LayerId::from(layer), rect);
                }
            }
        }
        (guides, stats)
    }

    /// The rectangular gcell window a net's routing is confined to: its
    /// terminal bounding box expanded by `maze_margin`, clamped to the grid.
    fn net_window(
        &self,
        grid: &GCellGrid,
        terminals: &[(usize, usize)],
    ) -> (usize, usize, usize, usize) {
        let Some(&(fx, fy)) = terminals.first() else {
            return (0, 0, 0, 0);
        };
        let (mut x0, mut y0, mut x1, mut y1) = (fx, fy, fx, fy);
        for &(x, y) in terminals {
            x0 = x0.min(x);
            y0 = y0.min(y);
            x1 = x1.max(x);
            y1 = y1.max(y);
        }
        let m = self.config.maze_margin;
        (
            x0.saturating_sub(m),
            y0.saturating_sub(m),
            (x1 + m).min(grid.nx() - 1),
            (y1 + m).min(grid.ny() - 1),
        )
    }

    /// Routes one net against a frozen edge map: MST topology, then
    /// L-pattern or window-bounded maze per 2-pin edge.  Pure with respect
    /// to `edges`, so nets of one batch can run concurrently.
    fn route_net(
        &self,
        grid: &GCellGrid,
        edges: &EdgeMap,
        terminals: &[(usize, usize)],
        scratch: &mut MazeScratch,
        node_limit: u64,
        budget: &RouteBudget,
    ) -> (Vec<Vec<(usize, usize)>>, NetRouteStats) {
        let mut net_stats = NetRouteStats::default();
        if terminals.len() < 2 {
            return (Vec::new(), net_stats);
        }
        let window = self.net_window(grid, terminals);
        let mst = minimum_spanning_tree(terminals);
        let mut paths = Vec::with_capacity(mst.len());
        for (a, b) in mst {
            let src = terminals[a];
            let dst = terminals[b];
            paths.push(self.route_two_pin(
                grid,
                edges,
                src,
                dst,
                window,
                scratch,
                &mut net_stats,
                node_limit,
                budget,
            ));
        }
        (paths, net_stats)
    }

    /// Routes a single 2-pin connection on the coarse grid.
    #[allow(clippy::too_many_arguments)]
    fn route_two_pin(
        &self,
        grid: &GCellGrid,
        edges: &EdgeMap,
        src: (usize, usize),
        dst: (usize, usize),
        window: (usize, usize, usize, usize),
        scratch: &mut MazeScratch,
        net_stats: &mut NetRouteStats,
        node_limit: u64,
        budget: &RouteBudget,
    ) -> Vec<(usize, usize)> {
        let cfg = &self.config;
        // Try both L shapes first.
        let l1 = l_path(src, dst, true);
        let l2 = l_path(src, dst, false);
        let c1 = path_cost(&l1, edges, cfg);
        let c2 = path_cost(&l2, edges, cfg);
        let best_l = if c1 <= c2 { (l1, c1) } else { (l2, c2) };
        // If the cheaper L avoids overflow entirely, take it.
        let clean_len = (best_l.0.len() as f64 - 1.0).max(0.0);
        if best_l.1 <= clean_len + 0.5 {
            net_stats.pattern_routed += 1;
            return best_l.0;
        }
        // Otherwise run a congestion-aware maze (Dijkstra) bounded to the
        // net's window.
        net_stats.maze_routed += 1;
        let _maze_span = tpl_trace::span!("global.maze");
        let (path, nodes, stop) = maze_route(
            grid, edges, src, dst, window, cfg, scratch, node_limit, budget,
        );
        net_stats.search_nodes += nodes;
        if let Some(reason) = stop {
            net_stats.stop = net_stats.stop.max(Some(reason));
        }
        // A stopped maze returns no path; degrade to the cheaper L so the
        // net stays connected on the coarse grid.
        path.unwrap_or(best_l.0)
    }
}

/// Manhattan-distance MST (Prim) over terminal gcells; returns index pairs.
fn minimum_spanning_tree(terminals: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let n = terminals.len();
    if n < 2 {
        return Vec::new();
    }
    let dist = |a: (usize, usize), b: (usize, usize)| -> i64 {
        (a.0 as i64 - b.0 as i64).abs() + (a.1 as i64 - b.1 as i64).abs()
    };
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![i64::MAX; n];
    let mut best_parent = vec![0usize; n];
    in_tree[0] = true;
    for i in 1..n {
        best_dist[i] = dist(terminals[0], terminals[i]);
        best_parent[i] = 0;
    }
    let mut result = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_d = i64::MAX;
        for i in 0..n {
            if !in_tree[i] && best_dist[i] < pick_d {
                pick = i;
                pick_d = best_dist[i];
            }
        }
        if pick == usize::MAX {
            break;
        }
        in_tree[pick] = true;
        result.push((best_parent[pick], pick));
        for i in 0..n {
            if !in_tree[i] {
                let d = dist(terminals[pick], terminals[i]);
                if d < best_dist[i] {
                    best_dist[i] = d;
                    best_parent[i] = pick;
                }
            }
        }
    }
    result
}

/// The two L-shaped gcell paths between two cells.
fn l_path(src: (usize, usize), dst: (usize, usize), horizontal_first: bool) -> Vec<(usize, usize)> {
    let mut path = vec![src];
    let mut cur = src;
    let step_x = |cur: &mut (usize, usize), path: &mut Vec<(usize, usize)>| {
        while cur.0 != dst.0 {
            cur.0 = if dst.0 > cur.0 { cur.0 + 1 } else { cur.0 - 1 };
            path.push(*cur);
        }
    };
    let step_y = |cur: &mut (usize, usize), path: &mut Vec<(usize, usize)>| {
        while cur.1 != dst.1 {
            cur.1 = if dst.1 > cur.1 { cur.1 + 1 } else { cur.1 - 1 };
            path.push(*cur);
        }
    };
    if horizontal_first {
        step_x(&mut cur, &mut path);
        step_y(&mut cur, &mut path);
    } else {
        step_y(&mut cur, &mut path);
        step_x(&mut cur, &mut path);
    }
    path
}

fn path_cost(path: &[(usize, usize)], edges: &EdgeMap, cfg: &GlobalConfig) -> f64 {
    let mut cost = 0.0;
    for w in path.windows(2) {
        let (ax, ay) = w[0];
        let (bx, by) = w[1];
        cost += if ay == by {
            edges.h_cost(ax.min(bx), ay, cfg)
        } else {
            edges.v_cost(ax, ay.min(by), cfg)
        };
    }
    cost
}

/// Best-first search on the gcell grid with congestion-aware edge costs,
/// confined to the `(x0, y0, x1, y1)` window (inclusive).  Any rectangular
/// window is connected, so the search always succeeds when both endpoints
/// lie inside it.  Also returns the number of frontier pops (search effort).
///
/// The search is knob-independent by construction: instead of stopping when
/// the goal pops, it drains every frontier entry whose key is within one
/// quantum of the goal's settled key.  Every vertex on an optimal path is
/// then settled to its exact minimal float distance whether or not the
/// admissible Manhattan heuristic reordered the expansions, and the path is
/// rebuilt by a *canonical backtrace* — walking from the goal and taking the
/// first neighbour (in fixed west/east/south/north order) whose settled
/// distance exactly accounts for the connecting edge.  The returned path is
/// therefore a pure function of the edge costs, not of expansion order.
///
/// `node_limit` caps the frontier pops (deterministic; the limit is a batch
/// snapshot, so it is worker-count independent), and `budget` supplies the
/// cooperative wall-clock/cancellation checks probed every few thousand
/// pops.  A stopped search returns no path plus the [`StopReason`]; callers
/// fall back to the L-path.
type MazeResult = (Option<Vec<(usize, usize)>>, usize, Option<StopReason>);

#[allow(clippy::too_many_arguments)]
fn maze_route(
    grid: &GCellGrid,
    edges: &EdgeMap,
    src: (usize, usize),
    dst: (usize, usize),
    window: (usize, usize, usize, usize),
    cfg: &GlobalConfig,
    scratch: &mut MazeScratch,
    node_limit: u64,
    budget: &RouteBudget,
) -> MazeResult {
    let (wx0, wy0, wx1, wy1) = window;
    let search = &cfg.search;
    let start = grid.index(src.0, src.1);
    let goal = grid.index(dst.0, dst.1);
    if start == goal {
        return (Some(vec![src]), 0, None);
    }
    // Admissible, consistent lower bound: every gcell step costs >= 1.0.
    let h = |x: usize, y: usize| -> f64 {
        if search.a_star {
            ((x as i64 - dst.0 as i64).abs() + (y as i64 - dst.1 as i64).abs()) as f64
        } else {
            0.0
        }
    };

    let MazeScratch {
        stamps,
        dist,
        queued_key,
        frontier,
    } = scratch;
    stamps.begin();
    frontier.clear();
    stamps.touch(start);
    dist[start] = 0.0;
    let start_key = search.key(h(src.0, src.1));
    queued_key[start] = start_key;
    frontier.push(start_key, start as u32);
    let mut popped = 0usize;
    let mut stop: Option<StopReason> = None;

    while let Some((k, raw)) = frontier.pop() {
        if popped as u64 >= node_limit {
            stop = Some(StopReason::SearchNodes);
            break;
        }
        if popped & INTERRUPT_PROBE_MASK == 0 {
            if let Some(reason) = budget.interrupted() {
                stop = Some(reason);
                break;
            }
        }
        popped += 1;
        let u = raw as usize;
        if !stamps.is_fresh(u) || k != queued_key[u] {
            continue; // stale entry (exact key comparison)
        }
        if stamps.is_fresh(goal) && k > search.key(dist[goal]) + 1 {
            // Every entry within one quantum of the goal's settled key has
            // been expanded: all optimal-path vertices hold their final
            // distances and the canonical backtrace below is exact.  The
            // one-quantum slack absorbs float-rounding noise at quantisation
            // boundaries.
            break;
        }
        let ux = u % grid.nx();
        let uy = u / grid.nx();
        let du = dist[u];
        let mut relax = |vx: usize, vy: usize, cost: f64, frontier: &mut Frontier| {
            let v = grid.index(vx, vy);
            let nd = du + cost;
            let fresh = stamps.is_fresh(v);
            if !fresh || nd < dist[v] {
                stamps.touch(v);
                dist[v] = nd;
                let nk = search.key(nd + h(vx, vy));
                if !fresh || queued_key[v] != nk {
                    queued_key[v] = nk;
                    frontier.push(nk, v as u32);
                }
            }
        };
        if ux < wx1 {
            relax(ux + 1, uy, edges.h_cost(ux, uy, cfg), frontier);
        }
        if ux > wx0 {
            relax(ux - 1, uy, edges.h_cost(ux - 1, uy, cfg), frontier);
        }
        if uy < wy1 {
            relax(ux, uy + 1, edges.v_cost(ux, uy, cfg), frontier);
        }
        if uy > wy0 {
            relax(ux, uy - 1, edges.v_cost(ux, uy - 1, cfg), frontier);
        }
    }

    if stop.is_some() {
        // A stopped search may not have settled the goal's true minimum, so
        // the canonical backtrace would not be reliable; report no path and
        // let the caller degrade to the L-pattern.
        return (None, popped, stop);
    }
    if !stamps.is_fresh(goal) {
        return (None, popped, None);
    }
    // Canonical backtrace: from the goal, take the first in-window
    // neighbour (west, east, south, north) whose settled distance plus the
    // connecting edge cost reproduces this vertex's distance bit-for-bit.
    // The settled distances are the exact minima over all path sums, so the
    // chosen predecessor — and hence the whole path — does not depend on
    // the order the search expanded vertices in.
    let mut path = vec![dst];
    let (mut cx, mut cy) = dst;
    while (cx, cy) != src {
        let cur = grid.index(cx, cy);
        let d = dist[cur];
        let mut step: Option<(usize, usize)> = None;
        let consider = |vx: usize, vy: usize, cost: f64, step: &mut Option<(usize, usize)>| {
            if step.is_none() {
                let v = grid.index(vx, vy);
                if stamps.is_fresh(v) && dist[v] + cost == d {
                    *step = Some((vx, vy));
                }
            }
        };
        if cx > wx0 {
            consider(cx - 1, cy, edges.h_cost(cx - 1, cy, cfg), &mut step);
        }
        if cx < wx1 {
            consider(cx + 1, cy, edges.h_cost(cx, cy, cfg), &mut step);
        }
        if cy > wy0 {
            consider(cx, cy - 1, edges.v_cost(cx, cy - 1, cfg), &mut step);
        }
        if cy < wy1 {
            consider(cx, cy + 1, edges.v_cost(cx, cy, cfg), &mut step);
        }
        let Some((px, py)) = step else {
            // Defensive: cannot happen for settled distances, but never loop.
            return (None, popped, None);
        };
        path.push((px, py));
        (cx, cy) = (px, py);
    }
    path.reverse();
    (Some(path), popped, None)
}

/// Convenience: the centre of a pin's bounding box (used by tests).
#[allow(dead_code)]
fn pin_center(design: &Design, pin: tpl_design::PinId) -> Point {
    design
        .pin(pin)
        .bbox()
        .map(|b| b.center())
        .unwrap_or(Point::ORIGIN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_design::{DesignBuilder, Technology};
    use tpl_geom::Rect;
    use tpl_ispd::CaseParams;

    #[test]
    fn mst_connects_all_terminals() {
        let terminals = vec![(0, 0), (5, 0), (5, 7), (1, 6), (9, 9)];
        let mst = minimum_spanning_tree(&terminals);
        assert_eq!(mst.len(), terminals.len() - 1);
        // Union-find check that the tree spans everything.
        let mut parent: Vec<usize> = (0..terminals.len()).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for (a, b) in mst {
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            parent[rb] = ra;
        }
        let root = find(&mut parent, 0);
        for i in 0..terminals.len() {
            assert_eq!(find(&mut parent, i), root);
        }
    }

    #[test]
    fn l_paths_have_manhattan_length() {
        let p = l_path((1, 1), (4, 5), true);
        assert_eq!(p.len(), 1 + 3 + 4);
        assert_eq!(*p.first().unwrap(), (1, 1));
        assert_eq!(*p.last().unwrap(), (4, 5));
        let q = l_path((4, 5), (1, 1), false);
        assert_eq!(q.len(), 8);
        // Consecutive cells are always 4-adjacent.
        for w in p.windows(2).chain(q.windows(2)) {
            let d = (w[0].0 as i64 - w[1].0 as i64).abs() + (w[0].1 as i64 - w[1].1 as i64).abs();
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn guides_cover_every_pin_of_every_net() {
        let design = CaseParams::ispd18_like(1).scaled(0.4).generate();
        let router = GlobalRouter::new(GlobalConfig::default());
        let guides = router.route(&design);
        for net in design.nets() {
            for pin in net.pins() {
                let (layer, rect) = design.pin(*pin).shapes()[0];
                assert!(
                    guides.covers(net.id(), layer, &rect),
                    "guide of {} misses pin {}",
                    net.name(),
                    design.pin(*pin).name()
                );
            }
        }
    }

    #[test]
    fn congestion_negotiation_reduces_or_keeps_overflow() {
        let design = CaseParams::ispd18_like(2).scaled(0.4).generate();
        let no_nego = GlobalRouter::new(GlobalConfig {
            negotiation_rounds: 0,
            ..GlobalConfig::default()
        });
        let with_nego = GlobalRouter::new(GlobalConfig::default());
        let (_, s0) = no_nego.route_with_stats(&design);
        let (_, s1) = with_nego.route_with_stats(&design);
        assert!(s1.overflowed_edges <= s0.overflowed_edges);
    }

    #[test]
    fn two_pin_straight_nets_route_with_patterns() {
        let mut b = DesignBuilder::new(
            "straight",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 800, 800),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(6, 6, 14, 14));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(706, 6, 714, 14));
        b.add_net("n", vec![p0, p1]);
        let d = b.build().unwrap();
        let (guides, stats) = GlobalRouter::new(GlobalConfig::default()).route_with_stats(&d);
        assert_eq!(stats.pattern_routed, 1);
        assert_eq!(stats.maze_routed, 0);
        assert!(guides.total_regions() > 0);
    }

    #[test]
    fn maze_route_finds_shortest_path_on_empty_grid() {
        let mut b = DesignBuilder::new(
            "m",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 1000, 1000),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(900, 900, 910, 910));
        b.add_net("n", vec![p0, p1]);
        let d = b.build().unwrap();
        let grid = GCellGrid::build(&d, 5);
        let edges = EdgeMap::new(grid.nx(), grid.ny(), 10);
        let window = (0, 0, grid.nx() - 1, grid.ny() - 1);
        let cfg = GlobalConfig::default();
        let mut scratch = MazeScratch::new(grid.len(), &cfg.search);
        let (path, nodes, stop) = maze_route(
            &grid,
            &edges,
            (0, 0),
            (5, 5),
            window,
            &cfg,
            &mut scratch,
            u64::MAX,
            &RouteBudget::default(),
        );
        assert_eq!(stop, None);
        let path = path.unwrap();
        assert_eq!(path.len(), 11);
        assert_eq!(path[0], (0, 0));
        assert_eq!(*path.last().unwrap(), (5, 5));
        assert!(nodes > 0);
    }

    #[test]
    fn a_tight_window_prunes_the_search() {
        let mut b = DesignBuilder::new(
            "w",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 1000, 1000),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(900, 900, 910, 910));
        b.add_net("n", vec![p0, p1]);
        let d = b.build().unwrap();
        let grid = GCellGrid::build(&d, 5);
        let edges = EdgeMap::new(grid.nx(), grid.ny(), 10);
        let cfg = GlobalConfig::default();
        let mut scratch = MazeScratch::new(grid.len(), &cfg.search);
        let full = (0, 0, grid.nx() - 1, grid.ny() - 1);
        let (wide_path, wide_nodes, _) = maze_route(
            &grid,
            &edges,
            (0, 0),
            (5, 5),
            full,
            &cfg,
            &mut scratch,
            u64::MAX,
            &RouteBudget::default(),
        );
        let (tight_path, tight_nodes, _) = maze_route(
            &grid,
            &edges,
            (0, 0),
            (5, 5),
            (0, 0, 5, 5),
            &cfg,
            &mut scratch,
            u64::MAX,
            &RouteBudget::default(),
        );
        // The bounded search finds an equally short path with fewer pops.
        assert_eq!(
            tight_path.as_ref().unwrap().len(),
            wide_path.as_ref().unwrap().len()
        );
        assert!(tight_nodes <= wide_nodes);
    }

    fn xorshift(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    /// Textbook O(V²) Dijkstra over the same congestion costs, returning the
    /// exact distance to `dst` (the float sums associate left-to-right along
    /// a path, exactly like the kernel's relaxations).
    fn reference_maze_cost(
        nx: usize,
        ny: usize,
        edges: &EdgeMap,
        src: (usize, usize),
        dst: (usize, usize),
        cfg: &GlobalConfig,
    ) -> f64 {
        let n = nx * ny;
        let mut dist = vec![f64::INFINITY; n];
        let mut done = vec![false; n];
        dist[src.1 * nx + src.0] = 0.0;
        loop {
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for i in 0..n {
                if !done[i] && dist[i] < best {
                    best = dist[i];
                    u = i;
                }
            }
            if u == usize::MAX {
                break;
            }
            done[u] = true;
            let (x, y) = (u % nx, u / nx);
            let mut relax = |tx: usize, ty: usize, cost: f64| {
                let t = ty * nx + tx;
                let nd = dist[u] + cost;
                if nd < dist[t] {
                    dist[t] = nd;
                }
            };
            if x > 0 {
                relax(x - 1, y, edges.h_cost(x - 1, y, cfg));
            }
            if x + 1 < nx {
                relax(x + 1, y, edges.h_cost(x, y, cfg));
            }
            if y > 0 {
                relax(x, y - 1, edges.v_cost(x, y - 1, cfg));
            }
            if y + 1 < ny {
                relax(x, y + 1, edges.v_cost(x, y, cfg));
            }
        }
        dist[dst.1 * nx + dst.0]
    }

    /// The cost of a returned path, summed src-to-dst like the search does.
    fn path_cost(path: &[(usize, usize)], edges: &EdgeMap, cfg: &GlobalConfig) -> f64 {
        let mut total = 0.0;
        for w in path.windows(2) {
            let ((ax, ay), (bx, by)) = (w[0], w[1]);
            total += if ay == by {
                edges.h_cost(ax.min(bx), ay, cfg)
            } else {
                edges.v_cost(ax, ay.min(by), cfg)
            };
        }
        total
    }

    /// Property test of the kernel's determinism contract in the global
    /// router: on random congestion maps (random history and demand), every
    /// knob combination returns the IDENTICAL path — not just an equal-cost
    /// one — and that path's cost matches a reference Dijkstra exactly.
    #[test]
    fn random_congestion_maps_yield_identical_paths_under_every_knob() {
        let mut b = DesignBuilder::new(
            "rc",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 1000, 1000),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(900, 900, 910, 910));
        b.add_net("n", vec![p0, p1]);
        let d = b.build().unwrap();
        let grid = GCellGrid::build(&d, 5);
        let (nx, ny) = (grid.nx(), grid.ny());
        let window = (0, 0, nx - 1, ny - 1);
        for seed in 1..=6u64 {
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut edges = EdgeMap::new(nx, ny, 3);
            for i in 0..edges.h_history.len() {
                edges.h_history[i] = (xorshift(&mut s) % 8) as f64 * 0.5;
                edges.h_demand[i] = (xorshift(&mut s) % 5) as u32;
            }
            for i in 0..edges.v_history.len() {
                edges.v_history[i] = (xorshift(&mut s) % 8) as f64 * 0.5;
                edges.v_demand[i] = (xorshift(&mut s) % 5) as u32;
            }
            let src = (
                (xorshift(&mut s) as usize) % nx,
                (xorshift(&mut s) as usize) % ny,
            );
            let dst = (
                (xorshift(&mut s) as usize) % nx,
                (xorshift(&mut s) as usize) % ny,
            );
            let base_cfg = GlobalConfig::default();
            let want = reference_maze_cost(nx, ny, &edges, src, dst, &base_cfg);
            let mut baseline: Option<Vec<(usize, usize)>> = None;
            for a_star in [false, true] {
                for bucket_queue in [false, true] {
                    let cfg = GlobalConfig {
                        search: SearchConfig {
                            a_star,
                            bucket_queue,
                            ..base_cfg.search
                        },
                        ..base_cfg
                    };
                    let mut scratch = MazeScratch::new(grid.len(), &cfg.search);
                    let (path, _, _) = maze_route(
                        &grid,
                        &edges,
                        src,
                        dst,
                        window,
                        &cfg,
                        &mut scratch,
                        u64::MAX,
                        &RouteBudget::default(),
                    );
                    let path = path.expect("full window always has a path");
                    assert!(
                        (path_cost(&path, &edges, &cfg) - want).abs() < 1e-9,
                        "seed {seed} a_star={a_star} bucket={bucket_queue}: cost drift"
                    );
                    match &baseline {
                        None => baseline = Some(path),
                        Some(reference) => assert_eq!(
                            &path, reference,
                            "seed {seed} a_star={a_star} bucket={bucket_queue}: path differs"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn budget_stopped_maze_degrades_to_l_paths() {
        let mut b = DesignBuilder::new(
            "m",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 1000, 1000),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(900, 900, 910, 910));
        b.add_net("n", vec![p0, p1]);
        let d = b.build().unwrap();
        let grid = GCellGrid::build(&d, 5);
        let edges = EdgeMap::new(grid.nx(), grid.ny(), 10);
        let window = (0, 0, grid.nx() - 1, grid.ny() - 1);
        let cfg = GlobalConfig::default();
        let mut scratch = MazeScratch::new(grid.len(), &cfg.search);
        let (path, nodes, stop) = maze_route(
            &grid,
            &edges,
            (0, 0),
            (5, 5),
            window,
            &cfg,
            &mut scratch,
            3,
            &RouteBudget::default(),
        );
        assert_eq!(path, None, "a stopped maze yields no path");
        assert_eq!(stop, Some(StopReason::SearchNodes));
        assert!(nodes <= 3);
    }

    #[test]
    fn zero_budget_run_still_covers_every_pin() {
        let design = CaseParams::ispd18_like(1).scaled(0.4).generate();
        let router = GlobalRouter::new(GlobalConfig::default());
        let budget = RouteBudget::with_max_search_nodes(0);
        let (guides, stats) = router.route_with_budget(&design, &budget);
        assert_eq!(stats.outcome, Outcome::Degraded(StopReason::SearchNodes));
        for net in design.nets() {
            for pin in net.pins() {
                let (layer, rect) = design.pin(*pin).shapes()[0];
                assert!(
                    guides.covers(net.id(), layer, &rect),
                    "degraded guide of {} misses a pin",
                    net.name()
                );
            }
        }
    }

    #[test]
    fn budgeted_global_run_is_identical_across_worker_counts() {
        let design = CaseParams::ispd18_like(2).scaled(0.4).generate();
        let budget = RouteBudget::with_max_search_nodes(50);
        let (base_guides, base_stats) =
            GlobalRouter::new(GlobalConfig::default()).route_with_budget(&design, &budget);
        for jobs in [2, 4] {
            let cfg = GlobalConfig {
                parallelism: Parallelism::new(jobs),
                ..GlobalConfig::default()
            };
            let (guides, stats) = GlobalRouter::new(cfg).route_with_budget(&design, &budget);
            assert_eq!(stats, base_stats, "budgeted stats at jobs={jobs}");
            assert_eq!(guides.total_regions(), base_guides.total_regions());
        }
    }

    #[test]
    fn worker_count_does_not_change_guides_or_stats() {
        let design = CaseParams::ispd18_like(1).scaled(0.4).generate();
        let (base_guides, base_stats) =
            GlobalRouter::new(GlobalConfig::default()).route_with_stats(&design);
        for jobs in [2, 4, 8] {
            let cfg = GlobalConfig {
                parallelism: Parallelism::new(jobs),
                ..GlobalConfig::default()
            };
            let (guides, stats) = GlobalRouter::new(cfg).route_with_stats(&design);
            assert_eq!(stats, base_stats, "stats at jobs={jobs}");
            assert_eq!(
                guides.total_regions(),
                base_guides.total_regions(),
                "guides at jobs={jobs}"
            );
        }
    }
}
