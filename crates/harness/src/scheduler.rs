//! The deterministic multi-threaded matrix scheduler.
//!
//! [`run_matrix`] fans a method × case matrix out over `jobs` worker threads
//! built on [`std::thread::scope`] — no thread pool crate, no channels.  The
//! job list is the case-major cross product of the inputs, workers claim jobs
//! through one atomic cursor, and every result lands in the slot of its job
//! index, so the returned `Vec<JobRecord>` is always in input order no matter
//! how many workers ran or in which order they finished.
//!
//! Each job runs under [`std::panic::catch_unwind`]: a crashing method/case
//! pair becomes a [`JobOutcome::Failed`] record instead of killing the run.
//!
//! On top of the panic isolation sits a **graceful-degradation ladder**: a
//! job whose attempt panics or ends non-[`Outcome::Complete`] (budget
//! exhaustion, deadline) is retried with progressively cheaper search
//! configurations — A* off, then a coarser key quantisation, then sequential
//! net routing — bounded by [`Degradation::ladder`].  The best record of any
//! attempt is kept, and every [`JobRecord`] reports how many `attempts` ran
//! and which `degradation` rung produced its record.

use crate::flows;
use crate::Method;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tpl_design::{Design, RouteGuides};
use tpl_grid::{Degradation, Outcome, RouteBudget, StopReason};
use tpl_ispd::Case;
use tpl_metrics::CaseRecord;
use tpl_trace::TaskPhases;

/// The lazily-shared preparation of one case, dropped after its last method.
struct CaseSlot {
    /// Methods of this case that have not finished yet; the worker that
    /// drops it to zero also drops the prepared data, so peak memory stays
    /// at the number of cases in flight rather than the whole suite.
    remaining: AtomicUsize,
    data: Mutex<Option<Arc<(Design, RouteGuides, Outcome)>>>,
}

/// Recovers the guard from a poisoned lock: the panic that poisoned it has
/// already been recorded as that job's failure, and the protected data
/// (either still-empty or fully prepared) is valid either way.
fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One case of the matrix, with its generated design and route guides shared
/// lazily across every method that runs on it.
///
/// The first method of a case to call [`get`](PreparedCase::get) pays for
/// generation and global routing; the other methods reuse the result.  The
/// preparation is deterministic, so sharing cannot change any record.
pub struct PreparedCase<'a> {
    case: &'a Case,
    slot: &'a CaseSlot,
    net_jobs: usize,
    a_star: bool,
    bucket_queue: bool,
    degradation: Degradation,
    max_search_nodes: Option<u64>,
    deadline_seconds: Option<f64>,
}

impl PreparedCase<'_> {
    /// The case this preparation belongs to.
    pub fn case(&self) -> &Case {
        self.case
    }

    /// Intra-case net-level worker count (`RunOptions::net_jobs`).  Methods
    /// that support it thread this into their router configuration; the
    /// routers guarantee results are identical for every value.
    pub fn net_jobs(&self) -> usize {
        self.net_jobs
    }

    /// Whether goal-directed A* is enabled (`RunOptions::a_star`).  Methods
    /// with a search kernel thread this into their router configuration.
    pub fn a_star(&self) -> bool {
        self.a_star
    }

    /// Whether the bucket priority queue is enabled
    /// (`RunOptions::bucket_queue`).  Never changes any record — the kernel
    /// guarantees identical pop order with either frontier.
    pub fn bucket_queue(&self) -> bool {
        self.bucket_queue
    }

    /// The degradation rung this attempt runs at.  Methods with a search
    /// kernel apply it to their `SearchConfig` (and net-level worker count)
    /// via [`Degradation::apply`] / [`Degradation::degraded_net_jobs`].
    pub fn degradation(&self) -> Degradation {
        self.degradation
    }

    /// A fresh [`RouteBudget`] for this attempt.  The search-node ceiling is
    /// deterministic; the wall-clock deadline (if any) starts counting at the
    /// moment of this call, i.e. at attempt start.
    pub fn budget(&self) -> RouteBudget {
        RouteBudget {
            max_search_nodes: self.max_search_nodes,
            deadline: self
                .deadline_seconds
                .map(|s| Instant::now() + Duration::from_secs_f64(s)),
            ..RouteBudget::default()
        }
    }

    /// The generated design, its route guides, and the guide-generation
    /// [`Outcome`], built on first use.
    ///
    /// Preparation always runs under the requested (non-degraded) search
    /// knobs, the canonical fault scope `prepare/<case>`, and a node-count
    /// budget only (no deadline, no cancel token): whichever job or attempt
    /// pays for it, the shared result is identical by construction.
    pub fn get(&self) -> Arc<(Design, RouteGuides, Outcome)> {
        let mut guard = lock_ignoring_poison(&self.slot.data);
        if let Some(prepared) = guard.as_ref() {
            return prepared.clone();
        }
        // Preparation is shared across methods, and *which* job pays for it
        // depends on scheduling — suspend task attribution so per-task phase
        // aggregates stay independent of the worker count.
        let _untasked = tpl_trace::untasked();
        let _prepare_span = tpl_trace::span!("harness.prepare");
        let _fault_scope = tpl_fault::scope(&format!("prepare/{}", self.case.name()));
        tpl_fault::point!("harness.prepare");
        let budget = RouteBudget {
            max_search_nodes: self.max_search_nodes,
            ..RouteBudget::default()
        };
        let prepared = Arc::new(flows::prepare_with_budget(
            self.case,
            self.net_jobs,
            self.a_star,
            self.bucket_queue,
            &budget,
        ));
        *guard = Some(prepared.clone());
        prepared
    }
}

/// Execution options of one matrix run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOptions {
    /// Number of worker threads (clamped to at least 1 and at most the number
    /// of jobs in the matrix).
    pub jobs: usize,
    /// Zero out wall-clock fields in the records so two runs of the same
    /// matrix produce byte-identical reports (used by `--deterministic` and
    /// the determinism tests; conflict/stitch/cost columns are always
    /// deterministic).
    pub deterministic: bool,
    /// Intra-case net-level worker count handed to each router (clamped to
    /// at least 1).  Composes with `jobs`: `jobs` cases run concurrently,
    /// each routing its nets on `net_jobs` workers.  Never changes any
    /// record — the routers are worker-count-invariant by construction.
    pub net_jobs: usize,
    /// Collect per-job `tpl-trace` phase aggregates: each job runs under its
    /// own trace task and its [`TaskPhases`] are attached to the
    /// [`JobRecord`].  Requires tracing to be enabled globally
    /// ([`tpl_trace::enable`]); a no-op otherwise.  Never changes the
    /// primary report ([`RunReport::to_json`](crate::RunReport::to_json)
    /// ignores phases) — they surface only in trace exports.
    pub trace: bool,
    /// Goal-directed A* in the search kernels (default on).  The global
    /// router's solution is invariant to this knob; the Mr.TPL colour-state
    /// search preserves path cost but may pick different equal-cost ties, so
    /// turning it off can change mrtpl records.
    pub a_star: bool,
    /// Bucket (Dial) priority queue in the search kernels (default on).
    /// Guaranteed to never change any record — pop order is identical to the
    /// binary-heap fallback by construction.
    pub bucket_queue: bool,
    /// Search-node budget per attempt (`--budget`).  Deterministic: the
    /// routers account nodes at batch barriers, so a budgeted run produces
    /// identical records for every `jobs`/`net_jobs` value.  `None` means
    /// unlimited.
    pub max_search_nodes: Option<u64>,
    /// Wall-clock deadline per attempt in seconds (`--deadline`).  By nature
    /// *not* deterministic — where the deadline lands depends on machine
    /// speed — so deterministic byte-comparisons should not set it.
    pub deadline_seconds: Option<f64>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            jobs: 1,
            deterministic: false,
            net_jobs: 1,
            trace: false,
            a_star: true,
            bucket_queue: true,
            max_search_nodes: None,
            deadline_seconds: None,
        }
    }
}

/// How one (method, case) job ended.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// The method completed and produced a record.
    Ok(CaseRecord),
    /// The method panicked; the payload is the panic message.
    Failed {
        /// The panic message (or a placeholder for non-string payloads).
        error: String,
        /// The innermost `tpl-trace` span open where the panic originated —
        /// the phase the crash should be attributed to.  `None` with tracing
        /// disabled, so untraced reports carry no extra field.
        phase: Option<String>,
    },
}

/// The scheduler's result for one (method, case) job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Name of the method that ran.
    pub method: String,
    /// Name of the case it ran on.
    pub case: String,
    /// Whether it produced a record or crashed.
    pub outcome: JobOutcome,
    /// Real elapsed time of the job, measured even in deterministic mode
    /// (where `CaseRecord::runtime_seconds` is zeroed for byte-stable
    /// reports).  Surfaces through the `timings.json` sidecar, never through
    /// the byte-compared report.
    pub wall_seconds: f64,
    /// Per-job trace phase aggregates (only with [`RunOptions::trace`] and
    /// tracing enabled).  Deterministic runs zero the wall-clock components,
    /// leaving counts and sums that are worker-count-invariant.
    pub phases: Option<TaskPhases>,
    /// How many ladder attempts actually executed for this job (1 when the
    /// first attempt completed, up to [`Degradation::ladder`]`.len()`).
    pub attempts: usize,
    /// The degradation rung that produced the kept record (or the last rung
    /// tried, if every attempt failed).
    pub degradation: Degradation,
}

/// Equality compares the deterministic content of a job — method, case,
/// outcome, attempts/degradation, and phase aggregates — and ignores
/// `wall_seconds`, which is measurement metadata that legitimately differs
/// between otherwise identical runs.  The determinism tests rely on exactly
/// this contract.
impl PartialEq for JobRecord {
    fn eq(&self, other: &Self) -> bool {
        self.method == other.method
            && self.case == other.case
            && self.outcome == other.outcome
            && self.phases == other.phases
            && self.attempts == other.attempts
            && self.degradation == other.degradation
    }
}

impl JobRecord {
    /// The case record, if the job succeeded.
    pub fn record(&self) -> Option<&CaseRecord> {
        match &self.outcome {
            JobOutcome::Ok(record) => Some(record),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// The panic message, if the job failed.
    pub fn error(&self) -> Option<&str> {
        match &self.outcome {
            JobOutcome::Ok(_) => None,
            JobOutcome::Failed { error, .. } => Some(error),
        }
    }

    /// The trace phase a failed job's panic originated in, if known.
    pub fn failure_phase(&self) -> Option<&str> {
        match &self.outcome {
            JobOutcome::Ok(_) => None,
            JobOutcome::Failed { phase, .. } => phase.as_deref(),
        }
    }
}

/// Runs every method on every case and collects records in input order.
///
/// The job list is case-major: all methods of `cases[0]`, then all methods of
/// `cases[1]`, and so on — the order a per-case comparison table wants.
/// Record order and every non-wall-clock field are independent of
/// `options.jobs`; with `options.deterministic` set (runtime fields zeroed)
/// records are byte-for-byte independent of it.
pub fn run_matrix(methods: &[&dyn Method], cases: &[Case], options: &RunOptions) -> Vec<JobRecord> {
    let jobs: Vec<(usize, usize)> = cases
        .iter()
        .enumerate()
        .flat_map(|(c, _)| (0..methods.len()).map(move |m| (m, c)))
        .collect();
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = options.jobs.clamp(1, jobs.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobRecord>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let prepared: Vec<CaseSlot> = cases
        .iter()
        .map(|_| CaseSlot {
            remaining: AtomicUsize::new(methods.len()),
            data: Mutex::new(None),
        })
        .collect();
    // One contiguous block of trace task ids, `base + job index` each, so
    // per-job phase aggregates never collide across concurrent runs.
    let tracing = options.trace && tpl_trace::enabled();
    let task_base = if tracing {
        Some(tpl_trace::alloc_tasks(jobs.len() as u64))
    } else {
        None
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                {
                    let _worker_span = tpl_trace::span!("harness.worker");
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= jobs.len() {
                            break;
                        }
                        tpl_trace::value!("harness.queue_depth", jobs.len() - index);
                        let (m, c) = jobs[index];
                        let task = task_base.map(|base| base + index as u64);
                        let record = run_job(methods[m], &cases[c], &prepared[c], options, task);
                        if prepared[c].remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            lock_ignoring_poison(&prepared[c].data).take();
                        }
                        *slots[index].lock().unwrap() = Some(record);
                    }
                }
                // Scope joins do not wait for TLS destructors; flush here so
                // every event is visible once run_matrix returns.
                tpl_trace::flush();
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every job slot is filled before the scope ends")
        })
        .collect()
}

/// Runs one (method, case) job with panic isolation and the degradation
/// ladder.  Case preparation runs inside the same isolation, so a crash
/// while generating a case also becomes a failed record.
///
/// Each ladder rung is one attempt under [`catch_unwind`].  An attempt that
/// returns a [`Outcome::Complete`] record (or is cancelled) ends the ladder;
/// a panic or a budget-degraded/aborted record triggers a retry at the next
/// cheaper rung.  The best record across attempts is kept — smallest
/// [`Outcome`], earliest rung on ties, so a clean early record is never
/// replaced by a later, more degraded one.  If no attempt produced a record,
/// the job fails with the last panic's message and phase.
///
/// With `task` set the whole job (all attempts) runs under that trace task
/// id and its aggregated [`TaskPhases`] are collected into the record;
/// wall-clock time is measured regardless (even in deterministic mode, where
/// only the byte-compared `CaseRecord::runtime_seconds` is zeroed).
fn run_job(
    method: &dyn Method,
    case: &Case,
    slot: &CaseSlot,
    options: &RunOptions,
    task: Option<u64>,
) -> JobRecord {
    // Any panic span left behind by earlier work on this thread is stale.
    let _ = tpl_trace::take_panic_span();
    let task_guard = task.map(tpl_trace::task);
    let started = Instant::now();

    let ladder = Degradation::ladder();
    let mut best: Option<(CaseRecord, Degradation)> = None;
    let mut last_failure: Option<(String, Option<String>)> = None;
    let mut attempts = 0;
    for &rung in &ladder {
        attempts += 1;
        let prepared = PreparedCase {
            case,
            slot,
            net_jobs: options.net_jobs.max(1),
            a_star: options.a_star,
            bucket_queue: options.bucket_queue,
            degradation: rung,
            max_search_nodes: options.max_search_nodes,
            deadline_seconds: options.deadline_seconds,
        };
        // Every attempt runs under its own fault scope, so a seeded fault
        // plan that crashes attempt 1 does not automatically crash the
        // retries — exactly the recovery path the ladder exists to exercise.
        let scope_label = format!("{}/{}/a{}", method.name(), case.name(), attempts);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _fault_scope = tpl_fault::scope(&scope_label);
            let _execute_span = tpl_trace::span!("harness.execute");
            tpl_fault::point!("harness.execute");
            method.run(&prepared)
        }));
        match result {
            Ok(record) => {
                let done = record.outcome.is_complete()
                    || record.outcome == Outcome::Aborted(StopReason::Cancelled);
                let better = match &best {
                    None => true,
                    Some((kept, _)) => record.outcome < kept.outcome,
                };
                if better {
                    best = Some((record, rung));
                }
                if done {
                    break;
                }
            }
            Err(payload) => {
                last_failure = Some((
                    panic_message(payload.as_ref()),
                    tpl_trace::take_panic_span().map(str::to_string),
                ));
            }
        }
    }

    let wall_seconds = started.elapsed().as_secs_f64();
    drop(task_guard);
    let (outcome, degradation) = match best {
        Some((mut record, rung)) => {
            if options.deterministic {
                record.runtime_seconds = 0.0;
            }
            (JobOutcome::Ok(record), rung)
        }
        None => {
            let (error, phase) = last_failure
                .unwrap_or_else(|| ("job produced neither record nor panic".to_string(), None));
            (JobOutcome::Failed { error, phase }, ladder[attempts - 1])
        }
    };
    let phases = task.and_then(|id| {
        let mut phases = tpl_trace::take_task_phases(id)?;
        if options.deterministic {
            // Counts and sums are worker-count-invariant; durations are not.
            phases.zero_times();
        }
        Some(phases)
    });
    JobRecord {
        method: method.name().to_string(),
        case: case.name().to_string(),
        outcome,
        wall_seconds,
        phases,
        attempts,
        degradation,
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap deterministic stub: the record is a pure function of the case
    /// parameters, no routing involved.
    struct Stub {
        name: &'static str,
        weight: usize,
    }

    impl Method for Stub {
        fn name(&self) -> &'static str {
            self.name
        }

        fn description(&self) -> &'static str {
            "test stub"
        }

        fn run(&self, case: &PreparedCase) -> CaseRecord {
            let params = case.case().params().expect("stub runs on synthetic cases");
            CaseRecord {
                case: params.name.clone(),
                conflicts: params.num_nets * self.weight,
                stitches: params.name.len(),
                cost: params.num_nets as f64 * 1.5,
                runtime_seconds: 0.25,
                ..CaseRecord::default()
            }
        }
    }

    struct PanicsOn {
        substring: &'static str,
    }

    impl Method for PanicsOn {
        fn name(&self) -> &'static str {
            "panics"
        }

        fn description(&self) -> &'static str {
            "test stub that panics on matching cases"
        }

        fn run(&self, case: &PreparedCase) -> CaseRecord {
            let name = case.case().name();
            assert!(!name.contains(self.substring), "injected failure on {name}");
            CaseRecord {
                case: name.to_string(),
                ..CaseRecord::default()
            }
        }
    }

    /// Panics on the first `failures` calls per instance, then succeeds,
    /// reporting which degradation rung the successful attempt ran at.
    struct FlakyStub {
        failures: usize,
        calls: AtomicUsize,
    }

    impl Method for FlakyStub {
        fn name(&self) -> &'static str {
            "flaky"
        }

        fn description(&self) -> &'static str {
            "test stub that recovers after a bounded number of panics"
        }

        fn run(&self, case: &PreparedCase) -> CaseRecord {
            let call = self.calls.fetch_add(1, Ordering::Relaxed);
            assert!(call >= self.failures, "transient failure #{call}");
            CaseRecord {
                case: case.case().name().to_string(),
                conflicts: case.degradation() as usize,
                ..CaseRecord::default()
            }
        }
    }

    /// Always returns a budget-degraded record, so the ladder never stops
    /// early and every rung is tried.
    struct AlwaysDegraded;

    impl Method for AlwaysDegraded {
        fn name(&self) -> &'static str {
            "degraded"
        }

        fn description(&self) -> &'static str {
            "test stub whose records always report a budget trip"
        }

        fn run(&self, case: &PreparedCase) -> CaseRecord {
            CaseRecord {
                case: case.case().name().to_string(),
                conflicts: case.degradation() as usize,
                outcome: Outcome::Degraded(StopReason::SearchNodes),
                ..CaseRecord::default()
            }
        }
    }

    fn tiny_cases(n: usize) -> Vec<Case> {
        (1..=n)
            .map(|i| Case::synthetic(tpl_ispd::CaseParams::ispd18_like(i)))
            .collect()
    }

    #[test]
    fn empty_matrix_yields_no_records() {
        let options = RunOptions::default();
        assert!(run_matrix(&[], &tiny_cases(3), &options).is_empty());
        let stub = Stub {
            name: "a",
            weight: 1,
        };
        assert!(run_matrix(&[&stub], &[], &options).is_empty());
    }

    #[test]
    fn records_are_case_major_in_input_order() {
        let a = Stub {
            name: "a",
            weight: 1,
        };
        let b = Stub {
            name: "b",
            weight: 2,
        };
        let cases = tiny_cases(3);
        let records = run_matrix(
            &[&a, &b],
            &cases,
            &RunOptions {
                jobs: 4,
                deterministic: false,
                ..RunOptions::default()
            },
        );
        assert_eq!(records.len(), 6);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.method, if i % 2 == 0 { "a" } else { "b" });
            assert_eq!(record.case, cases[i / 2].name());
        }
    }

    #[test]
    fn worker_count_does_not_change_records() {
        let a = Stub {
            name: "a",
            weight: 3,
        };
        let b = Stub {
            name: "b",
            weight: 7,
        };
        let cases = tiny_cases(10);
        let baseline = run_matrix(
            &[&a, &b],
            &cases,
            &RunOptions {
                jobs: 1,
                deterministic: false,
                ..RunOptions::default()
            },
        );
        for jobs in [2, 5, 16, 64] {
            let parallel = run_matrix(
                &[&a, &b],
                &cases,
                &RunOptions {
                    jobs,
                    deterministic: false,
                    ..RunOptions::default()
                },
            );
            assert_eq!(baseline, parallel, "jobs = {jobs}");
        }
    }

    #[test]
    fn deterministic_mode_zeroes_runtime() {
        let a = Stub {
            name: "a",
            weight: 1,
        };
        let records = run_matrix(
            &[&a],
            &tiny_cases(2),
            &RunOptions {
                jobs: 2,
                deterministic: true,
                ..RunOptions::default()
            },
        );
        for record in records {
            assert_eq!(record.record().unwrap().runtime_seconds, 0.0);
        }
    }

    #[test]
    fn a_flaky_job_recovers_on_a_ladder_retry() {
        let flaky = FlakyStub {
            failures: 1,
            calls: AtomicUsize::new(0),
        };
        let records = run_matrix(&[&flaky], &tiny_cases(1), &RunOptions::default());
        assert_eq!(records.len(), 1);
        let record = records[0].record().expect("retry should have succeeded");
        assert_eq!(records[0].attempts, 2);
        assert_eq!(records[0].degradation, Degradation::NoAStar);
        assert_eq!(record.conflicts, Degradation::NoAStar as usize);
    }

    #[test]
    fn a_degraded_job_tries_every_rung_and_keeps_the_earliest() {
        let records = run_matrix(&[&AlwaysDegraded], &tiny_cases(1), &RunOptions::default());
        assert_eq!(records.len(), 1);
        let record = records[0].record().expect("degraded records are kept");
        assert_eq!(records[0].attempts, Degradation::ladder().len());
        // All rungs tied on outcome, so the first (least degraded) record wins.
        assert_eq!(records[0].degradation, Degradation::None);
        assert_eq!(record.conflicts, Degradation::None as usize);
        assert_eq!(record.outcome, Outcome::Degraded(StopReason::SearchNodes));
    }

    #[test]
    fn an_exhausted_ladder_reports_the_last_rung() {
        let flaky = FlakyStub {
            failures: usize::MAX,
            calls: AtomicUsize::new(0),
        };
        let records = run_matrix(&[&flaky], &tiny_cases(1), &RunOptions::default());
        assert_eq!(records.len(), 1);
        assert!(records[0].error().unwrap().contains("transient failure"));
        assert_eq!(records[0].attempts, Degradation::ladder().len());
        assert_eq!(
            records[0].degradation,
            *Degradation::ladder().last().unwrap()
        );
    }

    #[test]
    fn a_panicking_job_becomes_a_failed_record() {
        let good = Stub {
            name: "a",
            weight: 1,
        };
        let bad = PanicsOn { substring: "test2" };
        let cases = tiny_cases(3);
        let records = run_matrix(&[&good, &bad], &cases, &RunOptions::default());
        assert_eq!(records.len(), 6);
        let failed: Vec<&JobRecord> = records.iter().filter(|r| r.error().is_some()).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].method, "panics");
        assert!(failed[0].case.contains("test2"));
        assert!(failed[0].error().unwrap().contains("injected failure"));
        // Every other job still produced a record.
        assert_eq!(records.iter().filter(|r| r.record().is_some()).count(), 5);
    }
}
