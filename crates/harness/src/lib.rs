//! Parallel, deterministic suite-execution engine for the Mr.TPL
//! reproduction.
//!
//! The paper evaluates Mr.TPL against three baselines over two ten-case
//! suites; this crate owns "run method M on case C" as a first-class job so
//! every consumer (the `mrtpl-bench` CLI, the `table2`/`table3` presets, CI
//! smoke runs) shares one execution layer:
//!
//! * [`Method`] + [`MethodRegistry`] — the four flows of the paper
//!   (`mrtpl`, `dac12`, `drcu`, `decompose`) behind one trait, selectable by
//!   name.
//! * [`run_matrix`] — a scheduler on [`std::thread::scope`] that fans the
//!   method × case matrix over `--jobs N` workers with per-job panic
//!   isolation (a crashing case becomes a failed [`JobRecord`], not a dead
//!   run) and stable input-order collection, so record order and every
//!   non-wall-clock field are independent of the worker count.  Jobs run
//!   under an optional [`RouteBudget`] and retry down a
//!   [`Degradation`] ladder on panic or budget exhaustion, recording
//!   `outcome`/`attempts`/`degradation` per record.
//! * [`RunReport`] — a hand-rolled (serde-free) JSON report next to the
//!   plain-text paper tables of `tpl-metrics`.
//!
//! # Examples
//!
//! ```
//! use tpl_harness::{run_matrix, MethodRegistry, RunOptions};
//! use tpl_ispd::{run_suite, Suite};
//!
//! let registry = MethodRegistry::builtin();
//! let methods = registry.select("dac12,mrtpl").unwrap();
//! let cases = run_suite(Suite::Ispd18, &[1], 0.25);
//! let records = run_matrix(&methods, &cases, &RunOptions { jobs: 2, ..RunOptions::default() });
//! assert_eq!(records.len(), 2);
//! assert!(records.iter().all(|r| r.record().is_some()));
//! ```

#![warn(missing_docs)]

pub mod flows;
pub mod json;
mod method;
mod report;
mod scheduler;

pub use method::{Dac12Method, DecomposeMethod, DrCuMethod, Method, MethodRegistry, MrTplMethod};
pub use report::{InputProvenance, RunReport};
pub use scheduler::{run_matrix, JobOutcome, JobRecord, PreparedCase, RunOptions};
pub use tpl_grid::{CancelToken, Degradation, Outcome, RouteBudget, StopReason};
pub use tpl_trace::TaskPhases;
