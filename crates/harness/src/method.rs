//! The [`Method`] trait and the registry of built-in flows.

use crate::flows;
use crate::scheduler::PreparedCase;
use mrtpl_core::MrTplConfig;
use tpl_dac12::Dac12Config;
use tpl_decompose::DecomposeConfig;
use tpl_drcu::DrCuConfig;
use tpl_metrics::CaseRecord;
use tpl_par::Parallelism;

/// A routing/decomposition flow the harness can schedule.
///
/// A method turns one benchmark case into one [`CaseRecord`]: it takes the
/// case's design and route guides from the scheduler's shared
/// [`PreparedCase`] (prepared once per case, however many methods run on
/// it), runs its flow and scores the result.  Methods must be [`Sync`]
/// because the scheduler shares them across worker threads, and `run` must
/// be a pure function of the case so results do not depend on scheduling
/// order.
pub trait Method: Sync {
    /// Registry name, e.g. `"mrtpl"`.
    fn name(&self) -> &'static str;

    /// One-line human description for `--list-methods`.
    fn description(&self) -> &'static str;

    /// Runs the flow on one case and returns its evaluation record.
    fn run(&self, case: &PreparedCase) -> CaseRecord;
}

/// Mr.TPL itself (the paper's contribution), from `mrtpl-core`.
#[derive(Debug, Default)]
pub struct MrTplMethod {
    /// Router configuration.
    pub config: MrTplConfig,
}

impl Method for MrTplMethod {
    fn name(&self) -> &'static str {
        "mrtpl"
    }

    fn description(&self) -> &'static str {
        "Mr.TPL multi-pin TPL-aware detailed router (the paper's method)"
    }

    fn run(&self, case: &PreparedCase) -> CaseRecord {
        let prepared = case.get();
        let (design, guides, prep_outcome) = &*prepared;
        // The scheduler's `--net-jobs` and search knobs compose with (and
        // override) the method's own defaults; determinism is guaranteed by
        // the router.  The attempt's degradation rung then cheapens the
        // search config and may force sequential net routing.
        let degradation = case.degradation();
        let mut config = MrTplConfig {
            parallelism: Parallelism::new(degradation.degraded_net_jobs(case.net_jobs())),
            ..self.config
        };
        config.search.a_star = case.a_star();
        config.search.bucket_queue = case.bucket_queue();
        config.search = degradation.apply(config.search);
        let mut record = flows::run_mrtpl_budgeted(design, guides, &config, &case.budget()).0;
        record.outcome = record.outcome.merge(*prep_outcome);
        record
    }
}

/// The DAC'12 vertex-splitting TPL-aware routing baseline, from `tpl-dac12`.
#[derive(Debug, Default)]
pub struct Dac12Method {
    /// Router configuration.
    pub config: Dac12Config,
}

impl Method for Dac12Method {
    fn name(&self) -> &'static str {
        "dac12"
    }

    fn description(&self) -> &'static str {
        "DAC'12 vertex-splitting TPL-aware routing baseline"
    }

    fn run(&self, case: &PreparedCase) -> CaseRecord {
        let prepared = case.get();
        let (design, guides, prep_outcome) = &*prepared;
        let mut record = flows::run_dac12(design, guides, &self.config).0;
        record.outcome = record.outcome.merge(*prep_outcome);
        record
    }
}

/// The colour-blind Dr.CU-like detailed router alone, from `tpl-drcu`.
#[derive(Debug, Default)]
pub struct DrCuMethod {
    /// Router configuration.
    pub config: DrCuConfig,
}

impl Method for DrCuMethod {
    fn name(&self) -> &'static str {
        "drcu"
    }

    fn description(&self) -> &'static str {
        "colour-blind Dr.CU-like router (no colouring; conflict/stitch columns n/a)"
    }

    fn run(&self, case: &PreparedCase) -> CaseRecord {
        let prepared = case.get();
        let (design, guides, prep_outcome) = &*prepared;
        let mut record = flows::run_drcu(design, guides, &self.config).0;
        record.outcome = record.outcome.merge(*prep_outcome);
        record
    }
}

/// Route colour-blind, then decompose OpenMPL-style (`tpl-drcu` +
/// `tpl-decompose`).
#[derive(Debug, Default)]
pub struct DecomposeMethod {
    /// Configuration of the colour-blind routing stage.
    pub route: DrCuConfig,
    /// Configuration of the decomposition stage.
    pub decompose: DecomposeConfig,
}

impl Method for DecomposeMethod {
    fn name(&self) -> &'static str {
        "decompose"
    }

    fn description(&self) -> &'static str {
        "Dr.CU-like routing followed by OpenMPL-style layout decomposition"
    }

    fn run(&self, case: &PreparedCase) -> CaseRecord {
        let prepared = case.get();
        let (design, guides, prep_outcome) = &*prepared;
        let mut record = flows::run_decompose(design, guides, &self.route, &self.decompose).0;
        record.outcome = record.outcome.merge(*prep_outcome);
        record
    }
}

/// A named collection of [`Method`]s, looked up by the CLI's `--methods` flag.
pub struct MethodRegistry {
    methods: Vec<Box<dyn Method>>,
}

impl MethodRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MethodRegistry {
            methods: Vec::new(),
        }
    }

    /// The four flows the paper evaluates, with default configurations:
    /// `mrtpl`, `dac12`, `drcu`, `decompose`.
    pub fn builtin() -> Self {
        let mut registry = MethodRegistry::new();
        registry.register(Box::new(MrTplMethod::default()));
        registry.register(Box::new(Dac12Method::default()));
        registry.register(Box::new(DrCuMethod::default()));
        registry.register(Box::new(DecomposeMethod::default()));
        registry
    }

    /// Adds a method; a method with the same name is replaced.
    pub fn register(&mut self, method: Box<dyn Method>) {
        let name = method.name();
        self.methods.retain(|m| m.name() != name);
        self.methods.push(method);
    }

    /// Registered method names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.methods.iter().map(|m| m.name()).collect()
    }

    /// Looks a method up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Method> {
        self.methods
            .iter()
            .find(|m| m.name() == name)
            .map(|m| m.as_ref())
    }

    /// Iterates over the registered methods, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Method> {
        self.methods.iter().map(|m| m.as_ref())
    }

    /// Resolves a comma-separated `--methods` specification into methods, in
    /// the order given.  Unknown and repeated names are errors: a duplicate
    /// would double-count totals and emit duplicate keys in the JSON report.
    pub fn select(&self, spec: &str) -> Result<Vec<&dyn Method>, String> {
        let mut selected: Vec<&dyn Method> = Vec::new();
        for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if selected.iter().any(|m| m.name() == name) {
                return Err(format!("method `{name}` selected twice"));
            }
            match self.get(name) {
                Some(m) => selected.push(m),
                None => {
                    return Err(format!(
                        "unknown method `{name}`; available: {}",
                        self.names().join(", ")
                    ))
                }
            }
        }
        if selected.is_empty() {
            return Err("no methods selected".to_string());
        }
        Ok(selected)
    }
}

impl Default for MethodRegistry {
    fn default() -> Self {
        MethodRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_all_four_flows() {
        let registry = MethodRegistry::builtin();
        assert_eq!(
            registry.names(),
            vec!["mrtpl", "dac12", "drcu", "decompose"]
        );
        for name in registry.names() {
            assert!(registry.get(name).is_some());
            assert!(!registry.get(name).unwrap().description().is_empty());
        }
    }

    #[test]
    fn select_preserves_request_order_and_rejects_unknown() {
        let registry = MethodRegistry::builtin();
        let picked = registry.select("dac12, mrtpl").unwrap();
        assert_eq!(picked[0].name(), "dac12");
        assert_eq!(picked[1].name(), "mrtpl");
        let err = registry.select("nope").err().expect("unknown method");
        assert!(err.contains("mrtpl"));
        assert!(registry.select("").err().is_some());
        let err = registry.select("mrtpl,mrtpl").err().expect("duplicate");
        assert!(err.contains("twice"));
    }

    #[test]
    fn register_replaces_same_name() {
        let mut registry = MethodRegistry::builtin();
        registry.register(Box::new(MrTplMethod::default()));
        assert_eq!(
            registry.names().iter().filter(|n| **n == "mrtpl").count(),
            1
        );
    }

    #[test]
    fn methods_run_a_tiny_case() {
        // Through the scheduler (the only constructor of PreparedCase), all
        // four flows on one tiny case, sharing its preparation.
        let case = tpl_ispd::Case::synthetic(tpl_ispd::CaseParams::ispd18_like(1).scaled(0.2));
        let registry = MethodRegistry::builtin();
        let methods: Vec<&dyn Method> = registry.iter().collect();
        let records = crate::run_matrix(
            &methods,
            std::slice::from_ref(&case),
            &crate::RunOptions::default(),
        );
        assert_eq!(records.len(), 4);
        for (record, method) in records.iter().zip(registry.iter()) {
            assert_eq!(record.method, method.name());
            let r = record.record().expect("flow succeeded");
            assert_eq!(r.case, case.name(), "method {}", method.name());
            assert!(r.runtime_seconds >= 0.0);
        }
    }
}
