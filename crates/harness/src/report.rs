//! Machine-readable run reports.
//!
//! [`RunReport`] bundles the scheduler's records with the run configuration
//! and renders them as deterministic JSON (schema below) via the hand-rolled
//! [`json`](crate::json) module.  The plain-text paper tables stay in
//! `tpl-metrics`/`tpl-bench`; this is the format CI and downstream tooling
//! consume.
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "tool": "mrtpl-bench",
//!   "suite": "ispd18",
//!   "input": { "kind": "synthetic" },
//!   "scale": 1.0,
//!   "jobs": 8,
//!   "deterministic": false,
//!   "methods": ["dac12", "mrtpl"],
//!   "records": [
//!     {
//!       "method": "dac12",
//!       "case": "ispd18_like_test1",
//!       "status": "ok",
//!       "conflicts": 0,
//!       "stitches": 12,
//!       "cost": 31415.9,
//!       "runtime_seconds": 0.42,
//!       "outcome": "complete",
//!       "attempts": 1,
//!       "degradation": "none"
//!     },
//!     { "method": "mrtpl", "case": "...", "status": "failed", "error": "...",
//!       "outcome": "failed", "attempts": 4, "degradation": "sequential" }
//!   ],
//!   "totals": { "dac12": { "cases": 10, "failed": 0, "conflicts": 3, ... } },
//!   "geomean_speedup_vs_dac12": { "mrtpl": 1.7 }
//! }
//! ```

use crate::json::JsonValue;
use crate::scheduler::{JobOutcome, JobRecord};
use tpl_metrics::{geomean_speedup, CaseRecord, SuiteTotals};

/// Where a run's cases came from, recorded in the report for traceability.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum InputProvenance {
    /// Cases from the seeded synthetic generator (the default suites).
    #[default]
    Synthetic,
    /// Cases ingested from external LEF/DEF files.
    External {
        /// The `--lef` path, when one was given explicitly (otherwise the
        /// LEF was discovered next to the DEF).
        lef: Option<String>,
        /// The `--def` path (a file or a directory of `.def` files).
        def: String,
    },
}

impl InputProvenance {
    fn to_json_value(&self) -> JsonValue {
        match self {
            InputProvenance::Synthetic => {
                JsonValue::Object(vec![("kind".to_string(), JsonValue::str("synthetic"))])
            }
            InputProvenance::External { lef, def } => {
                let mut entries = vec![("kind".to_string(), JsonValue::str("lefdef"))];
                if let Some(lef) = lef {
                    entries.push(("lef".to_string(), JsonValue::str(lef)));
                }
                entries.push(("def".to_string(), JsonValue::str(def)));
                JsonValue::Object(entries)
            }
        }
    }
}

/// One suite run: configuration plus the scheduler's records in input order.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Suite name (`ispd18` / `ispd19`, or `external` for ingested designs),
    /// as reported by the CLI.
    pub suite: String,
    /// Where the cases came from.
    pub input: InputProvenance,
    /// Scale factor the cases were generated at.
    pub scale: f64,
    /// Worker-thread count of the run.
    pub jobs: usize,
    /// Intra-case worker count (net-level parallelism inside each router).
    pub net_jobs: usize,
    /// Whether wall-clock fields were zeroed for byte-stable output.
    pub deterministic: bool,
    /// Method names in run order (the first is the comparison baseline).
    pub methods: Vec<String>,
    /// Per-job records, case-major in input order.
    pub records: Vec<JobRecord>,
}

impl RunReport {
    /// Successful records of one method, in case order.
    pub fn records_of(&self, method: &str) -> Vec<CaseRecord> {
        self.records
            .iter()
            .filter(|r| r.method == method)
            .filter_map(|r| r.record().cloned())
            .collect()
    }

    /// Number of failed jobs of one method.
    pub fn failures_of(&self, method: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.method == method && r.error().is_some())
            .count()
    }

    /// Per-case record pairs of two methods matched by case name (in the
    /// baseline's case order), skipping cases where either side failed — so
    /// ratios never compare records of different cases.  Each record pairs at
    /// most once: a case run twice pairs its first occurrences, then its
    /// second ones.
    pub fn paired_records(&self, baseline: &str, ours: &str) -> (Vec<CaseRecord>, Vec<CaseRecord>) {
        let mut our_records: Vec<Option<CaseRecord>> =
            self.records_of(ours).into_iter().map(Some).collect();
        let mut base = Vec::new();
        let mut matched = Vec::new();
        for b in self.records_of(baseline) {
            let hit = our_records
                .iter_mut()
                .find(|o| o.as_ref().is_some_and(|o| o.case == b.case));
            if let Some(slot) = hit {
                matched.push(slot.take().expect("slot matched as Some"));
                base.push(b);
            }
        }
        (base, matched)
    }

    /// Renders the report as pretty-printed JSON (see the module docs for the
    /// schema).  Output is deterministic: same report, same bytes.
    ///
    /// A deterministic-mode report omits the `jobs` field (the one value that
    /// legitimately differs between otherwise-identical runs), so two
    /// `--deterministic` reports of the same matrix are byte-identical
    /// whatever `--jobs` was.
    ///
    /// Trace data is never rendered here — whether tracing was on cannot
    /// change these bytes.  Phase aggregates surface through
    /// [`to_json_with_phases`](RunReport::to_json_with_phases) and wall-clock
    /// timings through [`timings_json`](RunReport::timings_json), both
    /// written as sidecar files outside the byte-compared report.
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// Renders the report like [`to_json`](RunReport::to_json), plus a
    /// `phases` block on every record that carries trace aggregates and a
    /// `phase` field on failed records whose panic origin span is known.
    /// This is the `metrics.json` exporter of `--trace`; the primary report
    /// stays byte-identical with tracing on or off.
    pub fn to_json_with_phases(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, with_phases: bool) -> String {
        let mut root = vec![
            ("schema_version".to_string(), JsonValue::UInt(1)),
            ("tool".to_string(), JsonValue::str("mrtpl-bench")),
            ("suite".to_string(), JsonValue::str(&self.suite)),
            ("input".to_string(), self.input.to_json_value()),
            ("scale".to_string(), JsonValue::Float(self.scale)),
        ];
        if !self.deterministic {
            root.push(("jobs".to_string(), JsonValue::UInt(self.jobs as u64)));
            root.push((
                "net_jobs".to_string(),
                JsonValue::UInt(self.net_jobs as u64),
            ));
        }
        root.extend([
            (
                "deterministic".to_string(),
                JsonValue::Bool(self.deterministic),
            ),
            (
                "methods".to_string(),
                JsonValue::Array(self.methods.iter().map(JsonValue::str).collect()),
            ),
            (
                "records".to_string(),
                JsonValue::Array(
                    self.records
                        .iter()
                        .map(|r| record_json(r, with_phases))
                        .collect(),
                ),
            ),
            (
                "totals".to_string(),
                JsonValue::Object(
                    self.methods
                        .iter()
                        .map(|m| (m.clone(), totals_json(self, m)))
                        .collect(),
                ),
            ),
        ]);
        // With wall-clock fields zeroed there is no speedup to report — a
        // literal 0x would read as "never finished", so the section is
        // omitted rather than emitted as zeros.
        if self.methods.len() > 1 && !self.deterministic {
            let baseline = &self.methods[0];
            let entries: Vec<(String, JsonValue)> = self.methods[1..]
                .iter()
                .map(|m| {
                    let (base, ours) = self.paired_records(baseline, m);
                    (m.clone(), JsonValue::Float(geomean_speedup(&base, &ours)))
                })
                .collect();
            root.push((
                format!("geomean_speedup_vs_{baseline}"),
                JsonValue::Object(entries),
            ));
        }
        JsonValue::Object(root).render()
    }

    /// Renders the wall-clock sidecar: real elapsed seconds of every job,
    /// measured even in deterministic mode (where the byte-compared report
    /// zeroes `runtime_seconds`).  Written next to a deterministic report as
    /// `*.timings.json` and never byte-compared, so CI keeps its stable
    /// reports without losing the actual runtimes.
    pub fn timings_json(&self) -> String {
        let records: Vec<JsonValue> = self
            .records
            .iter()
            .map(|r| {
                JsonValue::Object(vec![
                    ("method".to_string(), JsonValue::str(&r.method)),
                    ("case".to_string(), JsonValue::str(&r.case)),
                    (
                        "status".to_string(),
                        JsonValue::str(if r.error().is_some() { "failed" } else { "ok" }),
                    ),
                    ("wall_seconds".to_string(), JsonValue::Float(r.wall_seconds)),
                ])
            })
            .collect();
        let total: f64 = self.records.iter().map(|r| r.wall_seconds).sum();
        JsonValue::Object(vec![
            ("schema_version".to_string(), JsonValue::UInt(1)),
            ("tool".to_string(), JsonValue::str("mrtpl-bench")),
            ("kind".to_string(), JsonValue::str("timings")),
            ("suite".to_string(), JsonValue::str(&self.suite)),
            ("jobs".to_string(), JsonValue::UInt(self.jobs as u64)),
            (
                "net_jobs".to_string(),
                JsonValue::UInt(self.net_jobs as u64),
            ),
            ("records".to_string(), JsonValue::Array(records)),
            ("total_wall_seconds".to_string(), JsonValue::Float(total)),
        ])
        .render()
    }
}

fn record_json(record: &JobRecord, with_phases: bool) -> JsonValue {
    let mut entries = vec![
        ("method".to_string(), JsonValue::str(&record.method)),
        ("case".to_string(), JsonValue::str(&record.case)),
    ];
    match &record.outcome {
        JobOutcome::Ok(r) => {
            entries.push(("status".to_string(), JsonValue::str("ok")));
            entries.push(("conflicts".to_string(), JsonValue::UInt(r.conflicts as u64)));
            entries.push(("stitches".to_string(), JsonValue::UInt(r.stitches as u64)));
            entries.push(("cost".to_string(), JsonValue::Float(r.cost)));
            entries.push((
                "runtime_seconds".to_string(),
                JsonValue::Float(r.runtime_seconds),
            ));
            entries.push((
                "wirelength".to_string(),
                JsonValue::UInt(r.wirelength.max(0) as u64),
            ));
            entries.push(("vias".to_string(), JsonValue::UInt(r.vias as u64)));
            entries.push((
                "search_nodes".to_string(),
                JsonValue::UInt(r.search_nodes as u64),
            ));
            entries.push((
                "rrr_iterations".to_string(),
                JsonValue::UInt(r.rrr_iterations as u64),
            ));
        }
        JobOutcome::Failed { error, phase } => {
            entries.push(("status".to_string(), JsonValue::str("failed")));
            entries.push(("error".to_string(), JsonValue::str(error)));
            if with_phases {
                if let Some(phase) = phase {
                    entries.push(("phase".to_string(), JsonValue::str(phase)));
                }
            }
        }
    }
    // The robustness triple every record carries: how the kept attempt ended
    // (`complete`/`degraded`/`aborted`, or `failed` when no attempt produced
    // a record), how many ladder attempts ran, and the rung that produced it.
    entries.push((
        "outcome".to_string(),
        JsonValue::str(match &record.outcome {
            JobOutcome::Ok(r) => r.outcome.as_str(),
            JobOutcome::Failed { .. } => "failed",
        }),
    ));
    entries.push((
        "attempts".to_string(),
        JsonValue::UInt(record.attempts as u64),
    ));
    entries.push((
        "degradation".to_string(),
        JsonValue::str(record.degradation.as_str()),
    ));
    if with_phases {
        if let Some(phases) = record.phases.as_ref().filter(|p| !p.is_empty()) {
            let parsed =
                JsonValue::parse(&phases.to_json()).expect("TaskPhases::to_json emits valid JSON");
            entries.push(("phases".to_string(), parsed));
        }
    }
    JsonValue::Object(entries)
}

fn totals_json(report: &RunReport, method: &str) -> JsonValue {
    let totals = SuiteTotals::from_records(&report.records_of(method));
    JsonValue::Object(vec![
        ("cases".to_string(), JsonValue::UInt(totals.cases as u64)),
        (
            "failed".to_string(),
            JsonValue::UInt(report.failures_of(method) as u64),
        ),
        (
            "conflicts".to_string(),
            JsonValue::UInt(totals.conflicts as u64),
        ),
        (
            "stitches".to_string(),
            JsonValue::UInt(totals.stitches as u64),
        ),
        ("cost".to_string(), JsonValue::Float(totals.cost)),
        (
            "runtime_seconds".to_string(),
            JsonValue::Float(totals.runtime_seconds),
        ),
        (
            "wirelength".to_string(),
            JsonValue::UInt(totals.wirelength.max(0) as u64),
        ),
        ("vias".to_string(), JsonValue::UInt(totals.vias as u64)),
        (
            "search_nodes".to_string(),
            JsonValue::UInt(totals.search_nodes as u64),
        ),
        (
            "rrr_iterations".to_string(),
            JsonValue::UInt(totals.rrr_iterations as u64),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_grid::Degradation;

    fn ok(method: &str, case: &str, conflicts: usize, rt: f64) -> JobRecord {
        JobRecord {
            method: method.to_string(),
            case: case.to_string(),
            outcome: JobOutcome::Ok(CaseRecord {
                case: case.to_string(),
                conflicts,
                stitches: 2 * conflicts,
                cost: 10.0 * conflicts as f64,
                runtime_seconds: rt,
                ..CaseRecord::default()
            }),
            wall_seconds: rt,
            phases: None,
            attempts: 1,
            degradation: Degradation::None,
        }
    }

    fn failed(method: &str, case: &str) -> JobRecord {
        JobRecord {
            method: method.to_string(),
            case: case.to_string(),
            outcome: JobOutcome::Failed {
                error: "boom \"quoted\"".to_string(),
                phase: None,
            },
            wall_seconds: 0.5,
            phases: None,
            attempts: Degradation::ladder().len(),
            degradation: Degradation::Sequential,
        }
    }

    fn sample() -> RunReport {
        RunReport {
            suite: "ispd18".to_string(),
            input: InputProvenance::Synthetic,
            scale: 0.5,
            jobs: 4,
            net_jobs: 1,
            deterministic: false,
            methods: vec!["dac12".to_string(), "mrtpl".to_string()],
            records: vec![
                ok("dac12", "t1", 4, 4.0),
                ok("mrtpl", "t1", 1, 1.0),
                ok("dac12", "t2", 2, 2.0),
                failed("mrtpl", "t2"),
            ],
        }
    }

    #[test]
    fn accessors_split_records_by_method() {
        let report = sample();
        assert_eq!(report.records_of("dac12").len(), 2);
        assert_eq!(report.records_of("mrtpl").len(), 1);
        assert_eq!(report.failures_of("mrtpl"), 1);
        assert_eq!(report.failures_of("dac12"), 0);
    }

    #[test]
    fn json_has_schema_fields_and_escapes_errors() {
        let json = sample().to_json();
        for needle in [
            "\"schema_version\": 1",
            "\"tool\": \"mrtpl-bench\"",
            "\"suite\": \"ispd18\"",
            "\"jobs\": 4",
            "\"status\": \"ok\"",
            "\"status\": \"failed\"",
            "\"error\": \"boom \\\"quoted\\\"\"",
            "\"outcome\": \"complete\"",
            "\"outcome\": \"failed\"",
            "\"attempts\": 1",
            "\"attempts\": 4",
            "\"degradation\": \"none\"",
            "\"degradation\": \"sequential\"",
            "\"totals\"",
            "\"geomean_speedup_vs_dac12\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces/brackets, i.e. structurally sound output.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_is_byte_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn speedup_pairs_by_case_name_and_skips_failed_cases() {
        let report = sample();
        // mrtpl failed on t2, so only t1 pairs: 4.0s / 1.0s = 4x.
        let (base, ours) = report.paired_records("dac12", "mrtpl");
        assert_eq!(base.len(), 1);
        assert_eq!(base[0].case, "t1");
        assert_eq!(ours[0].case, "t1");
        assert!(report.to_json().contains("\"mrtpl\": 4"));
    }

    #[test]
    fn duplicate_cases_pair_positionally_not_by_first_match() {
        // The same case run twice: each ours record must pair exactly once.
        let report = RunReport {
            suite: "s".to_string(),
            input: InputProvenance::Synthetic,
            scale: 1.0,
            jobs: 1,
            net_jobs: 1,
            deterministic: false,
            methods: vec!["base".to_string(), "ours".to_string()],
            records: vec![
                ok("base", "t1", 1, 8.0),
                ok("ours", "t1", 1, 2.0),
                ok("base", "t1", 1, 6.0),
                ok("ours", "t1", 1, 3.0),
            ],
        };
        let (base, ours) = report.paired_records("base", "ours");
        assert_eq!(base.len(), 2);
        assert_eq!(ours[0].runtime_seconds, 2.0);
        assert_eq!(ours[1].runtime_seconds, 3.0);
        // Geomean of 4x and 2x, not of 4x and 3x.
        assert!((geomean_speedup(&base, &ours) - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn deterministic_reports_omit_jobs_and_speedup() {
        let mut report = sample();
        assert!(report.to_json().contains("\"jobs\": 4"));
        assert!(report.to_json().contains("geomean_speedup_vs_dac12"));
        report.deterministic = true;
        let a = report.to_json();
        // Zeroed wall-clock makes both meaningless; neither is emitted.
        assert!(!a.contains("\"jobs\""));
        assert!(!a.contains("geomean_speedup"));
        report.jobs = 8;
        // Same matrix, different worker count: byte-identical.
        assert_eq!(a, report.to_json());
    }

    #[test]
    fn with_phases_renders_phase_blocks_and_failure_phase() {
        use tpl_trace::{PhaseStat, TaskPhases};
        let mut report = sample();
        report.records[0].phases = Some(TaskPhases {
            spans: vec![(
                "core.route".to_string(),
                PhaseStat {
                    count: 1,
                    nanos: 2_000_000_000,
                },
            )],
            counters: vec![("core.search_nodes".to_string(), 42)],
            values: Vec::new(),
        });
        if let JobOutcome::Failed { phase, .. } = &mut report.records[3].outcome {
            *phase = Some("core.color_search".to_string());
        }
        // The primary report never shows trace data: bytes are independent
        // of whether tracing ran.
        let plain = report.to_json();
        assert!(!plain.contains("phases"));
        assert!(!plain.contains("core.color_search"));
        // The metrics exporter shows both.
        let rich = report.to_json_with_phases();
        assert!(rich.contains("\"phases\""));
        assert!(rich.contains("\"core.search_nodes\": 42"));
        assert!(rich.contains("\"seconds\": 2"));
        assert!(rich.contains("\"phase\": \"core.color_search\""));
        assert!(JsonValue::parse(&rich).is_ok());
    }

    #[test]
    fn with_phases_matches_plain_json_when_no_trace_data() {
        let report = sample();
        assert_eq!(report.to_json(), report.to_json_with_phases());
    }

    #[test]
    fn timings_sidecar_reports_wall_seconds() {
        let json = sample().timings_json();
        for needle in [
            "\"kind\": \"timings\"",
            "\"jobs\": 4",
            "\"wall_seconds\": 4",
            "\"status\": \"failed\"",
            "\"total_wall_seconds\": 7.5",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        assert!(JsonValue::parse(&json).is_ok());
    }

    #[test]
    fn disjoint_failures_never_pair_different_cases() {
        // Baseline fails on t1, ours fails on t2: equal record counts, but
        // the only shared successful case is t3.
        let report = RunReport {
            suite: "s".to_string(),
            input: InputProvenance::Synthetic,
            scale: 1.0,
            jobs: 1,
            net_jobs: 1,
            deterministic: false,
            methods: vec!["base".to_string(), "ours".to_string()],
            records: vec![
                failed("base", "t1"),
                ok("ours", "t1", 1, 1.0),
                ok("base", "t2", 1, 8.0),
                failed("ours", "t2"),
                ok("base", "t3", 1, 6.0),
                ok("ours", "t3", 1, 2.0),
            ],
        };
        let (base, ours) = report.paired_records("base", "ours");
        assert_eq!(base.len(), 1);
        assert_eq!(base[0].case, "t3");
        assert_eq!(ours[0].case, "t3");
        assert!((geomean_speedup(&base, &ours) - 3.0).abs() < 1e-12);
    }
}
