//! The four end-to-end flows the paper evaluates, as free functions.
//!
//! Each flow takes a prepared case (design plus route guides) and returns the
//! per-case [`CaseRecord`] alongside the flow's full native result.  The
//! [`Method`](crate::Method) wrappers build on these; the Criterion benches in
//! `tpl-bench` call them directly so they can iterate on a pre-generated case.

use mrtpl_core::{MrTplConfig, MrTplRouter};
use std::time::Instant;
use tpl_dac12::{Dac12Config, Dac12Router};
use tpl_decompose::{DecomposeConfig, Decomposer};
use tpl_design::{Design, RouteGuides};
use tpl_drcu::{DrCuConfig, DrCuRouter};
use tpl_global::{GlobalConfig, GlobalRouter};
use tpl_grid::{Outcome, RouteBudget};
use tpl_ispd::{score_solution, Case, CaseParams, ScoreWeights};
use tpl_metrics::CaseRecord;
use tpl_par::Parallelism;

/// Generates a case and its route guides (the part shared by every method).
pub fn prepare_case(params: &CaseParams) -> (Design, RouteGuides) {
    prepare_case_parallel(params, 1)
}

/// Like [`prepare_case`], but routes the guides with `net_jobs` workers.
///
/// Guide generation is deterministic in the worker count (the global router
/// commits batch results in net order), so this only changes wall clock.
pub fn prepare_case_parallel(params: &CaseParams, net_jobs: usize) -> (Design, RouteGuides) {
    prepare(&Case::synthetic(params.clone()), net_jobs)
}

/// Prepares any benchmark [`Case`] — synthetic or externally ingested — by
/// instantiating its design and routing the guides with `net_jobs` workers.
pub fn prepare(case: &Case, net_jobs: usize) -> (Design, RouteGuides) {
    prepare_with_search(case, net_jobs, true, true)
}

/// Like [`prepare`], with explicit search-kernel knobs for the global
/// router's maze search.  The global router's solution is invariant to both
/// knobs (the kernel's determinism contract), so every variant produces the
/// same guides; the knobs only change search effort.
pub fn prepare_with_search(
    case: &Case,
    net_jobs: usize,
    a_star: bool,
    bucket_queue: bool,
) -> (Design, RouteGuides) {
    let (design, guides, _) = prepare_with_budget(
        case,
        net_jobs,
        a_star,
        bucket_queue,
        &RouteBudget::default(),
    );
    (design, guides)
}

/// Like [`prepare_with_search`], under a [`RouteBudget`] for the global
/// router's maze searches.  Budget-stopped mazes degrade to L-patterns, so
/// the guides always cover every pin; the returned [`Outcome`] says whether
/// guide generation ran to completion or degraded/aborted.
pub fn prepare_with_budget(
    case: &Case,
    net_jobs: usize,
    a_star: bool,
    bucket_queue: bool,
    budget: &RouteBudget,
) -> (Design, RouteGuides, Outcome) {
    let design = case.instantiate();
    let mut config = GlobalConfig {
        parallelism: Parallelism::new(net_jobs),
        ..GlobalConfig::default()
    };
    config.search.a_star = a_star;
    config.search.bucket_queue = bucket_queue;
    let (guides, stats) = GlobalRouter::new(config).route_with_budget(&design, budget);
    (design, guides, stats.outcome)
}

/// Runs Mr.TPL on a prepared case.
pub fn run_mrtpl(
    design: &Design,
    guides: &RouteGuides,
    config: &MrTplConfig,
) -> (CaseRecord, mrtpl_core::MrTplResult) {
    run_mrtpl_budgeted(design, guides, config, &RouteBudget::default())
}

/// Runs Mr.TPL on a prepared case under a [`RouteBudget`].  The record's
/// `outcome` reports whether the run completed, degraded on a budget trip
/// (the record then describes a best-so-far partial solution), or aborted.
pub fn run_mrtpl_budgeted(
    design: &Design,
    guides: &RouteGuides,
    config: &MrTplConfig,
    budget: &RouteBudget,
) -> (CaseRecord, mrtpl_core::MrTplResult) {
    let result = MrTplRouter::new(*config).route_with_budget(design, guides, budget);
    let cost = score_solution(design, guides, &result.solution, &ScoreWeights::default());
    (
        CaseRecord {
            case: design.name().to_string(),
            conflicts: result.stats.conflicts,
            stitches: result.stats.stitches,
            cost: cost.total(),
            runtime_seconds: result.stats.runtime_seconds,
            wirelength: result.solution.total_wirelength(),
            vias: result.solution.total_vias(),
            search_nodes: result.stats.search_nodes,
            rrr_iterations: result.stats.rrr_iterations,
            outcome: result.stats.outcome,
        },
        result,
    )
}

/// Runs the DAC'12 baseline on a prepared case.
pub fn run_dac12(
    design: &Design,
    guides: &RouteGuides,
    config: &Dac12Config,
) -> (CaseRecord, tpl_dac12::Dac12Result) {
    let result = Dac12Router::new(*config).route(design, guides);
    let cost = score_solution(design, guides, &result.solution, &ScoreWeights::default());
    (
        CaseRecord {
            case: design.name().to_string(),
            conflicts: result.stats.conflicts,
            stitches: result.stats.stitches,
            cost: cost.total(),
            runtime_seconds: result.stats.runtime_seconds,
            wirelength: result.solution.total_wirelength(),
            vias: result.solution.total_vias(),
            search_nodes: 0,
            rrr_iterations: result.stats.rrr_iterations,
            outcome: Outcome::Complete,
        },
        result,
    )
}

/// Runs the colour-blind Dr.CU-like router alone on a prepared case.
///
/// The flow never colours the layout, so the conflict and stitch columns are
/// not applicable and reported as zero; the record's value is in the ISPD
/// routing cost and the runtime (the routing share of the decompose flow).
pub fn run_drcu(
    design: &Design,
    guides: &RouteGuides,
    config: &DrCuConfig,
) -> (CaseRecord, tpl_drcu::DrCuResult) {
    let start = Instant::now();
    let result = DrCuRouter::new(*config).route(design, guides);
    let runtime_seconds = start.elapsed().as_secs_f64();
    let cost = score_solution(design, guides, &result.solution, &ScoreWeights::default());
    (
        CaseRecord {
            case: design.name().to_string(),
            conflicts: 0,
            stitches: 0,
            cost: cost.total(),
            runtime_seconds,
            wirelength: result.solution.total_wirelength(),
            vias: result.solution.total_vias(),
            search_nodes: 0,
            rrr_iterations: result.stats.rrr_iterations,
            outcome: Outcome::Complete,
        },
        result,
    )
}

/// Runs the Dr.CU-like colour-blind router followed by the OpenMPL-style
/// decomposition on a prepared case.
pub fn run_decompose(
    design: &Design,
    guides: &RouteGuides,
    route_config: &DrCuConfig,
    decompose_config: &DecomposeConfig,
) -> (CaseRecord, tpl_decompose::DecomposeResult) {
    let start = Instant::now();
    let routed = DrCuRouter::new(*route_config).route(design, guides);
    let result = Decomposer::new(*decompose_config).decompose(design, &routed.solution);
    // Route + decompose only: scoring is excluded, like the TPL-aware flows
    // whose runtimes come from the routers' internal stats.
    let runtime_seconds = start.elapsed().as_secs_f64();
    let cost = score_solution(design, guides, &routed.solution, &ScoreWeights::default());
    (
        CaseRecord {
            case: design.name().to_string(),
            conflicts: result.stats.conflicts,
            stitches: result.stats.stitches,
            cost: cost.total(),
            runtime_seconds,
            wirelength: routed.solution.total_wirelength(),
            vias: routed.solution.total_vias(),
            search_nodes: 0,
            rrr_iterations: routed.stats.rrr_iterations,
            outcome: Outcome::Complete,
        },
        result,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drcu_flow_reports_no_colour_columns() {
        let params = CaseParams::ispd18_like(1).scaled(0.25);
        let (design, guides) = prepare_case(&params);
        let (record, result) = run_drcu(&design, &guides, &DrCuConfig::default());
        assert_eq!(record.conflicts, 0);
        assert_eq!(record.stitches, 0);
        assert!(record.cost > 0.0);
        assert_eq!(record.case, design.name());
        assert_eq!(result.solution.routed_count(), design.nets().len());
    }
}
