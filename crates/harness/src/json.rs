//! A minimal hand-rolled JSON value and writer (no serde).
//!
//! The build environment has no crates.io access, so report serialisation is
//! done with this ~100-line subset: enough to emit deterministic,
//! pretty-printed, spec-valid JSON.  Object keys keep insertion order, so the
//! same report always renders to the same bytes.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null` (also used for non-finite floats, which JSON cannot represent).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every count in a report).
    UInt(u64),
    /// A double; non-finite values render as `null`.
    Float(f64),
    /// A string, escaped on render.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object whose keys keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Renders the value as pretty-printed JSON with two-space indentation
    /// and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(JsonValue::Null.render(), "null\n");
        assert_eq!(JsonValue::Bool(true).render(), "true\n");
        assert_eq!(JsonValue::UInt(42).render(), "42\n");
        assert_eq!(JsonValue::Float(1.5).render(), "1.5\n");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null\n");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = JsonValue::str("a\"b\\c\nd\u{1}");
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn nested_structures_indent_deterministically() {
        let value = JsonValue::Object(vec![
            ("empty".to_string(), JsonValue::Array(vec![])),
            (
                "records".to_string(),
                JsonValue::Array(vec![JsonValue::Object(vec![(
                    "case".to_string(),
                    JsonValue::str("test1"),
                )])]),
            ),
        ]);
        let expected = "{\n  \"empty\": [],\n  \"records\": [\n    {\n      \"case\": \"test1\"\n    }\n  ]\n}\n";
        assert_eq!(value.render(), expected);
        // Rendering twice produces identical bytes.
        assert_eq!(value.render(), value.render());
    }
}
