//! A minimal hand-rolled JSON value, writer and parser (no serde).
//!
//! The build environment has no crates.io access, so report serialisation is
//! done with this small subset: enough to emit deterministic, pretty-printed,
//! spec-valid JSON, and to parse it back (for `bench-diff`, which compares two
//! committed reports).  Object keys keep insertion order, so the same report
//! always renders to the same bytes.

use std::fmt::Write as _;

/// A positioned JSON parse error: 1-based line and column of the byte the
/// parser rejected, so callers (notably `bench-diff` on a corrupt committed
/// baseline) can point at the real spot instead of a raw byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (in bytes; reports are ASCII).
    pub col: usize,
    /// What went wrong, without position.
    pub message: String,
}

impl JsonParseError {
    fn at(input: &str, pos: usize, message: String) -> Self {
        let pos = pos.min(input.len());
        let line = input[..pos].bytes().filter(|b| *b == b'\n').count() + 1;
        let col = pos - input[..pos].rfind('\n').map_or(0, |i| i + 1) + 1;
        JsonParseError { line, col, message }
    }
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null` (also used for non-finite floats, which JSON cannot represent).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every count in a report).
    UInt(u64),
    /// A double; non-finite values render as `null`.
    Float(f64),
    /// A string, escaped on render.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object whose keys keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Parses a JSON document.  Accepts exactly the subset [`render`]
    /// emits (null, booleans, numbers, strings, arrays, objects) plus
    /// arbitrary whitespace; numbers with a sign, fraction or exponent
    /// parse as [`JsonValue::Float`], bare non-negative integers as
    /// [`JsonValue::UInt`].  Trailing non-whitespace input is an error.
    ///
    /// [`render`]: JsonValue::render
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let result = (|| {
            parser.skip_ws();
            let value = parser.value()?;
            parser.skip_ws();
            if parser.pos != parser.bytes.len() {
                return Err((parser.pos, "trailing input".to_string()));
            }
            Ok(value)
        })();
        result.map_err(|(pos, message)| JsonParseError::at(input, pos, message))
    }

    /// Looks a key up in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array value; `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text of a string value; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A numeric value as `f64` (both [`JsonValue::UInt`] and
    /// [`JsonValue::Float`]); `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(n) => Some(*n as f64),
            JsonValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON with two-space indentation
    /// and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Internal parser error: byte position plus message, converted to a
/// line/column [`JsonParseError`] at the `parse` boundary.
type RawError = (usize, String);

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), RawError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err((self.pos, format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, RawError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err((self.pos, "invalid literal".to_string()))
        }
    }

    fn value(&mut self) -> Result<JsonValue, RawError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err((self.pos, "unexpected input".to_string())),
            None => Err((self.pos, "unexpected end of input".to_string())),
        }
    }

    fn string(&mut self) -> Result<String, RawError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err((self.pos, "unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or((self.pos, "unterminated escape".to_string()))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or((self.pos, "truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| (self.pos, "invalid \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err((self.pos, format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, RawError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| (start, format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<JsonValue, RawError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err((self.pos, "expected `,` or `]`".to_string())),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, RawError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err((self.pos, "expected `,` or `}`".to_string())),
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(JsonValue::Null.render(), "null\n");
        assert_eq!(JsonValue::Bool(true).render(), "true\n");
        assert_eq!(JsonValue::UInt(42).render(), "42\n");
        assert_eq!(JsonValue::Float(1.5).render(), "1.5\n");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null\n");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = JsonValue::str("a\"b\\c\nd\u{1}");
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn nested_structures_indent_deterministically() {
        let value = JsonValue::Object(vec![
            ("empty".to_string(), JsonValue::Array(vec![])),
            (
                "records".to_string(),
                JsonValue::Array(vec![JsonValue::Object(vec![(
                    "case".to_string(),
                    JsonValue::str("test1"),
                )])]),
            ),
        ]);
        let expected = "{\n  \"empty\": [],\n  \"records\": [\n    {\n      \"case\": \"test1\"\n    }\n  ]\n}\n";
        assert_eq!(value.render(), expected);
        // Rendering twice produces identical bytes.
        assert_eq!(value.render(), value.render());
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let value = JsonValue::Object(vec![
            ("null".to_string(), JsonValue::Null),
            ("flag".to_string(), JsonValue::Bool(false)),
            ("count".to_string(), JsonValue::UInt(42)),
            ("cost".to_string(), JsonValue::Float(31415.9)),
            ("name".to_string(), JsonValue::str("a\"b\\c\nd")),
            (
                "records".to_string(),
                JsonValue::Array(vec![
                    JsonValue::UInt(1),
                    JsonValue::Object(vec![]),
                    JsonValue::Array(vec![]),
                ]),
            ),
        ]);
        assert_eq!(JsonValue::parse(&value.render()).unwrap(), value);
    }

    #[test]
    fn parse_handles_numbers_and_signs() {
        assert_eq!(JsonValue::parse("7").unwrap(), JsonValue::UInt(7));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Float(-7.0));
        assert_eq!(JsonValue::parse("0.125").unwrap(), JsonValue::Float(0.125));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Float(1000.0));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let err = JsonValue::parse("{\n  \"a\": 1,\n  \"b\": oops\n}").unwrap_err();
        assert_eq!((err.line, err.col), (3, 8), "{err}");
        assert_eq!(err.to_string(), "line 3, column 8: unexpected input");
        let err = JsonValue::parse("").unwrap_err();
        assert_eq!((err.line, err.col), (1, 1));
        assert!(err.message.contains("end of input"));
        // A truncated document errors at its very end.
        let err = JsonValue::parse("{\n  \"records\": [\n").unwrap_err();
        assert_eq!(err.line, 3, "{err}");
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = JsonValue::parse(
            "{\"totals\": {\"mrtpl\": {\"cases\": 10, \"cost\": 1.5}}, \"methods\": [\"mrtpl\"]}",
        )
        .unwrap();
        let totals = doc.get("totals").unwrap().get("mrtpl").unwrap();
        assert_eq!(totals.get("cases").unwrap().as_f64(), Some(10.0));
        assert_eq!(totals.get("cost").unwrap().as_f64(), Some(1.5));
        let methods = doc.get("methods").unwrap().as_array().unwrap();
        assert_eq!(methods[0].as_str(), Some("mrtpl"));
        assert!(doc.get("missing").is_none());
        assert!(methods[0].get("x").is_none());
    }
}
