//! The fault-matrix suite: no seeded fault plan may wedge the scheduler,
//! lose a worker, or corrupt a report.
//!
//! `tpl-fault` plans are pure functions of `(seed, site, scope, key)` and the
//! harness pins every scope (`prepare/<case>`, `<method>/<case>/a<n>`) to the
//! job rather than the thread, so a faulted run is still byte-deterministic
//! across `--jobs`.  Each test here runs real flows under a plan that injects
//! panics, delays and budget trips, and asserts the three invariants:
//!
//! 1. `run_matrix` returns (a wedged scheduler or a lost worker would hang
//!    the test binary instead),
//! 2. every job slot is filled with a record — ok, degraded or failed,
//! 3. the JSON report parses and carries a valid robustness triple
//!    (`outcome`/`attempts`/`degradation`) on every record.
//!
//! The fault plan is process-global state, so everything runs inside one
//! mutex-serialised helper and the plan is always cleared afterwards.

use std::sync::Mutex;
use tpl_harness::json::JsonValue;
use tpl_harness::{
    run_matrix, Degradation, InputProvenance, JobRecord, MethodRegistry, RunOptions, RunReport,
};
use tpl_ispd::{run_suite, Case, Suite};

/// Serialises every test that touches the process-global fault plan.
static FAULT_PLAN: Mutex<()> = Mutex::new(());

/// Clears the plan even if the test body panics.
struct ClearPlan;

impl Drop for ClearPlan {
    fn drop(&mut self) {
        tpl_fault::clear();
    }
}

fn tiny_suite() -> Vec<Case> {
    run_suite(Suite::Ispd18, &[1, 2], 0.2)
}

fn run_with_plan(seed: Option<u64>, jobs: usize, budget: Option<u64>) -> Vec<JobRecord> {
    match seed {
        Some(seed) => tpl_fault::install(seed),
        None => tpl_fault::clear(),
    }
    let registry = MethodRegistry::builtin();
    let methods = registry.select("dac12,mrtpl").unwrap();
    let cases = tiny_suite();
    let records = run_matrix(
        &methods,
        &cases,
        &RunOptions {
            jobs,
            net_jobs: 2,
            deterministic: true,
            max_search_nodes: budget,
            ..RunOptions::default()
        },
    );
    assert_eq!(records.len(), methods.len() * cases.len());
    records
}

fn report(records: Vec<JobRecord>) -> RunReport {
    RunReport {
        suite: "ispd18".to_string(),
        input: InputProvenance::Synthetic,
        scale: 0.2,
        jobs: 1,
        net_jobs: 2,
        deterministic: true,
        methods: vec!["dac12".to_string(), "mrtpl".to_string()],
        records,
    }
}

/// Parses a report and checks the robustness triple on every record.
fn assert_report_valid(json: &str) {
    let parsed = JsonValue::parse(json).expect("fault-plan report must stay valid JSON");
    let records = parsed
        .get("records")
        .and_then(JsonValue::as_array)
        .expect("report has a records array");
    assert!(!records.is_empty());
    let ladder_len = Degradation::ladder().len() as f64;
    for record in records {
        let status = record.get("status").and_then(JsonValue::as_str).unwrap();
        assert!(["ok", "failed"].contains(&status), "status {status}");
        let outcome = record.get("outcome").and_then(JsonValue::as_str).unwrap();
        assert!(
            ["complete", "degraded", "aborted", "failed"].contains(&outcome),
            "outcome {outcome}"
        );
        assert_eq!(status == "failed", outcome == "failed");
        let attempts = record.get("attempts").and_then(JsonValue::as_f64).unwrap();
        assert!(
            (1.0..=ladder_len).contains(&attempts),
            "attempts {attempts}"
        );
        let degradation = record
            .get("degradation")
            .and_then(JsonValue::as_str)
            .unwrap();
        assert!(
            ["none", "no_a_star", "coarse_key", "sequential"].contains(&degradation),
            "degradation {degradation}"
        );
    }
}

#[test]
fn fault_plans_never_wedge_the_scheduler_and_reports_stay_valid() {
    let _serial = FAULT_PLAN.lock().unwrap_or_else(|p| p.into_inner());
    let _clear = ClearPlan;
    // A spread of seeds: small, large, and bit-heavy, each with and without
    // a node budget so both the fault-driven and the budget-driven ladder
    // paths are exercised.
    for seed in [0, 1, 7, 42, 0xDEAD_BEEF, u64::MAX] {
        for budget in [None, Some(500)] {
            let records = run_with_plan(Some(seed), 2, budget);
            assert_report_valid(&report(records).to_json());
        }
    }
}

#[test]
fn faulted_runs_are_byte_identical_across_worker_counts() {
    let _serial = FAULT_PLAN.lock().unwrap_or_else(|p| p.into_inner());
    let _clear = ClearPlan;
    // Fault decisions hash the job-pinned scope, never the thread, so the
    // same plan over the same matrix must produce the same bytes whatever
    // the worker counts are.
    for seed in [3, 0xC0FFEE] {
        let sequential = run_with_plan(Some(seed), 1, Some(400));
        let parallel = run_with_plan(Some(seed), 4, Some(400));
        assert_eq!(sequential, parallel, "seed {seed}");
        assert_eq!(
            report(sequential).to_json(),
            report(parallel).to_json(),
            "seed {seed}"
        );
    }
}

#[test]
fn budgeted_runs_without_faults_are_byte_identical_across_worker_counts() {
    let _serial = FAULT_PLAN.lock().unwrap_or_else(|p| p.into_inner());
    let _clear = ClearPlan;
    // The budget path alone (no fault plan): node accounting happens at
    // batch barriers, so a budget-limited run is deterministic in both the
    // matrix worker count and the per-net worker count.
    for budget in [0, 200, 5_000] {
        let sequential = run_with_plan(None, 1, Some(budget));
        let parallel = run_with_plan(None, 4, Some(budget));
        assert_eq!(sequential, parallel, "budget {budget}");
        assert_eq!(
            report(sequential).to_json(),
            report(parallel).to_json(),
            "budget {budget}"
        );
    }
}

#[test]
fn a_zero_budget_degrades_but_still_reports_every_case() {
    let _serial = FAULT_PLAN.lock().unwrap_or_else(|p| p.into_inner());
    let _clear = ClearPlan;
    let records = run_with_plan(None, 2, Some(0));
    for record in &records {
        let case = record.record().expect("zero budget degrades, never fails");
        if record.method == "mrtpl" {
            assert!(
                !case.outcome.is_complete(),
                "a zero-budget mrtpl run cannot complete"
            );
            assert_eq!(record.attempts, Degradation::ladder().len());
        }
    }
    assert_report_valid(&report(records).to_json());
}
