//! Scheduler × `tpl-trace` integration: per-job phase aggregates, panic
//! origin spans, and the guarantee that tracing never touches the primary
//! report.
//!
//! Tests that flip the global trace switch hold [`trace_lock`] so they never
//! observe each other's sessions; the round-trip property test needs no
//! tracing at all.

use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};
use tpl_harness::json::JsonValue;
use tpl_harness::{
    run_matrix, Degradation, InputProvenance, Method, MethodRegistry, PreparedCase, RunOptions,
    RunReport, TaskPhases,
};
use tpl_ispd::{run_suite, Suite};
use tpl_metrics::CaseRecord;
use tpl_trace::{PhaseStat, ValueStat};

/// Serialises tests that enable/disable the process-wide trace registry.
fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A stub whose trace events are a pure function of the case, so phase
/// aggregates must be identical whatever the worker count.
struct TracedStub;

impl Method for TracedStub {
    fn name(&self) -> &'static str {
        "traced-stub"
    }

    fn description(&self) -> &'static str {
        "records deterministic trace events per case"
    }

    fn run(&self, case: &PreparedCase) -> CaseRecord {
        let name = case.case().name().to_string();
        {
            let _work = tpl_trace::span!("stub.work", len = name.len());
            for byte in name.bytes() {
                tpl_trace::counter!("stub.bytes", u64::from(byte));
            }
            tpl_trace::value!("stub.len", name.len());
        }
        CaseRecord {
            case: name,
            ..CaseRecord::default()
        }
    }
}

/// A stub that panics inside a named span on every case.
struct PanicsInSpan;

impl Method for PanicsInSpan {
    fn name(&self) -> &'static str {
        "panics-in-span"
    }

    fn description(&self) -> &'static str {
        "crashes inside stub.crash to exercise panic origin attribution"
    }

    fn run(&self, case: &PreparedCase) -> CaseRecord {
        let _outer = tpl_trace::span!("stub.outer");
        let _inner = tpl_trace::span!("stub.crash");
        panic!("synthetic crash on {}", case.case().name());
    }
}

#[test]
fn phases_attach_per_job_and_are_worker_count_invariant() {
    let _guard = trace_lock();
    tpl_trace::enable();
    let stub = TracedStub;
    let methods: Vec<&dyn Method> = vec![&stub];
    let cases = run_suite(Suite::Ispd18, &[1, 2, 3, 4], 0.25);
    let baseline = run_matrix(
        &methods,
        &cases,
        &RunOptions {
            jobs: 1,
            deterministic: true,
            trace: true,
            ..RunOptions::default()
        },
    );
    for record in &baseline {
        let phases = record.phases.as_ref().expect("traced jobs carry phases");
        // The scheduler's own execute span plus the stub's events, all
        // attributed to this job's task.
        assert_eq!(
            phases.span("harness.execute").map(|s| s.count),
            Some(1),
            "{phases:?}"
        );
        assert_eq!(phases.span("stub.work").map(|s| s.count), Some(1));
        let expected: u64 = record.case.bytes().map(u64::from).sum();
        assert_eq!(phases.counter("stub.bytes"), Some(expected));
        // Deterministic mode strips wall-clock durations.
        assert_eq!(phases.span("stub.work").map(|s| s.nanos), Some(0));
    }
    for jobs in [2, 4, 8] {
        let parallel = run_matrix(
            &methods,
            &cases,
            &RunOptions {
                jobs,
                deterministic: true,
                trace: true,
                ..RunOptions::default()
            },
        );
        // JobRecord equality covers outcome AND phases (not wall time).
        assert_eq!(baseline, parallel, "jobs = {jobs}");
    }
    tpl_trace::disable();
}

#[test]
fn real_flow_phases_match_between_worker_counts() {
    let _guard = trace_lock();
    tpl_trace::enable();
    let registry = MethodRegistry::builtin();
    let methods = registry.select("dac12,mrtpl").unwrap();
    let cases = run_suite(Suite::Ispd18, &[1], 0.25);
    let run = |jobs| {
        run_matrix(
            &methods,
            &cases,
            &RunOptions {
                jobs,
                deterministic: true,
                trace: true,
                ..RunOptions::default()
            },
        )
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential, parallel);
    for record in &sequential {
        let phases = record.phases.as_ref().expect("traced jobs carry phases");
        assert!(!phases.is_empty());
        assert_eq!(phases.span("harness.execute").map(|s| s.count), Some(1));
        // The instrumented Mr.TPL flow runs the core detailed router, which
        // traces every net it routes (dac12 is an uninstrumented baseline).
        if record.method == "mrtpl" {
            assert!(
                phases.span("core.route_net").map(|s| s.count).unwrap_or(0) > 0,
                "no core.route_net spans in {phases:?}"
            );
        }
    }
    tpl_trace::disable();
}

/// A stub that panics inside its own distinctly-named innermost span, so
/// attribution mix-ups between concurrent jobs are detectable.
struct PanicsInOwnSpan {
    name: &'static str,
    span: &'static str,
}

impl Method for PanicsInOwnSpan {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        "crashes inside a method-specific span"
    }

    fn run(&self, _case: &PreparedCase) -> CaseRecord {
        let _outer = tpl_trace::span!("stub.outer");
        let _inner = tpl_trace::span(self.span);
        panic!("synthetic crash in {}", self.span);
    }
}

#[test]
fn concurrent_failures_each_carry_their_own_innermost_phase() {
    let _guard = trace_lock();
    tpl_trace::enable();
    // Three always-crashing methods with distinct innermost spans over two
    // cases, four workers: six failing jobs racing on panic-span capture.
    // Each failed record must name its own method's span — never a sibling's
    // and never the outer span.
    let crashers = [
        PanicsInOwnSpan {
            name: "crash-a",
            span: "stub.crash_a",
        },
        PanicsInOwnSpan {
            name: "crash-b",
            span: "stub.crash_b",
        },
        PanicsInOwnSpan {
            name: "crash-c",
            span: "stub.crash_c",
        },
    ];
    let methods: Vec<&dyn Method> = crashers.iter().map(|c| c as &dyn Method).collect();
    let cases = run_suite(Suite::Ispd18, &[1, 2], 0.25);
    let records = run_matrix(
        &methods,
        &cases,
        &RunOptions {
            jobs: 4,
            deterministic: true,
            trace: true,
            ..RunOptions::default()
        },
    );
    tpl_trace::disable();
    assert_eq!(records.len(), 6);
    for record in &records {
        let crasher = crashers
            .iter()
            .find(|c| c.name == record.method)
            .expect("record names a known method");
        assert_eq!(
            record.failure_phase(),
            Some(crasher.span),
            "method {}",
            record.method
        );
        // An unconditional panic exhausts the whole degradation ladder.
        assert_eq!(record.attempts, Degradation::ladder().len());
    }
}

#[test]
fn panic_origin_span_lands_in_record_and_metrics_json() {
    let _guard = trace_lock();
    tpl_trace::enable();
    let bad = PanicsInSpan;
    let good = TracedStub;
    let methods: Vec<&dyn Method> = vec![&good, &bad];
    let cases = run_suite(Suite::Ispd18, &[1], 0.25);
    let records = run_matrix(
        &methods,
        &cases,
        &RunOptions {
            jobs: 2,
            deterministic: true,
            trace: true,
            ..RunOptions::default()
        },
    );
    tpl_trace::disable();
    assert_eq!(records.len(), 2);
    let failed = records
        .iter()
        .find(|r| r.error().is_some())
        .expect("the panicking method failed");
    assert_eq!(failed.failure_phase(), Some("stub.crash"));

    let report = RunReport {
        suite: "ispd18".to_string(),
        input: InputProvenance::Synthetic,
        scale: 0.25,
        jobs: 2,
        net_jobs: 1,
        deterministic: true,
        methods: vec!["traced-stub".to_string(), "panics-in-span".to_string()],
        records,
    };
    // The primary report never mentions the phase; the metrics export does.
    assert!(!report.to_json().contains("stub.crash"));
    let rich = report.to_json_with_phases();
    assert!(rich.contains("\"phase\": \"stub.crash\""));
    assert!(JsonValue::parse(&rich).is_ok());
}

#[test]
fn disabled_tracing_adds_nothing_to_any_export() {
    let _guard = trace_lock();
    tpl_trace::disable();
    let stub = TracedStub;
    let bad = PanicsInSpan;
    let methods: Vec<&dyn Method> = vec![&stub, &bad];
    let cases = run_suite(Suite::Ispd18, &[1], 0.25);
    // `trace: true` without a globally enabled registry is a no-op.
    let records = run_matrix(
        &methods,
        &cases,
        &RunOptions {
            jobs: 2,
            deterministic: true,
            trace: true,
            ..RunOptions::default()
        },
    );
    assert!(records.iter().all(|r| r.phases.is_none()));
    assert!(records.iter().all(|r| r.failure_phase().is_none()));
    let report = RunReport {
        suite: "ispd18".to_string(),
        input: InputProvenance::Synthetic,
        scale: 0.25,
        jobs: 2,
        net_jobs: 1,
        deterministic: true,
        methods: vec!["traced-stub".to_string(), "panics-in-span".to_string()],
        records,
    };
    // With nothing traced, the "rich" export is byte-identical to the
    // primary report: Disabled mode adds no fields anywhere.
    assert_eq!(report.to_json(), report.to_json_with_phases());
    assert!(!report.to_json().contains("phases"));
}

/// Phase-name pool for the round-trip property, including names that need
/// JSON escaping.
const NAMES: [&str; 8] = [
    "core.route",
    "a",
    "stub \"quoted\"",
    "back\\slash",
    "x.y_z",
    "par.worker",
    "tab\there",
    "harness.execute",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `TaskPhases::to_json` output parses with the harness JSON parser and
    /// preserves every count, sum and duration.
    #[test]
    fn task_phases_json_round_trips_through_harness_parser(
        raw_spans in prop::collection::vec((0usize..8, 0u64..1000, 0u64..10_000_000_000), 0..5),
        raw_counters in prop::collection::vec((0usize..8, 0u64..1_000_000), 0..5),
        raw_values in prop::collection::vec((0usize..8, 1u64..100, -1000i64..1000, -1000i64..1000), 0..5),
    ) {
        // The shim has no map strategy; dedup by name into sorted maps here.
        let spans: std::collections::BTreeMap<String, (u64, u64)> = raw_spans
            .into_iter()
            .map(|(n, count, nanos)| (NAMES[n].to_string(), (count, nanos)))
            .collect();
        let counters: std::collections::BTreeMap<String, u64> = raw_counters
            .into_iter()
            .map(|(n, sum)| (NAMES[n].to_string(), sum))
            .collect();
        let values: std::collections::BTreeMap<String, (u64, i64, i64)> = raw_values
            .into_iter()
            .map(|(n, count, a, b)| (NAMES[n].to_string(), (count, a, b)))
            .collect();
        let phases = TaskPhases {
            spans: spans
                .iter()
                .map(|(n, &(count, nanos))| (n.clone(), PhaseStat { count, nanos }))
                .collect(),
            counters: counters.iter().map(|(n, &v)| (n.clone(), v)).collect(),
            values: values
                .iter()
                .map(|(n, &(count, a, b))| {
                    (n.clone(), ValueStat { count, sum: a.saturating_add(b), min: a.min(b), max: a.max(b) })
                })
                .collect(),
        };
        let doc = JsonValue::parse(&phases.to_json())
            .expect("TaskPhases::to_json emits parseable JSON");

        let span_section = doc.get("spans");
        prop_assert_eq!(span_section.is_some(), !spans.is_empty());
        for (name, &(count, nanos)) in &spans {
            let stat = span_section.unwrap().get(name).expect("span present");
            prop_assert_eq!(stat.get("count").unwrap().as_f64(), Some(count as f64));
            let seconds = stat.get("seconds").unwrap().as_f64().unwrap();
            prop_assert!((seconds - nanos as f64 / 1e9).abs() < 1e-9);
        }
        for (name, &sum) in &counters {
            let v = doc.get("counters").unwrap().get(name).expect("counter present");
            prop_assert_eq!(v.as_f64(), Some(sum as f64));
        }
        for (name, &(count, a, b)) in &values {
            let stat = doc.get("values").unwrap().get(name).expect("value present");
            prop_assert_eq!(stat.get("count").unwrap().as_f64(), Some(count as f64));
            prop_assert_eq!(stat.get("sum").unwrap().as_f64(), Some(a.saturating_add(b) as f64));
            prop_assert_eq!(stat.get("min").unwrap().as_f64(), Some(a.min(b) as f64));
            prop_assert_eq!(stat.get("max").unwrap().as_f64(), Some(a.max(b) as f64));
        }
    }
}
