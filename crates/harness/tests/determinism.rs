//! Scheduler determinism and panic-isolation guarantees.
//!
//! These are the tests behind the `mrtpl-bench` contract: per-case records
//! are byte-identical whatever `--jobs` is, and a crashing method/case pair
//! produces a failed record instead of aborting the run.

use proptest::prelude::*;
use tpl_harness::{
    run_matrix, InputProvenance, JobRecord, Method, MethodRegistry, PreparedCase, RunOptions,
    RunReport,
};
use tpl_ispd::{run_suite, Suite};
use tpl_metrics::CaseRecord;

/// A cheap deterministic stub whose record is a pure function of the case,
/// so property tests can sweep many matrix shapes without routing anything.
struct Stub {
    name: &'static str,
    salt: u64,
}

impl Method for Stub {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        "deterministic test stub"
    }

    fn run(&self, case: &PreparedCase) -> CaseRecord {
        let name = case.case().name();
        let h = name
            .bytes()
            .fold(self.salt, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
        CaseRecord {
            case: name.to_string(),
            conflicts: (h % 17) as usize,
            stitches: (h % 101) as usize,
            cost: (h % 1009) as f64 / 3.0,
            runtime_seconds: 0.125,
            ..CaseRecord::default()
        }
    }
}

/// A stub that panics on every case of one suite index.
struct PanicsOnTest3;

impl Method for PanicsOnTest3 {
    fn name(&self) -> &'static str {
        "panics-on-test3"
    }

    fn description(&self) -> &'static str {
        "crashes on test3 to exercise panic isolation"
    }

    fn run(&self, case: &PreparedCase) -> CaseRecord {
        let name = case.case().name();
        assert!(!name.contains("test3"), "synthetic crash on test3");
        CaseRecord {
            case: name.to_string(),
            ..CaseRecord::default()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stub_matrix_records_are_identical_for_any_worker_count(
        jobs in 2usize..=8,
        num_cases in 1usize..=10,
        num_methods in 1usize..=3,
    ) {
        let stubs: Vec<Stub> = (0..num_methods)
            .map(|i| Stub { name: ["a", "b", "c"][i], salt: 0x9e37 + i as u64 })
            .collect();
        let methods: Vec<&dyn Method> = stubs.iter().map(|s| s as &dyn Method).collect();
        let cases = run_suite(Suite::Ispd18, &(1..=num_cases).collect::<Vec<_>>(), 1.0);
        let sequential = run_matrix(
            &methods,
            &cases,
            &RunOptions { jobs: 1, ..RunOptions::default() },
        );
        let parallel = run_matrix(
            &methods,
            &cases,
            &RunOptions { jobs, ..RunOptions::default() },
        );
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(sequential.len(), num_cases * num_methods);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A budget-limited real run (which trips mid-route for small budgets
    /// and walks the degradation ladder) is byte-identical across both
    /// worker dimensions: node accounting happens at batch barriers, so
    /// neither `--jobs` nor `--net-jobs` can move where the budget lands.
    #[test]
    fn budget_limited_real_runs_are_identical_across_worker_counts(
        jobs in 2usize..=4,
        net_jobs in 1usize..=3,
        budget in 0u64..3000,
    ) {
        let registry = MethodRegistry::builtin();
        let methods = registry.select("mrtpl").unwrap();
        let cases = run_suite(Suite::Ispd18, &[1], 0.2);
        let run = |jobs, net_jobs| {
            run_matrix(&methods, &cases, &RunOptions {
                jobs,
                net_jobs,
                deterministic: true,
                max_search_nodes: Some(budget),
                ..RunOptions::default()
            })
        };
        let baseline = run(1, 1);
        let wide = run(jobs, net_jobs);
        prop_assert_eq!(&baseline, &wide);
        let report = |records| RunReport {
            suite: "ispd18".to_string(),
            input: InputProvenance::Synthetic,
            scale: 0.2,
            jobs: 1,
            net_jobs: 1,
            deterministic: true,
            methods: vec!["mrtpl".to_string()],
            records,
        };
        prop_assert_eq!(report(baseline).to_json(), report(wide).to_json());
    }
}

#[test]
fn real_flows_match_between_jobs_1_and_8() {
    // The acceptance matrix of the issue, scaled down: both suites' first
    // case, the Table II method pairing, once sequential and once wide.
    // Deterministic mode zeroes the one wall-clock field; everything else the
    // routers produce is deterministic, so full records must match exactly.
    let registry = MethodRegistry::builtin();
    let methods = registry.select("dac12,mrtpl").unwrap();
    let mut cases = run_suite(Suite::Ispd18, &[1], 0.25);
    cases.extend(run_suite(Suite::Ispd19, &[1], 0.25));

    let sequential = run_matrix(
        &methods,
        &cases,
        &RunOptions {
            jobs: 1,
            deterministic: true,
            ..RunOptions::default()
        },
    );
    let parallel = run_matrix(
        &methods,
        &cases,
        &RunOptions {
            jobs: 8,
            deterministic: true,
            ..RunOptions::default()
        },
    );
    assert_eq!(sequential, parallel);

    // Whole deterministic-mode JSON reports are byte-identical (the jobs
    // field is omitted there, being the one legitimate difference).
    let report = |records: Vec<JobRecord>, jobs: usize| RunReport {
        suite: "mixed".to_string(),
        input: InputProvenance::Synthetic,
        scale: 0.25,
        jobs,
        net_jobs: 1,
        deterministic: true,
        methods: vec!["dac12".to_string(), "mrtpl".to_string()],
        records,
    };
    assert_eq!(
        report(sequential, 1).to_json(),
        report(parallel, 8).to_json()
    );
}

#[test]
fn a_panicking_method_yields_a_failed_record_without_aborting_the_run() {
    let good = Stub {
        name: "good",
        salt: 7,
    };
    let bad = PanicsOnTest3;
    let methods: Vec<&dyn Method> = vec![&good, &bad];
    let cases = run_suite(Suite::Ispd18, &[2, 3, 4], 1.0);
    let records = run_matrix(
        &methods,
        &cases,
        &RunOptions {
            jobs: 4,
            ..RunOptions::default()
        },
    );
    assert_eq!(records.len(), 6);

    let failed: Vec<&JobRecord> = records.iter().filter(|r| r.error().is_some()).collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].method, "panics-on-test3");
    assert_eq!(failed[0].case, "ispd18_like_test3");
    assert!(failed[0].error().unwrap().contains("synthetic crash"));

    // All five other jobs completed, in input order.
    assert_eq!(records.iter().filter(|r| r.record().is_some()).count(), 5);
    let expected_order = [
        ("good", "ispd18_like_test2"),
        ("panics-on-test3", "ispd18_like_test2"),
        ("good", "ispd18_like_test3"),
        ("panics-on-test3", "ispd18_like_test3"),
        ("good", "ispd18_like_test4"),
        ("panics-on-test3", "ispd18_like_test4"),
    ];
    for (record, (method, case)) in records.iter().zip(expected_order) {
        assert_eq!(record.method, method);
        assert_eq!(record.case, case);
    }

    // The failure still shows up in the JSON report as a failed record.
    let report = RunReport {
        suite: "ispd18".to_string(),
        input: InputProvenance::Synthetic,
        scale: 1.0,
        jobs: 4,
        net_jobs: 1,
        deterministic: false,
        methods: vec!["good".to_string(), "panics-on-test3".to_string()],
        records,
    };
    let json = report.to_json();
    assert!(json.contains("\"status\": \"failed\""));
    assert!(json.contains("synthetic crash"));
    assert_eq!(report.failures_of("panics-on-test3"), 1);
}
