//! TPL-unaware, Dr.CU-like negotiation-based detailed router.
//!
//! This crate reproduces the part of Dr.CU 2.0 that the paper builds on: a
//! guide-driven, track-based multi-pin maze router with PathFinder-style
//! negotiation (rip-up and reroute with history cost).  It is deliberately
//! colour-blind: it is the router whose output the OpenMPL-like layout
//! decomposition baseline (`tpl-decompose`) colours after the fact, giving
//! the Table III comparison.  It also provides the shared maze-search
//! machinery quality baseline against which the colour-aware routers are
//! measured.
//!
//! # Examples
//!
//! ```
//! use tpl_drcu::{DrCuConfig, DrCuRouter};
//! use tpl_global::{GlobalConfig, GlobalRouter};
//! use tpl_ispd::CaseParams;
//!
//! let design = CaseParams::ispd18_like(1).scaled(0.25).generate();
//! let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
//! let result = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);
//! assert_eq!(result.solution.routed_count(), design.nets().len());
//! ```

#![warn(missing_docs)]

mod maze;
mod router;

pub use maze::{MazeContext, SearchBuffers};
pub use router::{DrCuConfig, DrCuResult, DrCuRouter, DrCuStats};
