//! The full-design colour-blind detailed router (rip-up & reroute loop).

use crate::{MazeContext, SearchBuffers};
use std::collections::HashSet;
use tpl_design::{Design, NetId, PinId, RouteGuides, RoutedNet, RoutingSolution};
use tpl_grid::{path_to_routed_net, CostParams, GridGraph, GridState, PinCoverage, VertexId};

/// Configuration of the Dr.CU-like router.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DrCuConfig {
    /// Traditional cost parameters.
    pub cost: CostParams,
    /// Maximum number of rip-up-and-reroute iterations after the initial
    /// routing pass.
    pub max_rrr_iterations: usize,
    /// History cost added to every vertex involved in an overlap when a net
    /// is ripped up.
    pub history_increment: f64,
}

impl Default for DrCuConfig {
    fn default() -> Self {
        Self {
            cost: CostParams::default(),
            max_rrr_iterations: 3,
            history_increment: 30.0,
        }
    }
}

/// Statistics of a detailed-routing run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrCuStats {
    /// Number of rip-up-and-reroute iterations actually executed.
    pub rrr_iterations: usize,
    /// Nets that could not be fully connected (no path found for some pin).
    pub failed_nets: usize,
    /// Vertices still shared by two different nets after the final pass.
    pub remaining_overlaps: usize,
}

/// The outcome of a routing run.
#[derive(Clone, Debug)]
pub struct DrCuResult {
    /// The routed geometry of every net.
    pub solution: RoutingSolution,
    /// Run statistics.
    pub stats: DrCuStats,
    /// The grid paths (vertex lists) per net, kept for downstream colouring.
    pub net_vertices: Vec<Vec<VertexId>>,
}

/// The TPL-unaware detailed router.
#[derive(Clone, Debug)]
pub struct DrCuRouter {
    config: DrCuConfig,
}

impl DrCuRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: DrCuConfig) -> Self {
        Self { config }
    }

    /// Routes every net of the design inside the given guides.
    pub fn route(&self, design: &Design, guides: &RouteGuides) -> DrCuResult {
        let grid = GridGraph::build(design);
        let coverage = PinCoverage::build(&grid, design);
        let mut state = GridState::new(&grid, design);
        let mut buffers = SearchBuffers::new(grid.num_vertices());
        let mut solution = RoutingSolution::new(design.nets().len());
        let mut net_vertices: Vec<Vec<VertexId>> = vec![Vec::new(); design.nets().len()];
        let mut stats = DrCuStats::default();

        // Net ordering: short nets first (they are hardest to detour later),
        // deterministic tie-break on the id.
        let mut order: Vec<NetId> = design.nets().iter().map(|n| n.id()).collect();
        order.sort_by_key(|id| {
            (
                design
                    .net_bbox(*id)
                    .map(|b| b.half_perimeter())
                    .unwrap_or(0),
                id.index(),
            )
        });

        let mut to_route: Vec<NetId> = order.clone();
        for iteration in 0..=self.config.max_rrr_iterations {
            stats.rrr_iterations = iteration;
            stats.failed_nets = 0;
            for &net_id in &to_route {
                // Rip up any stale geometry of this net.
                state.release_net(net_id);
                solution.rip_up(net_id);
                net_vertices[net_id.index()].clear();

                let (routed, vertices, complete) = self.route_net(
                    design,
                    &grid,
                    &coverage,
                    &mut buffers,
                    &state,
                    guides,
                    net_id,
                );
                if !complete {
                    stats.failed_nets += 1;
                }
                for &v in &vertices {
                    state.occupy(v, net_id);
                }
                solution.set(net_id, routed);
                net_vertices[net_id.index()] = vertices;
            }

            // Find overlap victims: nets whose vertices are also claimed by
            // an earlier-committed net are detectable by re-walking every
            // net's vertex list and checking the final occupant.
            let victims = self.collect_overlap_victims(design, &grid, &mut state, &net_vertices);
            if victims.is_empty() || iteration == self.config.max_rrr_iterations {
                stats.remaining_overlaps = victims.len();
                break;
            }
            // Rip up the victims and try again.
            let mut next: Vec<NetId> = victims.iter().map(|(net, _)| *net).collect();
            next.sort_unstable_by_key(|id| id.index());
            next.dedup();
            for &(net, vertex) in &victims {
                state.add_history(vertex, self.config.history_increment);
                let _ = net;
            }
            for &net in &next {
                state.release_net(net);
            }
            to_route = next;
        }

        DrCuResult {
            solution,
            stats,
            net_vertices,
        }
    }

    /// Routes one (multi-pin) net; returns its geometry, the grid vertices it
    /// uses, and whether every pin was connected.
    #[allow(clippy::too_many_arguments)]
    fn route_net(
        &self,
        design: &Design,
        grid: &GridGraph,
        coverage: &PinCoverage,
        buffers: &mut SearchBuffers,
        state: &GridState,
        guides: &RouteGuides,
        net_id: NetId,
    ) -> (RoutedNet, Vec<VertexId>, bool) {
        let net = design.net(net_id);
        let in_guide = MazeContext::guide_membership(grid, guides, net_id);
        let ctx = MazeContext {
            grid,
            state,
            coverage,
            design,
            cost: &self.config.cost,
            net: net_id,
            in_guide: &in_guide,
        };

        let mut routed = RoutedNet::new();
        let mut tree: Vec<VertexId> = Vec::new();
        let mut tree_set: HashSet<VertexId> = HashSet::new();

        let start_pin = net.pins()[0];
        for &v in coverage.vertices(start_pin) {
            if tree_set.insert(v) {
                tree.push(v);
            }
        }
        let mut unreached: Vec<PinId> = net.pins()[1..].to_vec();
        let mut complete = true;

        while !unreached.is_empty() {
            match ctx.search(buffers, &tree, &unreached) {
                Some((dst, pin)) => {
                    let path = ctx.backtrace(buffers, dst);
                    path_to_routed_net(grid, &path, &mut routed);
                    for &v in &path {
                        if tree_set.insert(v) {
                            tree.push(v);
                        }
                    }
                    // The reached pin's own access vertices join the tree so
                    // later connections can start from them.
                    for &v in coverage.vertices(pin) {
                        if tree_set.insert(v) {
                            tree.push(v);
                        }
                    }
                    unreached.retain(|p| *p != pin);
                    // Any other pin covered by the path is also reached.
                    unreached
                        .retain(|p| !coverage.vertices(*p).iter().any(|v| tree_set.contains(v)));
                }
                None => {
                    complete = false;
                    break;
                }
            }
        }
        (routed, tree, complete)
    }

    /// Returns `(net, vertex)` pairs where a net's committed vertex is now
    /// occupied by a different net (an overlap/short created because the
    /// occupancy penalty was paid during search).
    fn collect_overlap_victims(
        &self,
        design: &Design,
        _grid: &GridGraph,
        state: &mut GridState,
        net_vertices: &[Vec<VertexId>],
    ) -> Vec<(NetId, VertexId)> {
        let mut victims = Vec::new();
        for net in design.nets() {
            for &v in &net_vertices[net.id().index()] {
                if state.is_occupied_by_other(v, net.id()) {
                    victims.push((net.id(), v));
                }
            }
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_global::{GlobalConfig, GlobalRouter};
    use tpl_ispd::CaseParams;

    fn small_case() -> (Design, RouteGuides) {
        let design = CaseParams::ispd18_like(1).scaled(0.3).generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        (design, guides)
    }

    #[test]
    fn routes_every_net_of_a_small_benchmark() {
        let (design, guides) = small_case();
        let result = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);
        assert_eq!(result.solution.routed_count(), design.nets().len());
        assert_eq!(result.stats.failed_nets, 0);
        assert!(result.solution.total_wirelength() > 0);
    }

    #[test]
    fn every_routed_net_connects_its_pins() {
        let (design, guides) = small_case();
        let result = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);
        for net in design.nets() {
            let routed = result.solution.get(net.id()).expect("net routed");
            assert!(
                routed.connects_all_pins(&design, net.id()),
                "net {} is electrically broken",
                net.name()
            );
        }
    }

    #[test]
    fn rrr_resolves_or_reports_overlaps() {
        let (design, guides) = small_case();
        let result = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);
        // With negotiation the small case should end up with no overlaps.
        assert_eq!(result.stats.remaining_overlaps, 0);
    }

    #[test]
    fn zero_rrr_iterations_still_produces_a_full_solution() {
        let (design, guides) = small_case();
        let config = DrCuConfig {
            max_rrr_iterations: 0,
            ..DrCuConfig::default()
        };
        let result = DrCuRouter::new(config).route(&design, &guides);
        assert_eq!(result.solution.routed_count(), design.nets().len());
    }

    #[test]
    fn deterministic_across_runs() {
        let (design, guides) = small_case();
        let a = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);
        let b = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);
        assert_eq!(a.solution.total_wirelength(), b.solution.total_wirelength());
        assert_eq!(a.solution.total_vias(), b.solution.total_vias());
    }
}
