//! Multi-source maze search shared by the colour-blind router.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tpl_design::{Design, NetId, PinId, RouteGuides};
use tpl_grid::{CostParams, GridGraph, GridState, PinCoverage, VertexId};

/// Reusable per-search buffers with epoch-based invalidation, so routing one
/// net does not reallocate O(V) memory for every pin connection.
#[derive(Clone, Debug)]
pub struct SearchBuffers {
    epoch: u32,
    visit_epoch: Vec<u32>,
    dist: Vec<f64>,
    prev: Vec<u32>,
}

impl SearchBuffers {
    /// Creates buffers for a grid with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            epoch: 0,
            visit_epoch: vec![0; num_vertices],
            dist: vec![f64::INFINITY; num_vertices],
            prev: vec![u32::MAX; num_vertices],
        }
    }

    /// Starts a fresh search; previously written distances become stale
    /// without clearing memory.
    pub fn begin(&mut self) {
        self.epoch += 1;
    }

    #[inline]
    fn is_fresh(&self, v: usize) -> bool {
        self.visit_epoch[v] == self.epoch
    }

    /// The tentative distance of a vertex in the current search.
    #[inline]
    pub fn dist(&self, v: VertexId) -> f64 {
        if self.is_fresh(v.index()) {
            self.dist[v.index()]
        } else {
            f64::INFINITY
        }
    }

    /// Sets the tentative distance and predecessor of a vertex.
    #[inline]
    pub fn relax(&mut self, v: VertexId, dist: f64, prev: Option<VertexId>) {
        let i = v.index();
        self.visit_epoch[i] = self.epoch;
        self.dist[i] = dist;
        self.prev[i] = prev.map(|p| p.0).unwrap_or(u32::MAX);
    }

    /// The predecessor of a vertex in the current search, if any.
    #[inline]
    pub fn prev(&self, v: VertexId) -> Option<VertexId> {
        if self.is_fresh(v.index()) && self.prev[v.index()] != u32::MAX {
            Some(VertexId::new(self.prev[v.index()]))
        } else {
            None
        }
    }
}

/// Everything a maze search needs to evaluate expansion costs for one net.
pub struct MazeContext<'a> {
    /// The routing grid.
    pub grid: &'a GridGraph,
    /// Blockage / occupancy / history state.
    pub state: &'a GridState,
    /// Pin-to-vertex coverage.
    pub coverage: &'a PinCoverage,
    /// The design being routed.
    pub design: &'a Design,
    /// Cost parameters.
    pub cost: &'a CostParams,
    /// The net being routed.
    pub net: NetId,
    /// Whether each vertex lies inside the net's route guide.
    pub in_guide: &'a [bool],
}

impl<'a> MazeContext<'a> {
    /// Computes the per-net guide membership vector.
    pub fn guide_membership(grid: &GridGraph, guides: &RouteGuides, net: NetId) -> Vec<bool> {
        let regions = guides.regions(net);
        if regions.is_empty() {
            return vec![true; grid.num_vertices()];
        }
        let mut mask = vec![false; grid.num_vertices()];
        for region in regions {
            for v in grid.vertices_in_rect(region.layer, &region.rect) {
                mask[v.index()] = true;
            }
        }
        mask
    }

    /// The traditional (colour-free) cost of stepping from `from` onto `to`
    /// via direction `dir`, or `None` if the step is forbidden (blocked
    /// vertex).
    pub fn step_cost(&self, from: VertexId, to: VertexId, dir: tpl_geom::Dir) -> Option<f64> {
        if self.state.is_blocked(to) {
            return None;
        }
        let mut cost = if dir.is_via() {
            self.cost.via
        } else if self.grid.is_wrong_way(from, dir) {
            self.cost.wrong_way_cost(self.grid.pitch())
        } else {
            self.cost.wire_cost(self.grid.pitch())
        };
        if dir.is_planar() && self.grid.layer_of(to).index() == 0 {
            cost *= self.cost.base_layer_mult;
        }
        if !self.in_guide[to.index()] {
            cost += self.cost.out_of_guide * self.grid.pitch() as f64;
        }
        if self.state.is_occupied_by_other(to, self.net) {
            cost += self.cost.occupied;
        }
        if let Some(pin) = self.coverage.pin_at(to) {
            if self.design.pin(pin).net() != self.net {
                cost += self.cost.occupied;
            }
        }
        cost += self.cost.history_weight * self.state.history(to);
        Some(cost)
    }

    /// Runs a multi-source Dijkstra from `sources` until it pops a vertex
    /// covered by a pin of the net listed in `unreached`, returning that
    /// vertex and the pin.  Returns `None` when no unreached pin can be
    /// reached at all.
    pub fn search(
        &self,
        buffers: &mut SearchBuffers,
        sources: &[VertexId],
        unreached: &[PinId],
    ) -> Option<(VertexId, PinId)> {
        buffers.begin();
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let key = |c: f64| (c * 256.0) as u64;
        for &s in sources {
            if self.state.is_blocked(s) {
                continue;
            }
            buffers.relax(s, 0.0, None);
            heap.push(Reverse((0, s.0)));
        }
        let is_target = |v: VertexId| -> Option<PinId> {
            let pin = self.coverage.pin_at(v)?;
            if self.design.pin(pin).net() == self.net && unreached.contains(&pin) {
                Some(pin)
            } else {
                None
            }
        };

        while let Some(Reverse((k, raw))) = heap.pop() {
            let v = VertexId::new(raw);
            let d = buffers.dist(v);
            if (key(d)) < k {
                continue; // stale heap entry
            }
            if let Some(pin) = is_target(v) {
                return Some((v, pin));
            }
            for (dir, n) in self.grid.neighbors(v) {
                if let Some(step) = self.step_cost(v, n, dir) {
                    let nd = d + step;
                    if nd < buffers.dist(n) {
                        buffers.relax(n, nd, Some(v));
                        heap.push(Reverse((key(nd), n.0)));
                    }
                }
            }
        }
        None
    }

    /// Walks predecessors from `dst` back to a source (a vertex with no
    /// predecessor), returning the path source-first.
    pub fn backtrace(&self, buffers: &SearchBuffers, dst: VertexId) -> Vec<VertexId> {
        let mut path = vec![dst];
        let mut cur = dst;
        while let Some(p) = buffers.prev(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_design::{DesignBuilder, RouteGuides, Technology};
    use tpl_geom::Rect;

    fn setup() -> (Design, GridGraph, GridState, PinCoverage) {
        let mut b = DesignBuilder::new(
            "maze",
            Technology::ispd_like(3),
            Rect::from_coords(0, 0, 400, 400),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(6, 6, 14, 14));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(366, 366, 374, 374));
        b.add_net("n0", vec![p0, p1]);
        // A wall of obstacle across the middle on layer 0 and 1, with a gap.
        b.add_obstacle(1, Rect::from_coords(0, 180, 300, 220));
        let d = b.build().unwrap();
        let g = GridGraph::build(&d);
        let s = GridState::new(&g, &d);
        let c = PinCoverage::build(&g, &d);
        (d, g, s, c)
    }

    #[test]
    fn search_connects_two_pins_around_obstacles() {
        let (d, g, s, c) = setup();
        let guides = RouteGuides::new(1);
        let in_guide = MazeContext::guide_membership(&g, &guides, NetId::new(0));
        let cost = CostParams::default();
        let ctx = MazeContext {
            grid: &g,
            state: &s,
            coverage: &c,
            design: &d,
            cost: &cost,
            net: NetId::new(0),
            in_guide: &in_guide,
        };
        let mut buffers = SearchBuffers::new(g.num_vertices());
        let sources = c.vertices(PinId::new(0)).to_vec();
        let unreached = vec![PinId::new(1)];
        let (dst, pin) = ctx
            .search(&mut buffers, &sources, &unreached)
            .expect("path exists");
        assert_eq!(pin, PinId::new(1));
        let path = ctx.backtrace(&buffers, dst);
        assert!(path.len() >= 2);
        // The path starts at a source vertex and ends at the destination.
        assert!(sources.contains(&path[0]));
        assert_eq!(*path.last().unwrap(), dst);
        // No vertex on the path is blocked.
        assert!(path.iter().all(|v| !s.is_blocked(*v)));
        // Consecutive path vertices are grid neighbours.
        for w in path.windows(2) {
            assert!(g.neighbors(w[0]).any(|(_, n)| n == w[1]));
        }
    }

    #[test]
    fn searching_with_no_unreached_pins_returns_none() {
        let (d, g, s, c) = setup();
        let guides = RouteGuides::new(1);
        let in_guide = MazeContext::guide_membership(&g, &guides, NetId::new(0));
        let cost = CostParams::default();
        let ctx = MazeContext {
            grid: &g,
            state: &s,
            coverage: &c,
            design: &d,
            cost: &cost,
            net: NetId::new(0),
            in_guide: &in_guide,
        };
        let mut buffers = SearchBuffers::new(g.num_vertices());
        let sources = c.vertices(PinId::new(0)).to_vec();
        assert!(ctx.search(&mut buffers, &sources, &[]).is_none());
    }

    #[test]
    fn occupied_vertices_are_avoided_when_a_detour_exists() {
        let (d, g, mut s, c) = setup();
        // Occupy a straight wall between the pins on every layer except one
        // column, by another net.
        let other = NetId::new(7);
        for layer in 0..g.num_layers() {
            for ix in 0..g.nx() {
                if ix == g.nx() - 1 {
                    continue; // leave a gap at the right edge
                }
                s.occupy(g.vertex(layer, ix, g.ny() / 2), other);
            }
        }
        let guides = RouteGuides::new(1);
        let in_guide = MazeContext::guide_membership(&g, &guides, NetId::new(0));
        let cost = CostParams::default();
        let ctx = MazeContext {
            grid: &g,
            state: &s,
            coverage: &c,
            design: &d,
            cost: &cost,
            net: NetId::new(0),
            in_guide: &in_guide,
        };
        let mut buffers = SearchBuffers::new(g.num_vertices());
        let sources = c.vertices(PinId::new(0)).to_vec();
        let (dst, _) = ctx
            .search(&mut buffers, &sources, &[PinId::new(1)])
            .unwrap();
        let path = ctx.backtrace(&buffers, dst);
        // The path never steps on an occupied vertex because the detour
        // through the gap is cheaper than the occupancy penalty.
        assert!(path
            .iter()
            .all(|v| !s.is_occupied_by_other(*v, NetId::new(0))));
    }

    #[test]
    fn guide_membership_defaults_to_everywhere_without_regions() {
        let (_d, g, _, _) = setup();
        let guides = RouteGuides::new(1);
        let mask = MazeContext::guide_membership(&g, &guides, NetId::new(0));
        assert!(mask.iter().all(|&b| b));
    }
}
