//! DAC'12-style TPL-aware routing baseline (Ma, Zhang and Wong, DAC 2012).
//!
//! This is the state-of-the-art baseline the paper compares against in
//! Table II.  The method differs from Mr.TPL in two essential ways:
//!
//! 1. **Vertex splitting instead of colour states.**  The routing graph is
//!    expanded so that every grid vertex becomes `3 masks × 4 incoming
//!    directions = 12` search nodes; a path through the expanded graph
//!    simultaneously chooses the geometry *and* a single concrete mask per
//!    vertex.  The expansion makes every search proportionally more
//!    expensive, which is where the paper's runtime gap comes from.
//! 2. **2-pin decomposition.**  Multi-pin nets are broken into 2-pin
//!    connections along a minimum spanning tree and each connection is routed
//!    (and coloured) independently.  Because an already-coloured connection
//!    can never change its mask, junctions between connections frequently
//!    force stitches — exactly the behaviour of Fig. 1(c) in the paper.
//!
//! The cost model (traditional cost, colour-conflict pressure, stitch cost)
//! and the rip-up-and-reroute loop are shared with Mr.TPL so the comparison
//! isolates the colour-handling strategy.
//!
//! # Examples
//!
//! ```
//! use tpl_dac12::{Dac12Config, Dac12Router};
//! use tpl_global::{GlobalConfig, GlobalRouter};
//! use tpl_ispd::CaseParams;
//!
//! let design = CaseParams::ispd18_like(1).scaled(0.25).generate();
//! let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
//! let result = Dac12Router::new(Dac12Config::default()).route(&design, &guides);
//! assert_eq!(result.solution.routed_count(), design.nets().len());
//! ```

#![warn(missing_docs)]

mod expanded;
mod router;

pub use expanded::ExpandedGraph;
pub use router::{Dac12Config, Dac12Result, Dac12Router, Dac12Stats};
