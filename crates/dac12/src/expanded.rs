//! The mask-and-direction expanded search graph.

use tpl_color::Mask;
use tpl_geom::Dir;
use tpl_grid::{GridGraph, VertexId};

/// Node indexing for the expanded graph of the DAC'12 method: every grid
/// vertex is split into `3 masks × 4 incoming planar directions` nodes
/// (vias keep the incoming direction of the planar move that preceded them).
///
/// A node is addressed as `vertex * 12 + mask * 4 + direction_class`.
#[derive(Clone, Debug)]
pub struct ExpandedGraph {
    num_vertices: usize,
}

impl ExpandedGraph {
    /// Number of expansion slots per grid vertex.
    pub const SLOTS: usize = 12;

    /// Creates the indexing helper for a grid.
    pub fn new(grid: &GridGraph) -> Self {
        Self {
            num_vertices: grid.num_vertices(),
        }
    }

    /// Total number of expanded nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_vertices * Self::SLOTS
    }

    /// The direction class (0..4) of a direction: planar directions map to
    /// their own class, via directions inherit class 0 (the class is carried
    /// forward by the router for vias, so this value is only used when a
    /// search starts).
    #[inline]
    pub fn dir_class(dir: Dir) -> usize {
        match dir {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
            Dir::Up | Dir::Down => 0,
        }
    }

    /// Packs `(vertex, mask, direction class)` into a node id.
    #[inline]
    pub fn node(&self, v: VertexId, mask: Mask, dir_class: usize) -> usize {
        debug_assert!(dir_class < 4);
        v.index() * Self::SLOTS + mask.index() * 4 + dir_class
    }

    /// Unpacks a node id into `(vertex, mask, direction class)`.
    #[inline]
    pub fn unpack(&self, node: usize) -> (VertexId, Mask, usize) {
        let v = node / Self::SLOTS;
        let rem = node % Self::SLOTS;
        (VertexId::new(v as u32), Mask::from_index(rem / 4), rem % 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_design::{DesignBuilder, Technology};
    use tpl_geom::Rect;

    fn grid() -> GridGraph {
        let mut b = DesignBuilder::new(
            "x",
            Technology::ispd_like(2),
            Rect::from_coords(0, 0, 200, 200),
        );
        let p0 = b.add_pin_shape("a", 0, Rect::from_coords(0, 0, 10, 10));
        let p1 = b.add_pin_shape("b", 0, Rect::from_coords(150, 150, 160, 160));
        b.add_net("n", vec![p0, p1]);
        GridGraph::build(&b.build().unwrap())
    }

    #[test]
    fn node_packing_round_trips() {
        let g = grid();
        let eg = ExpandedGraph::new(&g);
        assert_eq!(eg.num_nodes(), g.num_vertices() * 12);
        for raw in [0u32, 7, 42, (g.num_vertices() - 1) as u32] {
            let v = VertexId::new(raw);
            for mask in Mask::ALL {
                for dc in 0..4 {
                    let n = eg.node(v, mask, dc);
                    assert!(n < eg.num_nodes());
                    assert_eq!(eg.unpack(n), (v, mask, dc));
                }
            }
        }
    }

    #[test]
    fn node_ids_are_unique() {
        let g = grid();
        let eg = ExpandedGraph::new(&g);
        let mut seen = vec![false; eg.num_nodes()];
        for raw in 0..g.num_vertices() as u32 {
            for mask in Mask::ALL {
                for dc in 0..4 {
                    let n = eg.node(VertexId::new(raw), mask, dc);
                    assert!(!seen[n]);
                    seen[n] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn direction_classes_cover_planar_dirs() {
        let classes: std::collections::HashSet<usize> = Dir::PLANAR
            .iter()
            .map(|d| ExpandedGraph::dir_class(*d))
            .collect();
        assert_eq!(classes.len(), 4);
        assert_eq!(ExpandedGraph::dir_class(Dir::Up), 0);
    }
}
