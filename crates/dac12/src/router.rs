//! The DAC'12 baseline router: expanded-graph search over 2-pin connections.

use crate::ExpandedGraph;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;
use tpl_color::{ColorMap, ColorSetArena, ColoredLayout, Feature, Mask};
use tpl_design::{
    Design, NetId, PinId, RouteGuides, RouteSegment, RoutedNet, RoutingSolution, ViaInstance,
};
use tpl_geom::Segment;
use tpl_grid::{CostParams, GridGraph, GridState, PinCoverage, VertexId};

/// Configuration of the DAC'12 baseline router.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dac12Config {
    /// Traditional cost parameters (shared with the other routers).
    pub cost: CostParams,
    /// Cost of a stitch (mask change along a path).
    pub stitch_cost: f64,
    /// Cost per conflicting same-mask neighbour within `Dcolor`.
    pub color_conflict_cost: f64,
    /// Maximum number of rip-up-and-reroute iterations on colour conflicts.
    pub max_rrr_iterations: usize,
    /// History cost added to vertices in conflict regions when ripping up.
    pub history_increment: f64,
    /// Use the full 3-mask × 4-direction vertex splitting of the original
    /// method.  Disabling it collapses the direction dimension (3× expansion
    /// only), which is faster but less faithful; the ablation benches use it.
    pub direction_split: bool,
}

impl Default for Dac12Config {
    fn default() -> Self {
        Self {
            cost: CostParams::default(),
            stitch_cost: 20.0,
            color_conflict_cost: 350.0,
            max_rrr_iterations: 5,
            history_increment: 60.0,
            direction_split: true,
        }
    }
}

/// Statistics of a DAC'12 baseline run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Dac12Stats {
    /// Colour conflicts remaining in the final layout.
    pub conflicts: usize,
    /// Stitches in the final layout.
    pub stitches: usize,
    /// Rip-up-and-reroute iterations executed.
    pub rrr_iterations: usize,
    /// Nets that could not be fully connected.
    pub failed_nets: usize,
    /// Number of 2-pin connections routed (MST edges over all nets).
    pub two_pin_connections: usize,
    /// Wall-clock routing time in seconds.
    pub runtime_seconds: f64,
}

/// The outcome of a DAC'12 baseline run.
#[derive(Clone, Debug)]
pub struct Dac12Result {
    /// The routed geometry of every net.
    pub solution: RoutingSolution,
    /// Per-net, per-segment mask assignment.
    pub segment_masks: Vec<Vec<Option<Mask>>>,
    /// The final coloured layout used for evaluation.
    pub layout: ColoredLayout,
    /// Run statistics.
    pub stats: Dac12Stats,
}

/// The DAC'12 vertex-splitting TPL-aware router.
#[derive(Clone, Debug)]
pub struct Dac12Router {
    config: Dac12Config,
}

/// Per-vertex colour-pressure cache, valid while one net is being routed
/// (the colour map only changes between nets for foreign features).
struct PressureCache {
    epoch: u32,
    stamp: Vec<u32>,
    pressure: Vec<[u16; 3]>,
}

impl PressureCache {
    fn new(num_vertices: usize) -> Self {
        Self {
            epoch: 0,
            stamp: vec![0; num_vertices],
            pressure: vec![[0; 3]; num_vertices],
        }
    }

    fn begin_net(&mut self) {
        self.epoch += 1;
    }

    fn pressure(&mut self, grid: &GridGraph, map: &ColorMap, net: NetId, v: VertexId) -> [u16; 3] {
        let i = v.index();
        if self.stamp[i] == self.epoch {
            return self.pressure[i];
        }
        let rect = tpl_geom::Rect::from_point(grid.point_of(v)).expanded(4);
        let raw = map.mask_pressure(net, grid.layer_of(v), &rect);
        let p = [raw[0] as u16, raw[1] as u16, raw[2] as u16];
        self.stamp[i] = self.epoch;
        self.pressure[i] = p;
        p
    }
}

/// Search buffers over the expanded node space, epoch-invalidated.
struct NodeBuffers {
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<f64>,
    prev: Vec<u32>,
}

impl NodeBuffers {
    fn new(num_nodes: usize) -> Self {
        Self {
            epoch: 0,
            stamp: vec![0; num_nodes],
            dist: vec![f64::INFINITY; num_nodes],
            prev: vec![u32::MAX; num_nodes],
        }
    }

    fn begin(&mut self) {
        self.epoch += 1;
    }

    #[inline]
    fn dist(&self, n: usize) -> f64 {
        if self.stamp[n] == self.epoch {
            self.dist[n]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn relax(&mut self, n: usize, d: f64, prev: Option<usize>) {
        self.stamp[n] = self.epoch;
        self.dist[n] = d;
        self.prev[n] = prev.map(|p| p as u32).unwrap_or(u32::MAX);
    }

    #[inline]
    fn prev(&self, n: usize) -> Option<usize> {
        if self.stamp[n] == self.epoch && self.prev[n] != u32::MAX {
            Some(self.prev[n] as usize)
        } else {
            None
        }
    }
}

impl Dac12Router {
    /// Creates a router with the given configuration.
    pub fn new(config: Dac12Config) -> Self {
        Self { config }
    }

    /// Routes and colours every net of the design inside the given guides.
    pub fn route(&self, design: &Design, guides: &RouteGuides) -> Dac12Result {
        let start = Instant::now();
        let grid = GridGraph::build(design);
        let expanded = ExpandedGraph::new(&grid);
        let coverage = PinCoverage::build(&grid, design);
        let mut gstate = GridState::new(&grid, design);
        let mut map = ColorMap::new(
            design.die(),
            design.tech().num_layers(),
            design.tech().dcolor(),
        );
        let mut buffers = NodeBuffers::new(expanded.num_nodes());
        let mut pressure_cache = PressureCache::new(grid.num_vertices());
        let mut solution = RoutingSolution::new(design.nets().len());
        let mut segment_masks: Vec<Vec<Option<Mask>>> = vec![Vec::new(); design.nets().len()];
        let mut net_vertices: Vec<Vec<VertexId>> = vec![Vec::new(); design.nets().len()];
        let mut stats = Dac12Stats::default();

        let mut order: Vec<NetId> = design.nets().iter().map(|n| n.id()).collect();
        order.sort_by_key(|id| {
            (
                design
                    .net_bbox(*id)
                    .map(|b| b.half_perimeter())
                    .unwrap_or(0),
                id.index(),
            )
        });

        let mut to_route: Vec<NetId> = order.clone();
        for iteration in 0..=self.config.max_rrr_iterations {
            stats.rrr_iterations = iteration;
            stats.failed_nets = 0;
            for &net_id in &to_route {
                gstate.release_net(net_id);
                map.remove_net(net_id);
                solution.rip_up(net_id);
                segment_masks[net_id.index()].clear();
                net_vertices[net_id.index()].clear();

                let complete = self.route_net(
                    design,
                    &grid,
                    &expanded,
                    &coverage,
                    &mut gstate,
                    &mut map,
                    &mut buffers,
                    &mut pressure_cache,
                    guides,
                    net_id,
                    &mut solution,
                    &mut segment_masks,
                    &mut net_vertices,
                    &mut stats,
                );
                if !complete {
                    stats.failed_nets += 1;
                }
            }

            let layout = self.build_layout(design, &map);
            let conflicts = layout.conflicts();
            if conflicts.is_empty() || iteration == self.config.max_rrr_iterations {
                break;
            }
            let features = layout.features();
            let mut victims: HashSet<NetId> = HashSet::new();
            for c in &conflicts {
                let fa = &features[c.a];
                let fb = &features[c.b];
                let (Some(na), Some(nb)) = (fa.net, fb.net) else {
                    continue;
                };
                let a_is_wire = fa.kind == tpl_color::FeatureKind::Wire;
                let b_is_wire = fb.kind == tpl_color::FeatureKind::Wire;
                let victim = match (a_is_wire, b_is_wire) {
                    (true, false) => na,
                    (false, true) => nb,
                    _ => {
                        if na.index() >= nb.index() {
                            na
                        } else {
                            nb
                        }
                    }
                };
                victims.insert(victim);
                for rect in [fa.rect, fb.rect] {
                    for v in grid.vertices_in_rect(c.layer, &rect) {
                        gstate.add_history(v, self.config.history_increment);
                    }
                }
            }
            let mut next: Vec<NetId> = victims.into_iter().collect();
            next.sort_unstable_by_key(|id| id.index());
            if next.is_empty() {
                break;
            }
            to_route = next;
        }

        let layout = self.build_layout(design, &map);
        let layout_stats = layout.stats();
        stats.conflicts = layout_stats.conflicts;
        stats.stitches = layout_stats.stitches;
        stats.runtime_seconds = start.elapsed().as_secs_f64();

        Dac12Result {
            solution,
            segment_masks,
            layout,
            stats,
        }
    }

    fn build_layout(&self, design: &Design, map: &ColorMap) -> ColoredLayout {
        let mut layout = ColoredLayout::new(
            design.die(),
            design.tech().num_layers(),
            design.tech().dcolor(),
        );
        for f in map.live_features() {
            layout.add(*f);
        }
        layout
    }

    /// Routes one net as independent 2-pin connections along its MST.
    #[allow(clippy::too_many_arguments)]
    fn route_net(
        &self,
        design: &Design,
        grid: &GridGraph,
        expanded: &ExpandedGraph,
        coverage: &PinCoverage,
        gstate: &mut GridState,
        map: &mut ColorMap,
        buffers: &mut NodeBuffers,
        pressure_cache: &mut PressureCache,
        guides: &RouteGuides,
        net_id: NetId,
        solution: &mut RoutingSolution,
        segment_masks: &mut [Vec<Option<Mask>>],
        net_vertices: &mut [Vec<VertexId>],
        stats: &mut Dac12Stats,
    ) -> bool {
        let net = design.net(net_id);
        let in_guide = guide_membership(grid, guides, net_id);
        pressure_cache.begin_net();

        // MST over the pins (Prim, Manhattan distance of pin centres).
        let centers: Vec<(PinId, tpl_geom::Point)> = net
            .pins()
            .iter()
            .filter_map(|p| design.pin(*p).bbox().map(|b| (*p, b.center())))
            .collect();
        let mst = pin_mst(&centers);
        stats.two_pin_connections += mst.len();

        let mut routed = RoutedNet::new();
        let mut masks: Vec<Option<Mask>> = Vec::new();
        let mut vertices: Vec<VertexId> = Vec::new();
        let mut complete = true;

        for (a, b) in mst {
            let (pin_a, _) = centers[a];
            let (pin_b, _) = centers[b];
            match self.route_two_pin(
                design,
                grid,
                expanded,
                coverage,
                gstate,
                map,
                buffers,
                pressure_cache,
                &in_guide,
                net_id,
                pin_a,
                pin_b,
            ) {
                Some(path) => {
                    // Commit this connection immediately: later connections of
                    // the same net do not get to revise its colours (the
                    // fundamental limitation of 2-pin methods).
                    emit_colored_path(grid, &path, &mut routed, &mut masks);
                    for &(v, _) in &path {
                        vertices.push(v);
                        gstate.occupy(v, net_id);
                    }
                }
                None => {
                    complete = false;
                }
            }
        }

        // Pin colours: inherit the mask of the touching wire; if that mask
        // already collides with a coloured neighbour of another net, pick the
        // least conflicting candidate (same post-processing as Mr.TPL so the
        // comparison isolates the routing strategy).
        let mut arena = ColorSetArena::new();
        let _ = &mut arena; // the baseline does not use verSets; kept for parity
        for (seg, mask) in routed.segments.iter().zip(masks.iter()) {
            map.insert(Feature::wire(net_id, seg.layer, seg.rect(), *mask));
        }
        for &pin in net.pins() {
            let preferred = pin_wire_mask(design, grid, coverage, pin, &routed, &masks);
            let mask = match preferred {
                None => None,
                Some(m) => {
                    let mut pressure = [0usize; 3];
                    for (layer, rect) in design.pin(pin).shapes() {
                        let p = map.mask_pressure(net_id, *layer, rect);
                        for i in 0..3 {
                            pressure[i] += p[i];
                        }
                    }
                    if pressure[m.index()] == 0 {
                        Some(m)
                    } else {
                        Mask::ALL
                            .into_iter()
                            .min_by_key(|c| (pressure[c.index()], (*c != m) as usize, c.index()))
                            .map(Some)
                            .unwrap_or(None)
                    }
                }
            };
            for (layer, rect) in design.pin(pin).shapes() {
                map.insert(Feature::pin(net_id, *layer, *rect, mask));
            }
        }

        segment_masks[net_id.index()] = masks;
        net_vertices[net_id.index()] = vertices;
        solution.set(net_id, routed);
        complete
    }

    /// Dijkstra over the expanded (vertex, mask, direction) graph from one
    /// pin to another.  Returns the path as `(vertex, mask)` pairs from
    /// source to destination.
    #[allow(clippy::too_many_arguments)]
    fn route_two_pin(
        &self,
        design: &Design,
        grid: &GridGraph,
        expanded: &ExpandedGraph,
        coverage: &PinCoverage,
        gstate: &GridState,
        map: &ColorMap,
        buffers: &mut NodeBuffers,
        pressure_cache: &mut PressureCache,
        in_guide: &[bool],
        net_id: NetId,
        from: PinId,
        to: PinId,
    ) -> Option<Vec<(VertexId, Mask)>> {
        buffers.begin();
        let key = |c: f64| (c * 256.0) as u64;
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();

        for &v in coverage.vertices(from) {
            if gstate.is_blocked(v) {
                continue;
            }
            for mask in Mask::ALL {
                let n = expanded.node(v, mask, 0);
                buffers.relax(n, 0.0, None);
                heap.push(Reverse((0, n)));
            }
        }
        let target_vertices: HashSet<VertexId> = coverage.vertices(to).iter().copied().collect();

        let cost = &self.config.cost;

        let mut goal: Option<usize> = None;
        while let Some(Reverse((k, node))) = heap.pop() {
            let d = buffers.dist(node);
            if key(d) < k {
                continue;
            }
            let (v, mask, dir_class) = expanded.unpack(node);
            if target_vertices.contains(&v) {
                goal = Some(node);
                break;
            }
            for (dir, n) in grid.neighbors(v) {
                if gstate.is_blocked(n) {
                    continue;
                }
                let mut trad = if dir.is_via() {
                    cost.via
                } else if grid.is_wrong_way(v, dir) {
                    cost.wrong_way_cost(grid.pitch())
                } else {
                    cost.wire_cost(grid.pitch())
                };
                if dir.is_planar() && grid.layer_of(n).index() == 0 {
                    trad *= cost.base_layer_mult;
                }
                if !in_guide[n.index()] {
                    trad += cost.out_of_guide * grid.pitch() as f64;
                }
                if gstate.is_occupied_by_other(n, net_id) {
                    trad += cost.occupied;
                }
                if let Some(pin) = coverage.pin_at(n) {
                    if design.pin(pin).net() != net_id {
                        trad += cost.occupied;
                    }
                }
                trad += cost.history_weight * gstate.history(n);

                let next_class = if self.config.direction_split && dir.is_planar() {
                    ExpandedGraph::dir_class(dir)
                } else if self.config.direction_split {
                    dir_class
                } else {
                    0
                };
                let pressure = pressure_cache.pressure(grid, map, net_id, n);
                for next_mask in Mask::ALL {
                    let mut step =
                        trad + self.config.color_conflict_cost * pressure[next_mask.index()] as f64;
                    if dir.is_planar() && next_mask != mask {
                        step += self.config.stitch_cost;
                    }
                    let nn = expanded.node(n, next_mask, next_class);
                    let nd = d + step;
                    if nd < buffers.dist(nn) {
                        buffers.relax(nn, nd, Some(node));
                        heap.push(Reverse((key(nd), nn)));
                    }
                }
            }
        }

        let goal = goal?;
        let mut path = Vec::new();
        let mut cur = goal;
        loop {
            let (v, mask, _) = expanded.unpack(cur);
            path.push((v, mask));
            match buffers.prev(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
        path.reverse();
        Some(path)
    }
}

/// Per-net guide membership (identical rule to the other routers).
fn guide_membership(grid: &GridGraph, guides: &RouteGuides, net: NetId) -> Vec<bool> {
    let regions = guides.regions(net);
    if regions.is_empty() {
        return vec![true; grid.num_vertices()];
    }
    let mut mask = vec![false; grid.num_vertices()];
    for region in regions {
        for v in grid.vertices_in_rect(region.layer, &region.rect) {
            mask[v.index()] = true;
        }
    }
    mask
}

/// Prim MST over pin centres; returns index pairs into the input slice.
fn pin_mst(centers: &[(PinId, tpl_geom::Point)]) -> Vec<(usize, usize)> {
    let n = centers.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![i64::MAX; n];
    let mut parent = vec![0usize; n];
    in_tree[0] = true;
    for i in 1..n {
        best[i] = centers[0].1.manhattan(&centers[i].1);
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_d = i64::MAX;
        for i in 0..n {
            if !in_tree[i] && best[i] < pick_d {
                pick = i;
                pick_d = best[i];
            }
        }
        if pick == usize::MAX {
            break;
        }
        in_tree[pick] = true;
        edges.push((parent[pick], pick));
        for i in 0..n {
            if !in_tree[i] {
                let d = centers[pick].1.manhattan(&centers[i].1);
                if d < best[i] {
                    best[i] = d;
                    parent[i] = pick;
                }
            }
        }
    }
    edges
}

/// Emits a `(vertex, mask)` path as coloured wire segments and vias.
fn emit_colored_path(
    grid: &GridGraph,
    path: &[(VertexId, Mask)],
    routed: &mut RoutedNet,
    masks: &mut Vec<Option<Mask>>,
) {
    if path.len() < 2 {
        return;
    }
    let mut run_start = path[0].0;
    let mut run_end = path[0].0;
    let mut run_mask = path[0].1;

    let flush = |start: VertexId,
                 end: VertexId,
                 mask: Mask,
                 routed: &mut RoutedNet,
                 masks: &mut Vec<Option<Mask>>| {
        if start == end {
            return;
        }
        let layer = grid.layer_of(start);
        routed.segments.push(RouteSegment::new(
            layer,
            Segment::new(grid.point_of(start), grid.point_of(end)),
            grid.wire_width(layer),
        ));
        masks.push(Some(mask));
    };

    for i in 1..path.len() {
        let (pv, _) = path[i - 1];
        let (cv, cmask) = path[i];
        let (pl, px, py) = grid.coords(pv);
        let (cl, cx, cy) = grid.coords(cv);
        if pl != cl {
            flush(run_start, run_end, run_mask, routed, masks);
            routed.vias.push(ViaInstance::new(
                tpl_design::LayerId::from(pl.min(cl)),
                grid.point_of(pv),
            ));
            run_start = cv;
            run_end = cv;
            run_mask = cmask;
            continue;
        }
        let collinear = {
            let (_, sx, sy) = grid.coords(run_start);
            (sx == px && px == cx) || (sy == py && py == cy)
        };
        if cmask == run_mask && collinear {
            run_end = cv;
        } else {
            flush(run_start, run_end, run_mask, routed, masks);
            run_start = pv;
            run_end = cv;
            run_mask = cmask;
        }
    }
    flush(run_start, run_end, run_mask, routed, masks);
}

/// The mask of the wire touching a pin, if any (nearest segment wins).
fn pin_wire_mask(
    design: &Design,
    grid: &GridGraph,
    coverage: &PinCoverage,
    pin: PinId,
    routed: &RoutedNet,
    masks: &[Option<Mask>],
) -> Option<Mask> {
    let _ = (grid, coverage);
    let bbox = design.pin(pin).bbox()?;
    routed
        .segments
        .iter()
        .zip(masks.iter())
        .filter_map(|(seg, mask)| Some((bbox.spacing_to(&seg.rect()), (*mask)?)))
        .min_by_key(|(d, _)| *d)
        .map(|(_, m)| m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpl_color::ColorState;
    use tpl_global::{GlobalConfig, GlobalRouter};
    use tpl_ispd::CaseParams;

    fn small_case(scale: f64) -> (Design, RouteGuides) {
        let design = CaseParams::ispd18_like(1).scaled(scale).generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        (design, guides)
    }

    #[test]
    fn routes_every_net_and_colors_every_segment() {
        let (design, guides) = small_case(0.3);
        let result = Dac12Router::new(Dac12Config::default()).route(&design, &guides);
        assert_eq!(result.solution.routed_count(), design.nets().len());
        assert_eq!(result.stats.failed_nets, 0);
        for (net_id, routed) in result.solution.iter() {
            let masks = &result.segment_masks[net_id.index()];
            assert_eq!(masks.len(), routed.segments.len());
            assert!(masks.iter().all(|m| m.is_some()));
        }
        // Multi-pin nets produce at least pins-1 two-pin connections.
        let expected_edges: usize = design.nets().iter().map(|n| n.pin_count() - 1).sum();
        assert!(result.stats.two_pin_connections >= expected_edges);
    }

    #[test]
    fn every_net_is_electrically_connected() {
        let (design, guides) = small_case(0.3);
        let result = Dac12Router::new(Dac12Config::default()).route(&design, &guides);
        for net in design.nets() {
            let routed = result.solution.get(net.id()).expect("routed");
            assert!(
                routed.connects_all_pins(&design, net.id()),
                "net {} broken",
                net.name()
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (design, guides) = small_case(0.25);
        let a = Dac12Router::new(Dac12Config::default()).route(&design, &guides);
        let b = Dac12Router::new(Dac12Config::default()).route(&design, &guides);
        assert_eq!(a.stats.conflicts, b.stats.conflicts);
        assert_eq!(a.stats.stitches, b.stats.stitches);
        assert_eq!(a.solution.total_wirelength(), b.solution.total_wirelength());
    }

    #[test]
    fn disabling_direction_split_gives_a_valid_solution_too() {
        let (design, guides) = small_case(0.3);
        let config = Dac12Config {
            direction_split: false,
            ..Dac12Config::default()
        };
        let result = Dac12Router::new(config).route(&design, &guides);
        assert_eq!(result.solution.routed_count(), design.nets().len());
    }

    #[test]
    fn mst_spans_all_pins() {
        let pts = vec![
            (PinId::new(0), tpl_geom::Point::new(0, 0)),
            (PinId::new(1), tpl_geom::Point::new(100, 0)),
            (PinId::new(2), tpl_geom::Point::new(0, 100)),
            (PinId::new(3), tpl_geom::Point::new(100, 100)),
        ];
        let mst = pin_mst(&pts);
        assert_eq!(mst.len(), 3);
    }

    #[test]
    fn color_state_is_unused_but_masks_are_single_valued() {
        // Sanity: the baseline never produces multi-candidate colour states;
        // every committed segment has exactly one mask.
        let (design, guides) = small_case(0.3);
        let result = Dac12Router::new(Dac12Config::default()).route(&design, &guides);
        for masks in &result.segment_masks {
            for m in masks.iter().flatten() {
                assert!(ColorState::from_mask(*m).len() == 1);
            }
        }
    }
}
