//! Dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate re-implements the subset of proptest's API that the
//! workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`],
//! * range strategies (`0i64..10`, `1usize..=3`, …), tuple strategies up to
//!   arity 8, [`any`], [`Just`], and [`collection::vec`](fn@collection::vec),
//! * the [`proptest!`] macro (including `#![proptest_config(..)]` headers),
//! * [`prop_assert!`] / [`prop_assert_eq!`], and [`ProptestConfig`].
//!
//! Unlike the real crate it does **no shrinking**: a failing case panics with
//! the deterministic per-test seed so the failure can be replayed, but is not
//! minimised. Case generation is seeded from the test's name, so runs are
//! fully reproducible.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Drives case generation for one property test.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns the next random word (used by strategies).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Mutable access to the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Error type returned (via `?`-less early `return`) by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failed-assertion error with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Configuration accepted by `#![proptest_config(..)]` headers.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the whole-pipeline
        // properties in this workspace fast while still exploring broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        runner.rng().gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        runner.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy, as in `any::<bool>()`.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Produces a strategy over every value of `T`, as in `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`](fn@vec): a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy returned by [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                runner.rng().gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror so tests can write `prop::collection::vec(..)`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

/// Stable 64-bit FNV-1a hash of a test name, used as its replay seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current property case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; expands each property fn.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut runner = $crate::TestRunner::from_seed(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&$strategy, &mut runner);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{} (replay seed {:#x}): {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, y in 1usize..=9) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..=9).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(v in prop::collection::vec((0u32..4, any::<bool>()), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (n, _) in v {
                prop_assert!(n < 4);
            }
        }

        #[test]
        fn map_applies_function(s in (0i64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(s % 2, 0);
        }
    }

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
