//! Dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate implements the subset of criterion's API used by the
//! benches in `crates/bench`: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_with_input`] with
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it takes `sample_size` wall
//! clock samples per benchmark and prints min / mean / max to stdout — enough
//! to eyeball the paper's runtime comparisons offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group, e.g. `mrtpl/3`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Entry point handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{}/{}: no samples collected", self.name, id.name);
            return self;
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{}: min {:?}  mean {:?}  max {:?}  ({} samples)",
            self.name,
            id.name,
            min,
            mean,
            max,
            samples.len()
        );
        self
    }

    /// Ends the group (printing happens eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` once per sample, timing each call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warm-up call.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
