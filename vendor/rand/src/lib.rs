//! Dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate re-implements exactly the subset of the `rand` 0.8 API
//! that the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open and inclusive integer ranges, and
//! [`Rng::gen_bool`].
//!
//! The generator is a deterministic splitmix64: seeding with the same value
//! always yields the same stream, which is what the benchmark generator in
//! `tpl-ispd` relies on for reproducible cases. It is **not** a
//! cryptographically secure generator and makes no statistical-quality claims
//! beyond "good enough to scatter pins and obstacles".

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports `a..b` and `a..=b` over the integer types used in this
    /// workspace. Panics if the range is empty, like `rand` does.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 bits of mantissa gives a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integer types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `i128` so one sampling routine covers every integer width.
    fn to_i128(self) -> i128;
    /// Narrows back from `i128`; the value is known to fit.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

fn sample_between<T: SampleUniform, R: RngCore>(rng: &mut R, lo: T, hi_inclusive: T) -> T {
    let span = (hi_inclusive.to_i128() - lo.to_i128()) as u128 + 1;
    let offset = (rng.next_u64() as u128) % span;
    T::from_i128(lo.to_i128() + offset as i128)
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        sample_between(rng, self.start, T::from_i128(self.end.to_i128() - 1))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        sample_between(rng, lo, hi)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..=6);
            assert!((-5..=6).contains(&v));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7_500..8_500).contains(&hits), "hits = {hits}");
    }
}
