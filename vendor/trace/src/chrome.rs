//! Chrome `trace_event` exporter.
//!
//! Produces the JSON object format understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): a `traceEvents` array of complete
//! ("X") span events with microsecond timestamps, counter ("C") events as
//! per-thread running totals, and thread-name metadata ("M") events.

use std::fmt::Write as _;

use crate::{Event, NO_TASK};

/// Raw events taken from the registry by [`crate::drain`], ready for export.
pub struct TraceDump {
    /// `(thread id, events)` chunks in flush order; one thread's chunks
    /// concatenate to its chronological event stream.
    chunks: Vec<(u32, Vec<Event>)>,
}

impl TraceDump {
    pub(crate) fn from_chunks(chunks: Vec<(u32, Vec<Event>)>) -> Self {
        TraceDump { chunks }
    }

    /// `true` when no events were collected.
    pub fn is_empty(&self) -> bool {
        self.chunks.iter().all(|(_, events)| events.is_empty())
    }

    /// Number of raw events in the dump.
    pub fn event_count(&self) -> usize {
        self.chunks.iter().map(|(_, events)| events.len()).sum()
    }

    /// Renders the dump as Chrome `trace_event` JSON:
    ///
    /// ```json
    /// {"displayTimeUnit": "ms", "traceEvents": [
    ///   {"ph": "M", "name": "thread_name", "pid": 1, "tid": 3, "args": {"name": "worker-3"}},
    ///   {"ph": "X", "name": "core.route_net", "pid": 1, "tid": 3, "ts": 12.5, "dur": 830.2, "args": {"net": 7}},
    ///   {"ph": "C", "name": "core.search_nodes", "pid": 1, "tid": 3, "ts": 842.7, "args": {"value": 4821}}
    /// ]}
    /// ```
    ///
    /// Span events become "X" complete events with `ts`/`dur` in
    /// microseconds; counters become "C" events carrying the per-thread
    /// running total; value samples are folded into the aggregate exporters
    /// and skipped here.  Load the file directly in `chrome://tracing` or
    /// drag it into Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut threads: Vec<(u32, Vec<&Event>)> = Vec::new();
        for (tid, events) in &self.chunks {
            match threads.iter_mut().find(|(t, _)| t == tid) {
                Some((_, stream)) => stream.extend(events.iter()),
                None => threads.push((*tid, events.iter().collect())),
            }
        }
        threads.sort_by_key(|(tid, _)| *tid);

        let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
        let mut first = true;
        for (tid, stream) in &threads {
            emit_event(&mut out, &mut first, |out| {
                let _ = write!(
                    out,
                    "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {tid}, \
                     \"args\": {{\"name\": \"trace-thread-{tid}\"}}}}"
                );
            });
            // Open-span stack: (name, begin ns, task, args).
            let mut stack: Vec<(&'static str, u64, u64, crate::SpanArgs)> = Vec::new();
            let mut totals: Vec<(&'static str, u64)> = Vec::new();
            for event in stream {
                match **event {
                    Event::Begin {
                        name,
                        t,
                        task,
                        args,
                    } => stack.push((name, t, task, args)),
                    Event::End { t } => {
                        if let Some((name, t0, task, args)) = stack.pop() {
                            emit_event(&mut out, &mut first, |out| {
                                emit_complete(out, *tid, name, t0, t, task, &args);
                            });
                        }
                    }
                    Event::Count {
                        name,
                        delta,
                        task: _,
                    } => {
                        let total = match totals.iter_mut().find(|(n, _)| *n == name) {
                            Some((_, total)) => {
                                *total += delta;
                                *total
                            }
                            None => {
                                totals.push((name, delta));
                                delta
                            }
                        };
                        // Counters are timestamp-free in the buffer; pin the
                        // sample to the innermost open span's begin time, or
                        // 0 at top level.
                        let ts = stack.last().map(|(_, t0, _, _)| *t0).unwrap_or(0);
                        emit_event(&mut out, &mut first, |out| {
                            let _ = write!(
                                out,
                                "{{\"ph\": \"C\", \"name\": {}, \"pid\": 1, \"tid\": {}, \
                                 \"ts\": {}, \"args\": {{\"value\": {}}}}}",
                                json_string(name),
                                tid,
                                format_us(ts),
                                total
                            );
                        });
                    }
                    Event::Value { .. } => {}
                }
            }
            // Spans still open at the end of the stream (flushed mid-flight)
            // are emitted with zero duration so they stay visible.
            for (name, t0, task, args) in stack.into_iter().rev() {
                emit_event(&mut out, &mut first, |out| {
                    emit_complete(&mut *out, *tid, name, t0, t0, task, &args);
                });
            }
        }
        out.push_str("]}\n");
        out
    }
}

fn emit_event(out: &mut String, first: &mut bool, body: impl FnOnce(&mut String)) {
    if !*first {
        out.push_str(", ");
    }
    *first = false;
    body(out);
}

fn emit_complete(
    out: &mut String,
    tid: u32,
    name: &str,
    t0: u64,
    t1: u64,
    task: u64,
    args: &crate::SpanArgs,
) {
    let _ = write!(
        out,
        "{{\"ph\": \"X\", \"name\": {}, \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}",
        json_string(name),
        tid,
        format_us(t0),
        format_us(t1.saturating_sub(t0))
    );
    let mut wrote_args = false;
    for (key, value) in args.iter().flatten() {
        if !wrote_args {
            out.push_str(", \"args\": {");
            wrote_args = true;
        } else {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_string(key), value);
    }
    if task != NO_TASK {
        if !wrote_args {
            out.push_str(", \"args\": {");
            wrote_args = true;
        } else {
            out.push_str(", ");
        }
        let _ = write!(out, "\"task\": {task}");
    }
    if wrote_args {
        out.push('}');
    }
    out.push('}');
}

/// Nanoseconds rendered as microseconds with three decimals (Chrome traces
/// use microsecond `ts`/`dur`).
fn format_us(nanos: u64) -> String {
    let us = nanos / 1_000;
    let frac = nanos % 1_000;
    if frac == 0 {
        format!("{us}.0")
    } else {
        let mut frac_str = format!("{frac:03}");
        while frac_str.len() > 1 && frac_str.ends_with('0') {
            frac_str.pop();
        }
        format!("{us}.{frac_str}")
    }
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dump() -> TraceDump {
        TraceDump::from_chunks(vec![
            (
                0,
                vec![
                    Event::Begin {
                        name: "outer",
                        t: 1_000,
                        task: 4,
                        args: [Some(("net", 7)), None],
                    },
                    Event::Count {
                        name: "nodes",
                        delta: 3,
                        task: 4,
                    },
                    Event::Count {
                        name: "nodes",
                        delta: 2,
                        task: 4,
                    },
                    Event::End { t: 5_000 },
                ],
            ),
            (
                1,
                vec![
                    Event::Begin {
                        name: "open",
                        t: 2_000,
                        task: NO_TASK,
                        args: [None, None],
                    },
                    Event::Value {
                        name: "dist",
                        value: 9,
                        task: NO_TASK,
                    },
                ],
            ),
        ])
    }

    #[test]
    fn chrome_json_has_expected_events() {
        let json = sample_dump().to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["));
        assert!(json.ends_with("]}\n"));
        // Complete event with args and task attribution.
        assert!(json.contains(
            "{\"ph\": \"X\", \"name\": \"outer\", \"pid\": 1, \"tid\": 0, \
             \"ts\": 1.0, \"dur\": 4.0, \"args\": {\"net\": 7, \"task\": 4}}"
        ));
        // Counter running totals: 3 then 5.
        assert!(json.contains("\"args\": {\"value\": 3}"));
        assert!(json.contains("\"args\": {\"value\": 5}"));
        // Open span flushed mid-flight keeps zero duration, no args block.
        assert!(json.contains(
            "{\"ph\": \"X\", \"name\": \"open\", \"pid\": 1, \"tid\": 1, \
             \"ts\": 2.0, \"dur\": 0.0}"
        ));
        // Value samples are not exported to Chrome.
        assert!(!json.contains("dist"));
        // Thread metadata for both threads.
        assert!(json.contains("\"trace-thread-0\""));
        assert!(json.contains("\"trace-thread-1\""));
    }

    #[test]
    fn empty_dump_renders_empty_event_array() {
        let dump = TraceDump::from_chunks(Vec::new());
        assert!(dump.is_empty());
        assert_eq!(dump.event_count(), 0);
        assert_eq!(
            dump.to_chrome_json(),
            "{\"displayTimeUnit\": \"ms\", \"traceEvents\": []}\n"
        );
    }

    #[test]
    fn microsecond_formatting() {
        assert_eq!(format_us(0), "0.0");
        assert_eq!(format_us(1_000), "1.0");
        assert_eq!(format_us(1_500), "1.5");
        assert_eq!(format_us(1_234), "1.234");
        assert_eq!(format_us(999), "0.999");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
