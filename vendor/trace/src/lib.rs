//! Vendored zero-dependency structured tracing for the routing stack.
//!
//! The build environment has no crates.io access, so this crate stands in for
//! the slice of `tracing` + `tracing-chrome` the workspace needs: lightweight
//! structured spans with monotonic-clock timing, typed counters and value
//! histograms, a registry that merges per-thread buffers into deterministic
//! per-task aggregates, and two exporters — a hand-rolled JSON metrics dump
//! ([`TaskPhases::to_json`]) and a Chrome `trace_event` writer
//! ([`TraceDump::to_chrome_json`]) loadable in `chrome://tracing` / Perfetto.
//!
//! # Model
//!
//! * **Mode.** Tracing is globally off by default.  Every instrumentation
//!   point first checks one relaxed atomic load ([`enabled`]); in the
//!   disabled mode no buffer is touched, no clock is read and no allocation
//!   happens, so instrumented hot paths cost a branch.  [`enable`] starts a
//!   new session (stale events from a previous session are discarded).
//! * **Spans.** [`span!`] records a begin/end event pair on the current
//!   thread's buffer and returns a guard; spans nest, and durations are
//!   inclusive.  Up to two static `key = integer` args ride along into the
//!   Chrome export.
//! * **Counters and values.** [`counter!`] accumulates a named `u64` sum;
//!   [`value!`] records one sample of a named distribution (count, sum, min,
//!   max) — batch sizes, queue depths.
//! * **Tasks.** A [`task`] guard tags every event the thread records with a
//!   task id, and [`propagate_task`]/[`TaskGuard`] carry that id onto pool
//!   worker threads; [`take_task_phases`] then returns one task's aggregate.
//!   Aggregation is *deterministic*: whatever the thread count or
//!   interleaving, a task's span counts, counter sums and value stats depend
//!   only on the events its work recorded (durations, of course, remain wall
//!   clock).  Task ids come from [`alloc_tasks`] so concurrent sessions in
//!   one process never collide.
//! * **Panic origin.** A span guard dropped during unwinding records its
//!   name; [`take_panic_span`] hands the innermost such span to whoever
//!   catches the panic, which is how harness failure records learn the phase
//!   a crash originated in.
//!
//! Thread buffers flush into the global registry when a thread exits, when a
//! task's phases are collected, and on [`drain`]; flushing aggregates the
//! chunk into per-task phase stats and keeps the raw events for the Chrome
//! export.

#![warn(missing_docs)]

mod chrome;
mod phases;

pub use chrome::TraceDump;
pub use phases::{PhaseStat, TaskPhases, ValueStat};

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Sentinel task id meaning "not attributed to any task".
pub(crate) const NO_TASK: u64 = u64::MAX;

/// Inline argument slots of a span (static key, integer value).
pub type SpanArgs = [Option<(&'static str, i64)>; 2];

/// One raw event on a thread buffer.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Event {
    /// A span opened: name, timestamp, owning task, inline args.
    Begin {
        /// Span name (a static label from the span taxonomy).
        name: &'static str,
        /// Nanoseconds since the process trace epoch.
        t: u64,
        /// Owning task id (`NO_TASK` when unattributed).
        task: u64,
        /// Inline `key = value` args.
        args: SpanArgs,
    },
    /// The innermost open span closed at `t`.
    End {
        /// Nanoseconds since the process trace epoch.
        t: u64,
    },
    /// A named counter increased by `delta`.
    Count {
        /// Counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
        /// Owning task id.
        task: u64,
    },
    /// One sample of a named value distribution.
    Value {
        /// Distribution name.
        name: &'static str,
        /// The sample.
        value: i64,
        /// Owning task id.
        task: u64,
    },
}

/// Deterministic per-task aggregation, keyed by static names.
#[derive(Clone, Debug, Default)]
pub(crate) struct TaskAgg {
    spans: BTreeMap<&'static str, PhaseStat>,
    counters: BTreeMap<&'static str, u64>,
    values: BTreeMap<&'static str, ValueStat>,
}

impl TaskAgg {
    fn to_phases(&self) -> TaskPhases {
        TaskPhases {
            spans: self
                .spans
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            values: self
                .values
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }
}

/// Everything the registry collects from flushed thread buffers.
#[derive(Default)]
struct Inner {
    /// Raw event chunks in flush order, tagged with their thread id.  A
    /// thread's chunks concatenate to its chronological event stream.
    chunks: Vec<(u32, Vec<Event>)>,
    /// Per-task aggregates, built incrementally at flush.
    tasks: BTreeMap<u64, TaskAgg>,
    /// Aggregate of unattributed events (scheduler idle, pool workers).
    global: TaskAgg,
    /// Per-thread stacks of spans still open across chunk boundaries: a
    /// long-lived worker may flush after every job while its own outer span
    /// is still open, and that span must pair with the End of a later chunk.
    pending: BTreeMap<u32, Vec<(&'static str, u64, u64)>>,
}

impl Inner {
    fn agg_mut(&mut self, task: u64) -> &mut TaskAgg {
        if task == NO_TASK {
            &mut self.global
        } else {
            self.tasks.entry(task).or_default()
        }
    }

    /// Folds a flushed chunk into the per-task aggregates.  Span pairing
    /// carries across chunks of the same thread via `pending`; a span still
    /// open at collection time is simply not counted yet (it finishes in a
    /// later chunk or never).  An End with no matching Begin is ignored.
    fn aggregate(&mut self, thread: u32, chunk: &[Event]) {
        let mut stack = self.pending.remove(&thread).unwrap_or_default();
        for event in chunk {
            match *event {
                Event::Begin { name, t, task, .. } => stack.push((name, t, task)),
                Event::End { t } => {
                    if let Some((name, t0, task)) = stack.pop() {
                        let stat = self.agg_mut(task).spans.entry(name).or_default();
                        stat.count += 1;
                        stat.nanos += t.saturating_sub(t0);
                    }
                }
                Event::Count { name, delta, task } => {
                    *self.agg_mut(task).counters.entry(name).or_default() += delta;
                }
                Event::Value { name, value, task } => {
                    self.agg_mut(task)
                        .values
                        .entry(name)
                        .or_default()
                        .record(value);
                }
            }
        }
        if !stack.is_empty() {
            self.pending.insert(thread, stack);
        }
    }
}

/// The process-wide trace registry.
struct Registry {
    enabled: AtomicBool,
    /// Bumped by [`enable`]; buffers started under an older session discard
    /// their events instead of polluting the new one.
    session: AtomicU64,
    next_thread: AtomicU32,
    next_task: AtomicU64,
    inner: Mutex<Inner>,
}

static REGISTRY: Registry = Registry {
    enabled: AtomicBool::new(false),
    session: AtomicU64::new(0),
    next_thread: AtomicU32::new(0),
    next_task: AtomicU64::new(0),
    inner: Mutex::new(Inner {
        chunks: Vec::new(),
        tasks: BTreeMap::new(),
        global: TaskAgg {
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            values: BTreeMap::new(),
        },
        pending: BTreeMap::new(),
    }),
};

/// Monotonic epoch all timestamps are relative to (set on first use, never
/// reset — session restarts keep timestamps monotonic within the process).
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn lock_inner() -> MutexGuard<'static, Inner> {
    REGISTRY
        .inner
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// `true` when tracing is on.  One relaxed atomic load: this is the only
/// cost instrumentation points pay in the disabled mode.
#[inline]
pub fn enabled() -> bool {
    REGISTRY.enabled.load(Ordering::Relaxed)
}

/// Starts a new tracing session, discarding everything a previous session
/// collected.  Events recorded before `enable` (or under an older session)
/// never leak into the new session's aggregates or dump.
pub fn enable() {
    let mut inner = lock_inner();
    REGISTRY.session.fetch_add(1, Ordering::SeqCst);
    inner.chunks.clear();
    inner.tasks.clear();
    inner.global = TaskAgg::default();
    inner.pending.clear();
    REGISTRY.enabled.store(true, Ordering::SeqCst);
}

/// Stops recording.  Collected data stays available to [`drain`] /
/// [`take_task_phases`] until the next [`enable`].
pub fn disable() {
    REGISTRY.enabled.store(false, Ordering::SeqCst);
}

/// Reserves `n` consecutive task ids and returns the first.  Schedulers take
/// a block per run so task ids stay unique across concurrent runs in one
/// process while remaining deterministic (base + job index) within a run.
pub fn alloc_tasks(n: u64) -> u64 {
    REGISTRY.next_task.fetch_add(n.max(1), Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Thread-local state
// ---------------------------------------------------------------------------

struct LocalBuf {
    thread: u32,
    session: u64,
    events: Vec<Event>,
}

impl LocalBuf {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.events);
        // A buffer from a dead session is silently dropped.
        if self.session != REGISTRY.session.load(Ordering::SeqCst) {
            return;
        }
        let mut inner = lock_inner();
        let thread = self.thread;
        inner.aggregate(thread, &events);
        inner.chunks.push((thread, events));
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
    static CURRENT_TASK: Cell<u64> = const { Cell::new(NO_TASK) };
    static PANIC_SPAN: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// Appends an event to this thread's buffer, (re)registering the buffer when
/// the session changed since the last event.
fn record(event: Event) {
    let session = REGISTRY.session.load(Ordering::Relaxed);
    LOCAL.with(|local| {
        let mut slot = local.borrow_mut();
        let buf = slot.get_or_insert_with(|| LocalBuf {
            thread: REGISTRY.next_thread.fetch_add(1, Ordering::Relaxed),
            session,
            events: Vec::new(),
        });
        if buf.session != session {
            buf.events.clear();
            buf.session = session;
            buf.thread = REGISTRY.next_thread.fetch_add(1, Ordering::Relaxed);
        }
        buf.events.push(event);
    });
}

/// Flushes the current thread's buffer into the registry.  Call at points
/// where the thread has no open spans (job boundaries, the tail of a pool
/// worker's closure); buffers also flush automatically when their thread
/// exits, but that runs in the thread's TLS destructors, which
/// `std::thread::scope` does **not** order before its join — so any thread
/// whose events must be visible at a collection point ([`take_task_phases`],
/// [`drain`]) has to flush explicitly before its closure returns.
pub fn flush() {
    LOCAL.with(|local| {
        if let Some(buf) = local.borrow_mut().as_mut() {
            buf.flush();
        }
    });
}

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

/// Guard restoring the previous task attribution on drop.
#[must_use = "dropping the guard immediately ends the task scope"]
pub struct TaskGuard {
    prev: u64,
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        CURRENT_TASK.with(|t| t.set(self.prev));
    }
}

/// Attributes events recorded by this thread to `id` until the guard drops.
pub fn task(id: u64) -> TaskGuard {
    TaskGuard {
        prev: CURRENT_TASK.with(|t| t.replace(id)),
    }
}

/// Suspends task attribution until the guard drops.  Work shared between
/// tasks (lazily prepared case data) uses this so per-task aggregates stay
/// independent of which task happened to pay for the shared work.
pub fn untasked() -> TaskGuard {
    TaskGuard {
        prev: CURRENT_TASK.with(|t| t.replace(NO_TASK)),
    }
}

/// Re-establishes a captured task attribution (`None` = unattributed) on
/// this thread.  Thread pools capture [`current_task`] on the submitting
/// thread and propagate it around each task closure on their workers.
pub fn propagate_task(id: Option<u64>) -> TaskGuard {
    task(id.unwrap_or(NO_TASK))
}

/// The task events of this thread are currently attributed to.
pub fn current_task() -> Option<u64> {
    match CURRENT_TASK.with(|t| t.get()) {
        NO_TASK => None,
        id => Some(id),
    }
}

/// Removes and returns one task's aggregated phases (after flushing the
/// current thread).  `None` when the task recorded nothing.
pub fn take_task_phases(task: u64) -> Option<TaskPhases> {
    flush();
    lock_inner().tasks.remove(&task).map(|agg| agg.to_phases())
}

/// A snapshot of the aggregate of *unattributed* events (scheduler workers,
/// pool internals) — the process-level side of the per-task phases.
pub fn global_phases() -> TaskPhases {
    flush();
    lock_inner().global.to_phases()
}

// ---------------------------------------------------------------------------
// Spans, counters, values
// ---------------------------------------------------------------------------

/// RAII span guard returned by [`span!`]; records the end event on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct Span {
    /// `Some(name)` while live; `None` in disabled mode (a no-op guard).
    name: Option<&'static str>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(name) = self.name else {
            return;
        };
        if std::thread::panicking() {
            // Innermost guard drops first during unwinding; keep it.
            PANIC_SPAN.with(|s| {
                if s.get().is_none() {
                    s.set(Some(name));
                }
            });
        }
        if enabled() {
            record(Event::End { t: now_ns() });
        }
    }
}

/// Opens a span (prefer the [`span!`] macro).  No-op when disabled.
pub fn span(name: &'static str) -> Span {
    span_args(name, [None, None])
}

/// Opens a span with inline args (prefer the [`span!`] macro).
pub fn span_args(name: &'static str, args: SpanArgs) -> Span {
    if !enabled() {
        return Span { name: None };
    }
    record(Event::Begin {
        name,
        t: now_ns(),
        task: CURRENT_TASK.with(|t| t.get()),
        args,
    });
    Span { name: Some(name) }
}

/// Adds `delta` to a named counter (prefer the [`counter!`] macro).
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    record(Event::Count {
        name,
        delta,
        task: CURRENT_TASK.with(|t| t.get()),
    });
}

/// Records one sample of a named distribution (prefer the [`value!`] macro).
pub fn value(name: &'static str, sample: i64) {
    if !enabled() {
        return;
    }
    record(Event::Value {
        name,
        value: sample,
        task: CURRENT_TASK.with(|t| t.get()),
    });
}

/// The innermost span name recorded during the most recent panic unwind on
/// this thread, cleared on read.  Catchers of a panic call this to attach
/// the origin phase to their failure report.
pub fn take_panic_span() -> Option<&'static str> {
    PANIC_SPAN.with(|s| s.take())
}

/// Opens a scoped span: `span!("name")` or `span!("name", net = id, k2 = v)`
/// (up to two `key = integer` args).  Bind the result — the span closes when
/// the guard drops.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span($name)
    };
    ($name:literal, $k:ident = $v:expr) => {
        $crate::span_args($name, [Some((stringify!($k), $v as i64)), None])
    };
    ($name:literal, $k1:ident = $v1:expr, $k2:ident = $v2:expr) => {
        $crate::span_args(
            $name,
            [
                Some((stringify!($k1), $v1 as i64)),
                Some((stringify!($k2), $v2 as i64)),
            ],
        )
    };
}

/// Adds to a named counter: `counter!("core.search_nodes", nodes)`.
#[macro_export]
macro_rules! counter {
    ($name:literal, $delta:expr) => {
        $crate::counter($name, $delta as u64)
    };
}

/// Records a distribution sample: `value!("core.batch_size", batch.len())`.
#[macro_export]
macro_rules! value {
    ($name:literal, $sample:expr) => {
        $crate::value($name, $sample as i64)
    };
}

// ---------------------------------------------------------------------------
// Draining
// ---------------------------------------------------------------------------

/// Flushes the current thread and takes every raw event collected so far,
/// for the Chrome exporter.  Aggregated task phases are left in place (they
/// are taken per task by [`take_task_phases`]).
pub fn drain() -> TraceDump {
    flush();
    let chunks = std::mem::take(&mut lock_inner().chunks);
    TraceDump::from_chunks(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; tests serialise on this.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _serial = serial();
        disable();
        {
            let _s = span!("test.disabled", net = 7);
            counter!("test.disabled_count", 5);
            value!("test.disabled_value", 3);
        }
        enable();
        let dump = drain();
        assert!(dump.is_empty(), "no event may survive from disabled mode");
        assert!(global_phases().is_empty());
        disable();
    }

    #[test]
    fn spans_nest_and_durations_are_inclusive() {
        let _serial = serial();
        enable();
        let base = alloc_tasks(1);
        {
            let _t = task(base);
            let _outer = span!("test.outer");
            for _ in 0..3 {
                let _inner = span!("test.inner");
            }
        }
        let phases = take_task_phases(base).expect("task recorded");
        let outer = phases.span("test.outer").expect("outer span");
        let inner = phases.span("test.inner").expect("inner span");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert!(
            outer.nanos >= inner.nanos,
            "outer {} must include inner {}",
            outer.nanos,
            inner.nanos
        );
        disable();
    }

    #[test]
    fn thread_merge_is_deterministic_whatever_the_thread_count() {
        let _serial = serial();
        let run = |threads: usize| {
            enable();
            let base = alloc_tasks(1);
            let items: Vec<u64> = (0..64).collect();
            std::thread::scope(|scope| {
                let chunk = items.len().div_ceil(threads);
                for part in items.chunks(chunk) {
                    scope.spawn(move || {
                        let _t = propagate_task(Some(base));
                        for item in part {
                            let _s = span!("test.item");
                            counter!("test.total", *item);
                            value!("test.sample", *item);
                        }
                        // Scope join does not wait for TLS destructors;
                        // worker closures flush explicitly.
                        flush();
                    });
                }
            });
            let mut phases = take_task_phases(base).expect("task recorded");
            disable();
            phases.zero_times();
            phases
        };
        let one = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), one, "threads = {threads}");
        }
    }

    #[test]
    fn span_pairing_survives_mid_span_flushes() {
        let _serial = serial();
        enable();
        let base = alloc_tasks(1);
        {
            let _t = task(base);
            let outer = span!("test.cross_chunk");
            // A long-lived worker flushes after every job while its own
            // outer span is still open; the End lands in a later chunk.
            flush();
            {
                let _inner = span!("test.cross_inner");
            }
            drop(outer);
        }
        let phases = take_task_phases(base).expect("recorded");
        assert_eq!(phases.span("test.cross_chunk").map(|s| s.count), Some(1));
        assert!(phases.span("test.cross_chunk").unwrap().nanos > 0);
        assert_eq!(phases.span("test.cross_inner").map(|s| s.count), Some(1));
        disable();
    }

    #[test]
    fn task_guards_restore_and_counters_split_by_task() {
        let _serial = serial();
        enable();
        let base = alloc_tasks(2);
        assert_eq!(current_task(), None);
        {
            let _a = task(base);
            assert_eq!(current_task(), Some(base));
            counter!("test.split", 1);
            {
                let _b = task(base + 1);
                counter!("test.split", 10);
                let _u = untasked();
                assert_eq!(current_task(), None);
                counter!("test.split", 100);
            }
            assert_eq!(current_task(), Some(base));
        }
        assert_eq!(current_task(), None);
        let a = take_task_phases(base).expect("task a");
        let b = take_task_phases(base + 1).expect("task b");
        assert_eq!(a.counter("test.split"), Some(1));
        assert_eq!(b.counter("test.split"), Some(10));
        assert_eq!(global_phases().counter("test.split"), Some(100));
        disable();
    }

    #[test]
    fn panic_span_captures_the_innermost_open_span() {
        let _serial = serial();
        enable();
        let _ = take_panic_span();
        let result = std::panic::catch_unwind(|| {
            let _outer = span!("test.panic_outer");
            let _inner = span!("test.panic_inner");
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(take_panic_span(), Some("test.panic_inner"));
        assert_eq!(take_panic_span(), None, "cleared on read");
        disable();
    }

    #[test]
    fn enable_discards_earlier_sessions() {
        let _serial = serial();
        enable();
        {
            let _s = span!("test.stale");
        }
        // The stale event sits unflushed in this thread's buffer; a new
        // session must not inherit it.
        enable();
        {
            let _s = span!("test.fresh");
        }
        let dump = drain();
        let json = dump.to_chrome_json();
        assert!(json.contains("test.fresh"));
        assert!(!json.contains("test.stale"));
        disable();
    }

    #[test]
    fn values_aggregate_count_sum_min_max() {
        let _serial = serial();
        enable();
        let base = alloc_tasks(1);
        {
            let _t = task(base);
            for v in [5i64, -2, 9] {
                value!("test.dist", v);
            }
        }
        let phases = take_task_phases(base).expect("recorded");
        let dist = phases
            .values
            .iter()
            .find(|(name, _)| name == "test.dist")
            .map(|(_, v)| *v)
            .expect("distribution present");
        assert_eq!(
            dist,
            ValueStat {
                count: 3,
                sum: 12,
                min: -2,
                max: 9
            }
        );
        disable();
    }
}
