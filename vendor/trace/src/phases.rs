//! Deterministic per-task aggregates and their hand-rolled JSON encoding.

use std::fmt::Write as _;

/// Aggregate of one span name within a task: how often it ran and the total
/// inclusive wall-clock time spent inside it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total inclusive duration in nanoseconds.
    pub nanos: u64,
}

/// Aggregate of one value distribution: sample count, sum, min and max.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueStat {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: i64,
    /// Smallest sample.
    pub min: i64,
    /// Largest sample.
    pub max: i64,
}

impl Default for ValueStat {
    fn default() -> Self {
        ValueStat {
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }
}

impl ValueStat {
    /// Folds one sample into the distribution.
    pub fn record(&mut self, sample: i64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Mean sample value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// The deterministic phase profile of one task: span stats, counter sums and
/// value distributions, each sorted by name.  Counts and sums depend only on
/// the events the task's work recorded — never on thread count or
/// interleaving; span durations are wall clock and can be stripped with
/// [`TaskPhases::zero_times`] for byte-stable comparisons.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaskPhases {
    /// Per-span-name stats, sorted by name.
    pub spans: Vec<(String, PhaseStat)>,
    /// Per-counter sums, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-distribution stats, sorted by name.
    pub values: Vec<(String, ValueStat)>,
}

impl TaskPhases {
    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.values.is_empty()
    }

    /// Looks up one span's stats by name.
    pub fn span(&self, name: &str) -> Option<PhaseStat> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    /// Looks up one counter's sum by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Zeroes every wall-clock duration, leaving only the deterministic
    /// counts and sums.  Deterministic harness reports apply this so phase
    /// blocks stay byte-stable across machines and worker counts.
    pub fn zero_times(&mut self) {
        for (_, stat) in &mut self.spans {
            stat.nanos = 0;
        }
    }

    /// Renders the phases as a JSON object:
    ///
    /// ```json
    /// {
    ///   "spans": {"core.route_net": {"count": 12, "seconds": 0.0031}},
    ///   "counters": {"core.search_nodes": 4821},
    ///   "values": {"core.batch_size": {"count": 3, "sum": 12, "min": 2, "max": 6}}
    /// }
    /// ```
    ///
    /// Keys are sorted, floats are finite, and the output parses with any
    /// JSON parser (the harness round-trips it through `tpl_harness::json`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let mut first_section = true;
        if !self.spans.is_empty() {
            push_section(&mut out, &mut first_section, "spans");
            let mut first = true;
            for (name, stat) in &self.spans {
                push_key(&mut out, &mut first, name);
                let _ = write!(
                    out,
                    "{{\"count\": {}, \"seconds\": {}}}",
                    stat.count,
                    format_seconds(stat.nanos)
                );
            }
            out.push('}');
        }
        if !self.counters.is_empty() {
            push_section(&mut out, &mut first_section, "counters");
            let mut first = true;
            for (name, sum) in &self.counters {
                push_key(&mut out, &mut first, name);
                let _ = write!(out, "{sum}");
            }
            out.push('}');
        }
        if !self.values.is_empty() {
            push_section(&mut out, &mut first_section, "values");
            let mut first = true;
            for (name, stat) in &self.values {
                push_key(&mut out, &mut first, name);
                let _ = write!(
                    out,
                    "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                    stat.count, stat.sum, stat.min, stat.max
                );
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

fn push_section(out: &mut String, first: &mut bool, name: &str) {
    if !*first {
        out.push_str(", ");
    }
    *first = false;
    let _ = write!(out, "\"{name}\": {{");
}

fn push_key(out: &mut String, first: &mut bool, name: &str) {
    if !*first {
        out.push_str(", ");
    }
    *first = false;
    let _ = write!(out, "{}: ", crate::chrome::json_string(name));
}

/// Seconds with nanosecond precision, no scientific notation, no trailing
/// zeros beyond what a float parser needs.
fn format_seconds(nanos: u64) -> String {
    if nanos == 0 {
        return "0.0".to_string();
    }
    let secs = nanos / 1_000_000_000;
    let frac = nanos % 1_000_000_000;
    let mut frac_str = format!("{frac:09}");
    while frac_str.len() > 1 && frac_str.ends_with('0') {
        frac_str.pop();
    }
    format!("{secs}.{frac_str}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_format_round_trips_precision() {
        assert_eq!(format_seconds(0), "0.0");
        assert_eq!(format_seconds(1), "0.000000001");
        assert_eq!(format_seconds(1_500_000_000), "1.5");
        assert_eq!(format_seconds(2_000_000_000), "2.0");
        assert_eq!(format_seconds(123_456_789), "0.123456789");
    }

    #[test]
    fn json_has_sorted_sections_and_parses_visually() {
        let phases = TaskPhases {
            spans: vec![(
                "a.span".into(),
                PhaseStat {
                    count: 2,
                    nanos: 1_500_000_000,
                },
            )],
            counters: vec![("b.count".into(), 7)],
            values: vec![(
                "c.val".into(),
                ValueStat {
                    count: 1,
                    sum: 4,
                    min: 4,
                    max: 4,
                },
            )],
        };
        assert_eq!(
            phases.to_json(),
            "{\"spans\": {\"a.span\": {\"count\": 2, \"seconds\": 1.5}}, \
             \"counters\": {\"b.count\": 7}, \
             \"values\": {\"c.val\": {\"count\": 1, \"sum\": 4, \"min\": 4, \"max\": 4}}}"
        );
    }

    #[test]
    fn empty_phases_render_as_empty_object() {
        assert_eq!(TaskPhases::default().to_json(), "{}");
        assert!(TaskPhases::default().is_empty());
    }

    #[test]
    fn zero_times_strips_durations_only() {
        let mut phases = TaskPhases {
            spans: vec![(
                "s".into(),
                PhaseStat {
                    count: 3,
                    nanos: 42,
                },
            )],
            counters: vec![("c".into(), 9)],
            values: Vec::new(),
        };
        phases.zero_times();
        assert_eq!(phases.span("s"), Some(PhaseStat { count: 3, nanos: 0 }));
        assert_eq!(phases.counter("c"), Some(9));
    }

    #[test]
    fn value_stat_tracks_extremes_and_mean() {
        let mut stat = ValueStat::default();
        for v in [3, -1, 10] {
            stat.record(v);
        }
        assert_eq!(stat.count, 3);
        assert_eq!(stat.sum, 12);
        assert_eq!(stat.min, -1);
        assert_eq!(stat.max, 10);
        assert_eq!(stat.mean(), Some(4.0));
        assert_eq!(ValueStat::default().mean(), None);
    }
}
