//! Vendored zero-dependency deterministic fault injection.
//!
//! The build environment has no crates.io access, so this crate stands in
//! for the slice of `fail`/`failpoint` the robustness tests need: named
//! fault points compiled into the production code that, under an installed
//! seeded fault plan, deterministically inject panics, small delays, or
//! budget exhaustion — and cost one relaxed atomic load when no plan is
//! installed.
//!
//! # Model
//!
//! * **Plans.** [`install`] arms a plan from a `u64` seed; [`clear`] disarms
//!   it.  Whether a given point fires, and what it injects, is a pure hash
//!   of `(seed, site, scope, key)` — there are **no global hit counters**,
//!   so the decision is independent of thread interleaving and worker
//!   count.  Two runs of the same work under the same seed inject exactly
//!   the same faults.
//! * **Sites.** [`point!`] names a site (co-located with the `tpl-trace`
//!   span taxonomy: `core.route_net`, `global.round`, `harness.execute`,
//!   ...).  An optional integer key salts the decision per work item
//!   (`point!("core.route_net", net_id)`), so a plan fails *some* nets of a
//!   case rather than all of them.
//! * **Scopes.** A thread-local scope string ([`scope`]) distinguishes
//!   logical execution contexts that share sites — the harness sets
//!   `"{method}/{case}/a{attempt}"` per attempt, so a retry under the
//!   degradation ladder deterministically escapes the faults of the
//!   previous attempt.  Thread pools capture the submitter's scope with
//!   [`current_scope`] and re-establish it on workers with
//!   [`propagate_scope`], exactly like `tpl-trace` task attribution.
//! * **Actions.** A firing point either panics (with a deterministic
//!   message naming site, scope, key and seed) or sleeps 1–3 ms (wall
//!   clock only — deterministic reports are unaffected).  Separately,
//!   [`trips_budget`] is queried at budget-arming sites and, when it fires,
//!   pre-exhausts the route budget — exercising the `Degraded` path and the
//!   harness's retry ladder without a real runaway search.
//!
//! With no plan installed every entry point is a single
//! `Ordering::Relaxed` load and a branch; no allocation, no hashing, no
//! TLS access.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-mille rate of panic injection at a firing [`point!`].
const PANIC_PER_MILLE: u64 = 40;
/// Per-mille rate of delay injection at a firing [`point!`] (on top of the
/// panic band).
const DELAY_PER_MILLE: u64 = 50;
/// Per-mille rate of budget trips at a [`trips_budget`] site.
const TRIP_PER_MILLE: u64 = 150;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SCOPE: RefCell<Arc<str>> = RefCell::new(Arc::from(""));
}

/// Arms fault injection with the plan derived from `seed`.  Every
/// subsequent fault-point decision in the process is a pure function of
/// `(seed, site, scope, key)`.
pub fn install(seed: u64) {
    SEED.store(seed, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disarms fault injection; every point becomes a no-op branch again.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// `true` while a fault plan is installed.  One relaxed atomic load — the
/// only cost instrumented code pays when injection is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed plan's seed, if any.
pub fn seed() -> Option<u64> {
    enabled().then(|| SEED.load(Ordering::Relaxed))
}

/// Guard restoring the previous fault scope on drop.
#[must_use = "dropping the guard immediately restores the previous scope"]
pub struct ScopeGuard {
    prev: Arc<str>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| *s.borrow_mut() = std::mem::replace(&mut self.prev, Arc::from("")));
    }
}

/// Sets this thread's fault scope until the guard drops.  Scopes label the
/// logical execution context (`"{method}/{case}/a{attempt}"` in the
/// harness) so identical sites in different contexts decide independently
/// — and deterministically, whatever thread runs them.
pub fn scope(label: &str) -> ScopeGuard {
    propagate_scope(Arc::from(label))
}

/// The current fault scope, for propagation onto pool workers.
pub fn current_scope() -> Arc<str> {
    SCOPE.with(|s| s.borrow().clone())
}

/// Re-establishes a captured fault scope on this thread (thread pools call
/// this around each task closure, mirroring `tpl_trace::propagate_task`).
pub fn propagate_scope(scope: Arc<str>) -> ScopeGuard {
    ScopeGuard {
        prev: SCOPE.with(|s| std::mem::replace(&mut *s.borrow_mut(), scope)),
    }
}

/// FNV-1a over the decision inputs: pure, order-free, interleaving-free.
fn decision_hash(kind: u8, site: &str, key: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&[kind]);
    eat(&SEED.load(Ordering::Relaxed).to_le_bytes());
    eat(site.as_bytes());
    eat(&[0xfe]);
    SCOPE.with(|s| eat(s.borrow().as_bytes()));
    eat(&[0xfe]);
    eat(&key.to_le_bytes());
    h
}

/// Evaluates a named fault point (prefer the [`point!`] macro, which hides
/// the enabled check).  Depending on the plan this panics with a
/// deterministic message, sleeps 1–3 ms, or does nothing.
pub fn hit(site: &'static str, key: u64) {
    if !enabled() {
        return;
    }
    let roll = decision_hash(0, site, key) % 1000;
    if roll < PANIC_PER_MILLE {
        let scope = current_scope();
        let seed = SEED.load(Ordering::Relaxed);
        panic!("fault injected at {site} (scope `{scope}`, key {key}, seed {seed})");
    } else if roll < PANIC_PER_MILLE + DELAY_PER_MILLE {
        std::thread::sleep(Duration::from_millis(1 + roll % 3));
    }
}

/// `true` when the plan injects budget exhaustion at this site (queried
/// once where a route budget is armed; a trip behaves exactly like a
/// zero-node budget, driving the `Degraded` outcome path).
pub fn trips_budget(site: &'static str) -> bool {
    enabled() && decision_hash(1, site, 0) % 1000 < TRIP_PER_MILLE
}

/// Evaluates a named fault point: `point!("core.route")` or, salted per
/// work item, `point!("core.route_net", net_id)`.  Compiles to one relaxed
/// atomic load and a branch when no plan is installed.
#[macro_export]
macro_rules! point {
    ($site:literal) => {
        if $crate::enabled() {
            $crate::hit($site, 0);
        }
    };
    ($site:literal, $key:expr) => {
        if $crate::enabled() {
            $crate::hit($site, $key as u64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    /// Plan state is process-global; tests serialise on this.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The lowest seed whose plan panics at `site` under `scope_label`.
    fn panicking_seed(site: &'static str, scope_label: &str) -> u64 {
        let _s = scope(scope_label);
        (0..10_000)
            .find(|&seed| {
                install(seed);
                let fired = catch_unwind(|| hit(site, 0)).is_err();
                clear();
                fired
            })
            .expect("some seed panics at the site")
    }

    #[test]
    fn disabled_points_do_nothing() {
        let _serial = serial();
        clear();
        assert!(!enabled());
        assert_eq!(seed(), None);
        for _ in 0..100 {
            point!("test.site");
            assert!(!trips_budget("test.site"));
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed_site_scope_key() {
        let _serial = serial();
        let seed = panicking_seed("test.det", "m/c/a1");
        install(seed);
        let _s = scope("m/c/a1");
        for _ in 0..3 {
            let err = catch_unwind(|| hit("test.det", 0)).expect_err("same inputs, same fault");
            let msg = err.downcast_ref::<String>().expect("string panic payload");
            assert!(msg.contains("test.det"), "message names the site: {msg}");
            assert!(msg.contains("m/c/a1"), "message names the scope: {msg}");
            assert!(msg.contains(&format!("seed {seed}")));
        }
        clear();
    }

    #[test]
    fn scope_and_key_change_the_decision_independently() {
        let _serial = serial();
        let seed = panicking_seed("test.salt", "m/c/a1");
        install(seed);
        let escapes_by_scope = (2..200).any(|a| {
            let _s = scope(&format!("m/c/a{a}"));
            catch_unwind(|| hit("test.salt", 0)).is_ok()
        });
        let escapes_by_key = {
            let _s = scope("m/c/a1");
            (1..200).any(|k| catch_unwind(|| hit("test.salt", k)).is_ok())
        };
        clear();
        assert!(escapes_by_scope, "a retry scope escapes the fault");
        assert!(escapes_by_key, "some keys escape the fault");
    }

    #[test]
    fn scope_guards_nest_and_propagate() {
        let _serial = serial();
        assert_eq!(&*current_scope(), "");
        {
            let _outer = scope("outer");
            assert_eq!(&*current_scope(), "outer");
            {
                let _inner = scope("inner");
                assert_eq!(&*current_scope(), "inner");
            }
            assert_eq!(&*current_scope(), "outer");
            let captured = current_scope();
            std::thread::scope(|s| {
                s.spawn(move || {
                    assert_eq!(&*current_scope(), "");
                    let _p = propagate_scope(captured);
                    assert_eq!(&*current_scope(), "outer");
                });
            });
        }
        assert_eq!(&*current_scope(), "");
    }

    #[test]
    fn some_seed_trips_and_some_seed_spares_the_budget() {
        let _serial = serial();
        let mut tripped = false;
        let mut spared = false;
        for seed in 0..200 {
            install(seed);
            if trips_budget("test.budget") {
                tripped = true;
            } else {
                spared = true;
            }
        }
        clear();
        assert!(tripped && spared, "trip rate is neither 0% nor 100%");
    }
}
