//! Vendored work-stealing thread-pool shim for intra-case parallelism.
//!
//! The build environment has no crates.io access, so this crate stands in
//! for the slice of `rayon` the routers need: fan a batch of independent
//! tasks over `jobs` worker threads and collect results in input order.
//! It is built on [`std::thread::scope`] plus a chunked work queue — every
//! worker claims chunks of the remaining items through one shared atomic
//! cursor, so a worker that finishes early "steals" the chunks a slower
//! worker never got to.
//!
//! Three properties make it usable inside deterministic routers:
//!
//! * **Order-independent results.** [`par_map`] writes each result into the
//!   slot of its input index; the returned `Vec` is always in input order,
//!   whatever the interleaving of workers.
//! * **Sequential degeneration.** With [`Parallelism::sequential`] (or one
//!   item) no thread is spawned at all: the closure runs inline, in input
//!   order, on the caller's stack. Callers that keep task outputs pure
//!   functions of their inputs therefore get bit-identical results for every
//!   `jobs` value.
//! * **Panic isolation.** A panicking task fails the *batch*, not the
//!   process: every task runs under [`catch_unwind`], remaining tasks still
//!   execute, and the lowest-indexed panic is reported as a [`TaskPanic`]
//!   error so the caller decides whether to resume unwinding.
//!
//! [`plan_batches`] is the companion scheduler: it partitions spatially
//! tagged work items (net bounding regions) into conflict-free batches whose
//! members can safely run under [`par_map`] against frozen shared state.
//!
//! The pool is instrumented with `tpl-trace`: each batch runs under a
//! `par.batch` span on the caller, each worker thread under a `par.worker`
//! span, chunk claims are sampled as the `par.chunk_items` distribution, and
//! the caller's task attribution propagates onto the workers so per-task
//! phase aggregates stay independent of the `jobs` setting.  All of it is
//! behind `tpl_trace::enabled()` — with tracing off the pool's hot path pays
//! one relaxed atomic load per batch.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Degree of intra-case parallelism, threaded from the CLI down to the
/// routers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    /// Number of worker threads a batch is fanned over (at least 1).
    pub jobs: usize,
}

impl Parallelism {
    /// Parallelism over `jobs` workers; zero is clamped to one.
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The sequential configuration: run every task inline on the caller.
    pub const fn sequential() -> Self {
        Self { jobs: 1 }
    }

    /// `true` when tasks run inline without spawning threads.
    pub fn is_sequential(&self) -> bool {
        self.jobs <= 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::sequential()
    }
}

/// A task of a parallel batch panicked.
///
/// When several tasks panic, the lowest input index is reported so the error
/// is deterministic whatever the worker interleaving was.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// Input index of the panicking task.
    pub index: usize,
    /// The panic message (or a placeholder for non-string payloads).
    pub message: String,
    /// Innermost `tpl-trace` span open where the panic originated (`None`
    /// with tracing disabled) — the phase a crash should be attributed to.
    pub span: Option<&'static str>,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.span {
            Some(span) => write!(
                f,
                "task {} panicked in {}: {}",
                self.index, span, self.message
            ),
            None => write!(f, "task {} panicked: {}", self.index, self.message),
        }
    }
}

impl std::error::Error for TaskPanic {}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Per-worker scratch slots reused across successive [`par_map_pooled`]
/// batches, so epoch-invalidated buffers (search state, cost caches) are
/// allocated once per run instead of once per batch.
#[derive(Debug, Default)]
pub struct ScratchPool<S> {
    slots: Vec<Mutex<Option<S>>>,
}

impl<S> ScratchPool<S> {
    /// Creates a pool with one slot per worker of `par`.
    pub fn new(par: Parallelism) -> Self {
        Self {
            slots: (0..par.jobs).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of scratch slots (the worker count the pool was sized for).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the pool has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// How many items a worker claims per visit to the shared cursor: small
/// enough that a slow task cannot strand much work behind it, large enough
/// that the atomic is off the hot path.
fn chunk_size(items: usize, jobs: usize) -> usize {
    (items / (jobs * 4)).max(1)
}

/// Maps `f` over `items` on `par.jobs` workers, returning results in input
/// order.
///
/// Equivalent to `items.iter().map(f).collect()` whenever each `f(item)` is
/// a pure function of its input — the parallel and sequential paths then
/// produce identical vectors. See [`par_map_pooled`] for per-worker scratch.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Result<Vec<R>, TaskPanic>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let pool: ScratchPool<()> = ScratchPool::new(par);
    par_map_pooled(par, items, &pool, || (), |_, item| f(item))
}

/// [`par_map`] with per-worker scratch state.
///
/// Each worker locks one slot of `pool` for the whole batch, creating its
/// scratch with `init` on first use and reusing it on later batches. The
/// scratch must be *epoch-safe*: `f`'s output may depend only on `item` and
/// on state `f` itself re-initialises, never on which items previously ran
/// on the same worker — that is what keeps results independent of `jobs`.
pub fn par_map_pooled<T, R, S, I, F>(
    par: Parallelism,
    items: &[T],
    pool: &ScratchPool<S>,
    init: I,
    f: F,
) -> Result<Vec<R>, TaskPanic>
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    assert!(
        pool.len() >= par.jobs.min(items.len().max(1)),
        "scratch pool smaller than worker count"
    );
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let _batch_span = tpl_trace::span!("par.batch", items = items.len());
    tpl_fault::point!("par.batch");

    let workers = par.jobs.min(items.len());
    if workers <= 1 {
        // Inline sequential path: no threads, input order, same slot-0
        // scratch the one-worker parallel path would use.
        let mut guard = lock_ignoring_poison(&pool.slots[0]);
        let scratch = guard.get_or_insert_with(&init);
        let mut out = Vec::with_capacity(items.len());
        let mut first_panic: Option<TaskPanic> = None;
        for (index, item) in items.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(scratch, item))) {
                Ok(r) => out.push(r),
                Err(payload) => {
                    first_panic.get_or_insert(TaskPanic {
                        index,
                        message: panic_message(payload.as_ref()),
                        span: tpl_trace::take_panic_span(),
                    });
                    break;
                }
            }
        }
        return match first_panic {
            Some(p) => Err(p),
            None => Ok(out),
        };
    }

    let cursor = AtomicUsize::new(0);
    let chunk = chunk_size(items.len(), workers);
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let panics: Mutex<Vec<TaskPanic>> = Mutex::new(Vec::new());
    // Task attribution of the submitting thread, re-established on every
    // worker so per-task phase aggregates are independent of `jobs`.
    let submitted = tpl_trace::current_task();
    // Fault-injection scope propagates the same way: decisions on a worker
    // hash the scope of the thread that submitted the batch, so a fault plan
    // fires at the same sites whatever the `jobs` setting.
    let fault_scope = tpl_fault::enabled().then(tpl_fault::current_scope);

    std::thread::scope(|scope| {
        let cursor = &cursor;
        let results = &results;
        let panics = &panics;
        let init = &init;
        let f = &f;
        let fault_scope = &fault_scope;
        for slot in pool.slots.iter().take(workers) {
            scope.spawn(move || {
                {
                    // Worker span stays task-free: worker lifetime depends on
                    // scheduling, not on any task's own work.
                    let _worker_span = tpl_trace::span!("par.worker");
                    let _fault_scope = fault_scope.clone().map(tpl_fault::propagate_scope);
                    tpl_fault::point!("par.worker");
                    let mut guard = lock_ignoring_poison(slot);
                    let scratch = guard.get_or_insert_with(&init);
                    let _task = tpl_trace::propagate_task(submitted);
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        if tpl_trace::enabled() {
                            // Chunk geometry varies with `jobs`; keep it out
                            // of the per-task aggregates.
                            let _untasked = tpl_trace::untasked();
                            tpl_trace::value!("par.chunk_items", end - start);
                        }
                        for index in start..end {
                            match catch_unwind(AssertUnwindSafe(|| f(scratch, &items[index]))) {
                                Ok(r) => *lock_ignoring_poison(&results[index]) = Some(r),
                                Err(payload) => lock_ignoring_poison(panics).push(TaskPanic {
                                    index,
                                    message: panic_message(payload.as_ref()),
                                    span: tpl_trace::take_panic_span(),
                                }),
                            }
                        }
                    }
                }
                // The scope join does not wait for TLS destructors; flush
                // after the worker span closes so every event this worker
                // recorded is visible once the batch returns.
                tpl_trace::flush();
            });
        }
    });

    let mut panics = panics.into_inner().unwrap_or_else(|p| p.into_inner());
    if let Some(first) = panics
        .iter()
        .min_by_key(|p| p.index)
        .cloned()
        .or_else(|| panics.pop())
    {
        return Err(first);
    }
    Ok(results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("every result slot is filled when no task panicked")
        })
        .collect())
}

/// Recovers a guard from a poisoned lock: poisoning can only come from a
/// panic that was already recorded as a task failure.
fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// An axis-aligned interaction region of one work item, in arbitrary integer
/// coordinates (database units or gcell indices alike). Bounds are
/// inclusive; touching regions count as conflicting, which is the
/// conservative choice for batch planning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// Minimum x (inclusive).
    pub x0: i64,
    /// Minimum y (inclusive).
    pub y0: i64,
    /// Maximum x (inclusive).
    pub x1: i64,
    /// Maximum y (inclusive).
    pub y1: i64,
}

impl Region {
    /// Creates a region, normalising swapped bounds.
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        Self {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// `true` when the two closed regions intersect or touch.
    #[inline]
    pub fn conflicts(&self, other: &Region) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }
}

/// Partitions items into conflict-free batches, preserving input order.
///
/// Greedy first-fit: items are visited in input order; an item joins the
/// currently open batch unless its region conflicts with a member already in
/// it, in which case it waits for a later batch. Every batch's members have
/// pairwise disjoint regions, so tasks whose effects stay inside their
/// region can run concurrently against frozen shared state and commit at the
/// batch barrier in input order — the outcome is independent of both batch
/// size and worker interleaving.
///
/// The returned batches cover every input index exactly once, and
/// concatenating them yields a permutation of `0..regions.len()` in which
/// conflicting items keep their relative input order.
pub fn plan_batches(regions: &[Region]) -> Vec<Vec<usize>> {
    let mut remaining: Vec<usize> = (0..regions.len()).collect();
    let mut batches = Vec::new();
    while !remaining.is_empty() {
        let mut batch: Vec<usize> = Vec::new();
        let mut deferred: Vec<usize> = Vec::new();
        // Running hull of the open batch: a cheap reject before the exact
        // pairwise scan.
        let mut hull: Option<Region> = None;
        for &index in &remaining {
            let region = regions[index];
            let maybe_conflicting = hull.map(|h| h.conflicts(&region)).unwrap_or(false);
            let conflicting =
                maybe_conflicting && batch.iter().any(|&b| regions[b].conflicts(&region));
            if conflicting {
                deferred.push(index);
            } else {
                hull = Some(match hull {
                    None => region,
                    Some(h) => Region {
                        x0: h.x0.min(region.x0),
                        y0: h.y0.min(region.y0),
                        x1: h.x1.max(region.x1),
                        y1: h.y1.max(region.y1),
                    },
                });
                batch.push(index);
            }
        }
        batches.push(batch);
        remaining = deferred;
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parallelism_clamps_and_defaults_to_sequential() {
        assert_eq!(Parallelism::new(0).jobs, 1);
        assert_eq!(Parallelism::new(8).jobs, 8);
        assert!(Parallelism::default().is_sequential());
        assert!(!Parallelism::new(2).is_sequential());
    }

    #[test]
    fn par_map_preserves_input_order_for_every_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = par_map(Parallelism::new(jobs), &items, |x| x * x).unwrap();
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map(Parallelism::new(4), &empty, |x| *x).unwrap(), empty);
        assert_eq!(
            par_map(Parallelism::new(4), &[7u32], |x| x + 1).unwrap(),
            vec![8]
        );
    }

    #[test]
    fn pooled_scratch_is_initialised_once_per_worker_and_reused() {
        let par = Parallelism::new(3);
        let pool: ScratchPool<Vec<u32>> = ScratchPool::new(par);
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        for _ in 0..5 {
            let out = par_map_pooled(
                par,
                &items,
                &pool,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::new()
                },
                |scratch, item| {
                    scratch.push(*item);
                    *item
                },
            )
            .unwrap();
            assert_eq!(out, items);
        }
        assert!(inits.load(Ordering::Relaxed) <= 3, "one init per worker");
    }

    #[test]
    fn a_panicking_task_fails_the_batch_not_the_process() {
        let items: Vec<u32> = (0..50).collect();
        for jobs in [1, 4] {
            let err = par_map(Parallelism::new(jobs), &items, |x| {
                assert!(*x != 13, "injected failure on {x}");
                *x
            })
            .expect_err("task 13 panics");
            assert_eq!(err.index, 13, "jobs = {jobs}");
            assert!(err.message.contains("injected failure"));
        }
        // The pool is still usable after a panicking batch.
        assert_eq!(
            par_map(Parallelism::new(4), &items, |x| *x).unwrap().len(),
            items.len()
        );
    }

    #[test]
    fn lowest_panicking_index_wins_whatever_the_interleaving() {
        let items: Vec<u32> = (0..64).collect();
        for _ in 0..10 {
            let err = par_map(Parallelism::new(8), &items, |x| {
                assert!(*x % 10 != 7, "boom");
                *x
            })
            .expect_err("several tasks panic");
            assert_eq!(err.index, 7);
        }
    }

    /// Tracing state is process-global; tracing tests serialise on this.
    fn trace_serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn panics_carry_their_origin_span_when_tracing() {
        let _serial = trace_serial();
        tpl_trace::enable();
        let items: Vec<u32> = (0..8).collect();
        for jobs in [1, 4] {
            let err = par_map(Parallelism::new(jobs), &items, |x| {
                let _s = tpl_trace::span!("par.test_phase");
                assert!(*x != 3, "boom");
                *x
            })
            .expect_err("task 3 panics");
            assert_eq!(err.span, Some("par.test_phase"), "jobs = {jobs}");
            assert!(err.to_string().contains("panicked in par.test_phase"));
        }
        tpl_trace::disable();
        // Without tracing no span is attached and the message is unchanged.
        let err = par_map(Parallelism::new(4), &items, |x| {
            assert!(*x != 3, "boom");
            *x
        })
        .expect_err("task 3 panics");
        assert_eq!(err.span, None);
        assert!(err.to_string().starts_with("task 3 panicked: "));
    }

    #[test]
    fn caller_task_attribution_propagates_for_every_job_count() {
        let _serial = trace_serial();
        tpl_trace::enable();
        let items: Vec<u64> = (0..100).collect();
        let phases_for = |jobs: usize| {
            let id = tpl_trace::alloc_tasks(1);
            let _t = tpl_trace::task(id);
            par_map(Parallelism::new(jobs), &items, |x| {
                tpl_trace::counter!("par.test_total", *x);
                *x
            })
            .unwrap();
            drop(_t);
            let mut phases = tpl_trace::take_task_phases(id).expect("task recorded");
            phases.zero_times();
            phases
        };
        let sequential = phases_for(1);
        assert_eq!(sequential.counter("par.test_total"), Some(4950));
        for jobs in [2, 8] {
            assert_eq!(phases_for(jobs), sequential, "jobs = {jobs}");
        }
        tpl_trace::disable();
    }

    #[test]
    fn regions_conflict_when_touching() {
        let a = Region::new(0, 0, 10, 10);
        assert!(a.conflicts(&Region::new(10, 10, 20, 20)));
        assert!(a.conflicts(&Region::new(5, 5, 6, 6)));
        assert!(!a.conflicts(&Region::new(11, 0, 20, 10)));
        // Swapped bounds are normalised.
        assert_eq!(Region::new(10, 10, 0, 0), a);
    }

    #[test]
    fn batches_are_conflict_free_and_cover_every_item_once() {
        // A chain of overlapping regions plus isolated ones.
        let regions: Vec<Region> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    Region::new(i * 5, 0, i * 5 + 12, 10)
                } else {
                    Region::new(i * 100 + 1000, 50, i * 100 + 1001, 51)
                }
            })
            .collect();
        let batches = plan_batches(&regions);
        let mut seen: Vec<usize> = batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..regions.len()).collect::<Vec<_>>());
        for batch in &batches {
            for (i, &a) in batch.iter().enumerate() {
                for &b in &batch[i + 1..] {
                    assert!(
                        !regions[a].conflicts(&regions[b]),
                        "items {a} and {b} conflict within one batch"
                    );
                }
            }
        }
    }

    #[test]
    fn disjoint_items_form_a_single_batch_in_input_order() {
        let regions: Vec<Region> = (0..8)
            .map(|i| Region::new(i * 10, 0, i * 10 + 5, 5))
            .collect();
        let batches = plan_batches(&regions);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0], (0..8).collect::<Vec<_>>());
        assert!(plan_batches(&[]).is_empty());
    }
}
