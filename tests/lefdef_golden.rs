//! Golden-corpus snapshot tests for LEF/DEF ingestion.
//!
//! Each hand-written corpus pair under `tests/data/lefdef/` is lowered and
//! asserted *exactly* — names, die, technology, every pin shape, net arity,
//! obstacle order/layer/colourability and pre-routed wiring — so any change
//! to the parser or the lowering conventions shows up as a readable diff
//! here, not as a silent behaviour shift.  A final test routes the minimal
//! case through all four methods and checks the report is byte-identical
//! across worker counts.

use mr_tpl::design::{LayerId, NetId};
use mr_tpl::geom::Rect;
use mr_tpl::harness::{run_matrix, InputProvenance, MethodRegistry, RunOptions, RunReport};
use mr_tpl::ispd::cases_from_def_dir;
use mr_tpl::lefdef::{load_design, LoweredDesign};
use std::path::PathBuf;

/// Absolute path of a corpus file.
fn corpus(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data/lefdef")
        .join(file)
}

/// Loads a corpus DEF with its LEF (`<stem>.lef` sibling or `tech.lef`).
fn load(def: &str) -> LoweredDesign {
    let def_path = corpus(def);
    let sibling = def_path.with_extension("lef");
    let lef = if sibling.is_file() {
        sibling
    } else {
        corpus("tech.lef")
    };
    load_design(&lef, &def_path).expect("corpus files are well-formed")
}

/// Asserts one pin's name, net and single M1 shape.
fn assert_pin(
    d: &mr_tpl::design::Design,
    idx: usize,
    name: &str,
    net: usize,
    rect: (i64, i64, i64, i64),
) {
    let pin = &d.pins()[idx];
    assert_eq!(pin.name(), name, "pin {idx} name");
    assert_eq!(pin.net(), NetId::from(net), "pin {name} net");
    assert_eq!(pin.shapes().len(), 1, "pin {name} shape count");
    assert_eq!(pin.shapes()[0].0, LayerId::new(0), "pin {name} layer");
    assert_eq!(
        pin.shapes()[0].1,
        Rect::from_coords(rect.0, rect.1, rect.2, rect.3),
        "pin {name} rect"
    );
}

#[test]
fn minimal_lowers_exactly() {
    let lowered = load("minimal.def");
    let d = &lowered.design;
    assert_eq!(d.name(), "minimal");
    assert_eq!(d.die(), Rect::from_coords(0, 0, 400, 400));
    // Technology from minimal.lef (the sibling-LEF discovery path).
    assert_eq!(d.tech().num_layers(), 3);
    assert_eq!(d.tech().dcolor(), 45);
    assert_eq!(d.tech().dbu_per_micron(), 1000);
    for (i, name) in ["M1", "M2", "M3"].iter().enumerate() {
        let layer = d.tech().layer(LayerId::new(i as u32));
        assert_eq!(layer.name, *name);
        assert_eq!(
            (layer.pitch, layer.offset, layer.width, layer.spacing),
            (20, 10, 8, 8)
        );
    }
    // All seven pins are net-referenced, in DEF file order.
    assert_eq!(d.pins().len(), 7);
    assert_pin(d, 0, "n0_a", 0, (6, 6, 14, 14));
    assert_pin(d, 1, "n0_b", 0, (206, 206, 214, 214));
    assert_pin(d, 2, "n1_a", 1, (6, 106, 14, 114));
    assert_pin(d, 3, "n1_b", 1, (306, 106, 314, 114));
    assert_pin(d, 4, "n2_a", 2, (106, 306, 114, 314));
    assert_pin(d, 5, "n2_b", 2, (206, 306, 214, 314));
    assert_pin(d, 6, "n2_c", 2, (306, 366, 314, 374));
    let arities: Vec<(&str, usize)> = d.nets().iter().map(|n| (n.name(), n.pin_count())).collect();
    assert_eq!(arities, vec![("n0", 2), ("n1", 2), ("n2", 3)]);
    assert!(d.obstacles().is_empty());
    assert!(lowered.routing.is_none());
}

#[test]
fn dense_obstacles_lowers_every_obstacle_kind() {
    let lowered = load("dense_obstacles.def");
    let d = &lowered.design;
    assert_eq!(d.name(), "dense_obstacles");
    assert_eq!(d.tech().num_layers(), 3);
    // Referenced pins only: four DEF pins, then the two macro pins of u1
    // translated by its (100, 100) placement.  `spare` is not a design pin.
    assert_eq!(d.pins().len(), 6);
    assert_pin(d, 0, "p0", 0, (6, 6, 14, 14));
    assert_pin(d, 1, "p1", 0, (306, 306, 314, 314));
    assert_pin(d, 2, "p2", 1, (6, 206, 14, 214));
    assert_pin(d, 3, "p3", 1, (306, 206, 314, 214));
    assert_pin(d, 4, "u1/a", 2, (106, 106, 114, 114));
    assert_pin(d, 5, "u1/z", 2, (146, 146, 154, 154));
    let arities: Vec<(&str, usize)> = d.nets().iter().map(|n| (n.name(), n.pin_count())).collect();
    assert_eq!(arities, vec![("d0", 2), ("d1", 2), ("d2", 2)]);
    // Obstacle order: special nets in file order (rects before wires), then
    // macro OBS per component, then unreferenced pin metal.
    let got: Vec<(u32, Rect, bool)> = d
        .obstacles()
        .iter()
        .map(|o| (o.layer.index() as u32, o.rect, o.colorable))
        .collect();
    assert_eq!(
        got,
        vec![
            // obsa (+ USE SIGNAL): colourable.
            (0, Rect::from_coords(200, 40, 260, 60), true),
            (1, Rect::from_coords(40, 240, 60, 300), true),
            // vdd wire (default POWER), width 20 with square line caps.
            (2, Rect::from_coords(10, 370, 390, 390), false),
            // gnd (+ USE GROUND).
            (0, Rect::from_coords(160, 0, 240, 20), false),
            // Macro OBS of u1, translated by (100, 100).
            (1, Rect::from_coords(120, 125, 140, 135), false),
            // The unreferenced `spare` pin's metal, colourable.
            (0, Rect::from_coords(366, 366, 374, 374), true),
        ]
    );
    assert!(lowered.routing.is_none());
}

#[test]
fn pin_escape_lowers_exactly() {
    let lowered = load("pin_escape.def");
    let d = &lowered.design;
    assert_eq!(d.name(), "pin_escape");
    assert_eq!(d.die(), Rect::from_coords(0, 0, 200, 200));
    assert_eq!(d.pins().len(), 8);
    // Clustered corner pins first (file order), far partners after.
    assert_pin(d, 0, "e0_a", 0, (6, 6, 14, 14));
    assert_pin(d, 1, "e1_a", 1, (26, 6, 34, 14));
    assert_pin(d, 2, "e2_a", 2, (6, 26, 14, 34));
    assert_pin(d, 3, "e3_a", 3, (26, 26, 34, 34));
    assert_pin(d, 4, "e0_b", 0, (166, 166, 174, 174));
    assert_pin(d, 5, "e1_b", 1, (166, 146, 174, 154));
    assert_pin(d, 6, "e2_b", 2, (146, 166, 154, 174));
    assert_pin(d, 7, "e3_b", 3, (146, 146, 154, 154));
    assert_eq!(d.nets().len(), 4);
    // The escape wall: two POWER blockages on M1.
    let got: Vec<(u32, Rect, bool)> = d
        .obstacles()
        .iter()
        .map(|o| (o.layer.index() as u32, o.rect, o.colorable))
        .collect();
    assert_eq!(
        got,
        vec![
            (0, Rect::from_coords(40, 0, 48, 40), false),
            (0, Rect::from_coords(0, 40, 24, 48), false),
        ]
    );
}

#[test]
fn routed_def_lowers_prerouted_wiring() {
    let lowered = load("routed.def");
    let d = &lowered.design;
    assert_eq!(d.name(), "minimal_routed");
    assert_eq!(d.pins().len(), 7);
    assert_eq!(d.nets().len(), 3);
    let routing = lowered.routing.expect("routed.def carries + ROUTED wiring");
    assert_eq!(routing.routed_count(), 1);
    let rn = routing.get(NetId::new(0)).expect("n0 is routed");
    // Two segments at the layers' default width (8), one M1->M2 via.
    assert_eq!(rn.segments.len(), 2);
    assert_eq!(rn.segments[0].layer, LayerId::new(0));
    assert_eq!(rn.segments[0].width, 8);
    assert_eq!(rn.segments[1].layer, LayerId::new(1));
    assert_eq!(rn.segments[1].width, 8);
    assert_eq!(rn.vias.len(), 1);
    assert_eq!(rn.vias[0].lower_layer, LayerId::new(0));
    assert!(routing.get(NetId::new(1)).is_none());
    assert!(routing.get(NetId::new(2)).is_none());
}

#[test]
fn corpus_dir_discovery_finds_all_cases_with_the_right_lefs() {
    let cases = cases_from_def_dir(&corpus("")).expect("corpus directory loads");
    // Sorted by DEF file name; case names come from the DESIGN statements.
    let names: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    assert_eq!(
        names,
        vec!["dense_obstacles", "minimal", "pin_escape", "minimal_routed"]
    );
    for case in &cases {
        let (lef, def) = case.lefdef_paths().expect("external case");
        let expect_sibling = case.name() == "minimal";
        let lef_name = lef.file_name().unwrap().to_str().unwrap();
        if expect_sibling {
            assert_eq!(lef_name, "minimal.lef", "sibling-LEF discovery");
        } else {
            assert_eq!(
                lef_name,
                "tech.lef",
                "tech.lef fallback for {}",
                def.display()
            );
        }
    }
}

#[test]
fn minimal_routes_through_all_methods_jobs_invariant() {
    let cases =
        vec![
            mr_tpl::ispd::Case::from_lefdef(&corpus("minimal.lef"), &corpus("minimal.def"))
                .expect("minimal corpus pair loads"),
        ];
    let registry = MethodRegistry::builtin();
    let methods = registry.select("drcu,dac12,decompose,mrtpl").unwrap();
    let report_with_jobs = |jobs: usize| {
        let records = run_matrix(
            &methods,
            &cases,
            &RunOptions {
                jobs,
                deterministic: true,
                ..RunOptions::default()
            },
        );
        for r in &records {
            assert_eq!(r.case, "minimal");
            assert!(r.record().is_some(), "{} failed: {:?}", r.method, r.error());
        }
        RunReport {
            suite: "external".to_string(),
            input: InputProvenance::External {
                lef: None,
                def: corpus("minimal.def").display().to_string(),
            },
            scale: 1.0,
            jobs,
            net_jobs: 1,
            deterministic: true,
            methods: methods.iter().map(|m| m.name().to_string()).collect(),
            records,
        }
        .to_json()
    };
    // Deterministic reports are byte-identical across worker counts.
    assert_eq!(report_with_jobs(1), report_with_jobs(2));
}
