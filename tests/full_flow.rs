//! Cross-crate integration tests: the full flow from benchmark generation
//! through global routing, detailed routing (all three methods) and
//! evaluation.

use mr_tpl::dac12::{Dac12Config, Dac12Router};
use mr_tpl::decompose::{DecomposeConfig, Decomposer};
use mr_tpl::ispd::{score_solution, ScoreWeights};
use mr_tpl::prelude::*;

fn tiny_case18() -> (Design, RouteGuides) {
    let design = CaseParams::ispd18_like(1).scaled(0.4).generate();
    let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
    (design, guides)
}

fn tiny_case19() -> (Design, RouteGuides) {
    let design = CaseParams::ispd19_like(1).scaled(0.4).generate();
    let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
    (design, guides)
}

#[test]
fn mrtpl_routes_connects_and_colors_everything() {
    let (design, guides) = tiny_case18();
    let result = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
    assert_eq!(result.solution.routed_count(), design.nets().len());
    assert_eq!(result.stats.failed_nets, 0);
    for net in design.nets() {
        let routed = result.solution.get(net.id()).unwrap();
        assert!(routed.connects_all_pins(&design, net.id()));
        let masks = &result.segment_masks[net.id().index()];
        assert_eq!(masks.len(), routed.segments.len());
        assert!(masks.iter().all(|m| m.is_some()));
    }
    // The score of a complete solution never includes unrouted-net penalties.
    let score = score_solution(&design, &guides, &result.solution, &ScoreWeights::default());
    assert_eq!(score.unrouted_nets, 0);
}

#[test]
fn all_three_methods_agree_on_the_routing_contract() {
    let (design, guides) = tiny_case18();

    let ours = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
    let dac = Dac12Router::new(Dac12Config::default()).route(&design, &guides);
    let blind = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);

    for net in design.nets() {
        for (label, solution) in [
            ("mrtpl", &ours.solution),
            ("dac12", &dac.solution),
            ("drcu", &blind.solution),
        ] {
            let routed = solution.get(net.id()).unwrap_or_else(|| {
                panic!("{label} did not route net {}", net.name());
            });
            assert!(
                routed.connects_all_pins(&design, net.id()),
                "{label} broke net {}",
                net.name()
            );
        }
    }
}

#[test]
fn color_aware_routing_beats_or_matches_decomposition_on_conflicts() {
    let (design, guides) = tiny_case19();
    let blind = DrCuRouter::new(DrCuConfig::default()).route(&design, &guides);
    let decomposed =
        Decomposer::new(DecomposeConfig::default()).decompose(&design, &blind.solution);
    let ours = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
    assert!(
        ours.stats.conflicts <= decomposed.stats.conflicts,
        "Mr.TPL ({}) should not have more conflicts than decomposition ({})",
        ours.stats.conflicts,
        decomposed.stats.conflicts
    );
}

#[test]
fn the_whole_flow_is_deterministic_end_to_end() {
    let run = || {
        let (design, guides) = tiny_case18();
        let result = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
        (
            result.stats.conflicts,
            result.stats.stitches,
            result.solution.total_wirelength(),
            result.solution.total_vias(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn design_text_format_round_trips_through_the_generator() {
    let design = CaseParams::ispd18_like(1).scaled(0.4).generate();
    let text = mr_tpl::design::write_design(&design);
    let parsed = mr_tpl::design::read_design(&text).expect("parses");
    assert_eq!(parsed.nets().len(), design.nets().len());
    assert_eq!(parsed.pins().len(), design.pins().len());
    assert_eq!(parsed.tech().dcolor(), design.tech().dcolor());
}

#[test]
fn colored_layouts_report_consistent_statistics() {
    let (design, guides) = tiny_case18();
    let result = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
    let stats = result.layout.stats();
    assert_eq!(stats.conflicts, result.stats.conflicts);
    assert_eq!(stats.stitches, result.stats.stitches);
    assert_eq!(stats.conflicts, result.layout.conflicts().len());
    assert_eq!(stats.stitches, result.layout.stitches().len());
}
