//! Workspace-level property tests: invariants that must hold for any
//! generated benchmark, not just the curated ones.

use mr_tpl::prelude::*;
use proptest::prelude::*;
use tpl_ispd::CaseParams;

fn arb_case() -> impl Strategy<Value = CaseParams> {
    (1usize..=3, any::<u16>()).prop_map(|(idx, salt)| {
        let mut params = CaseParams::ispd18_like(idx).scaled(0.35);
        params.seed = params.seed.wrapping_add(salt as u64);
        params
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the seed, Mr.TPL routes every net, connects every pin, and
    /// assigns a mask to every emitted wire segment.
    #[test]
    fn mrtpl_invariants_hold_for_random_benchmarks(params in arb_case()) {
        let design = params.generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        let result = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
        prop_assert_eq!(result.solution.routed_count(), design.nets().len());
        for net in design.nets() {
            let routed = result.solution.get(net.id()).unwrap();
            prop_assert!(routed.connects_all_pins(&design, net.id()));
            let masks = &result.segment_masks[net.id().index()];
            prop_assert_eq!(masks.len(), routed.segments.len());
            prop_assert!(masks.iter().all(|m| m.is_some()));
        }
        // Stitches and conflicts are consistent with the reported layout.
        prop_assert_eq!(result.layout.count_conflicts(), result.stats.conflicts);
        prop_assert_eq!(result.layout.count_stitches(), result.stats.stitches);
    }

    /// Intra-case parallelism never changes the result: for any generated
    /// benchmark, routing with 2, 4 or 8 workers produces exactly the
    /// wirelength, via count, conflict count and search effort of the
    /// sequential run.
    #[test]
    fn worker_count_is_invisible_for_random_benchmarks(params in arb_case()) {
        let design = params.generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        let base = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
        for jobs in [2usize, 4, 8] {
            let config = MrTplConfig {
                parallelism: Parallelism::new(jobs),
                ..MrTplConfig::default()
            };
            let parallel = MrTplRouter::new(config).route(&design, &guides);
            prop_assert_eq!(
                parallel.solution.total_wirelength(),
                base.solution.total_wirelength()
            );
            prop_assert_eq!(parallel.solution.total_vias(), base.solution.total_vias());
            prop_assert_eq!(parallel.stats.conflicts, base.stats.conflicts);
            prop_assert_eq!(parallel.stats.stitches, base.stats.stitches);
            prop_assert_eq!(parallel.stats.search_nodes, base.stats.search_nodes);
        }
    }

    /// Guides always cover every pin of every net, whatever the seed.
    #[test]
    fn guides_cover_pins_for_random_benchmarks(params in arb_case()) {
        let design = params.generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        for net in design.nets() {
            for pin in net.pins() {
                let (layer, rect) = design.pin(*pin).shapes()[0];
                prop_assert!(guides.covers(net.id(), layer, &rect));
            }
        }
    }
}

/// Lossless LEF/DEF round-trip: writing any design and parsing it back
/// yields the same design.  Equality goes through the canonical
/// `write_design` dump so names, order, technology, every shape and every
/// colourable flag are all covered.
fn assert_lefdef_round_trips(design: &mr_tpl::design::Design) -> Result<(), TestCaseError> {
    use mr_tpl::lefdef::{lower, parse_def, parse_lef, write_def, write_lef};
    let lef_src = write_lef(design.tech());
    let def_src = write_def(design, None);
    let lef = parse_lef(&lef_src).expect("written LEF parses");
    let def = parse_def(&def_src).expect("written DEF parses");
    let lowered = lower(&lef, &def).expect("written pair lowers");
    prop_assert_eq!(
        mr_tpl::design::write_design(&lowered.design),
        mr_tpl::design::write_design(design)
    );
    prop_assert!(lowered.routing.is_none());
    Ok(())
}

proptest! {
    // The round-trip satellite runs a larger sample than the routing
    // invariants above: writing + parsing is cheap, and the corners
    // (obstacle mixes, multi-pin nets, odd die sizes) live in the tails.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any synthetic benchmark survives design -> LEF/DEF -> parse ->
    /// lower unchanged.
    #[test]
    fn lefdef_round_trip_preserves_random_designs(params in arb_roundtrip_case()) {
        assert_lefdef_round_trips(&params.generate())?;
    }
}

/// A wider parameter space than `arb_case`: both suite families, more
/// scales, any seed — round-tripping is cheap enough to cover it.
fn arb_roundtrip_case() -> impl Strategy<Value = CaseParams> {
    (1usize..=10, any::<u16>(), 0u8..=1, 15u32..=40).prop_map(|(idx, salt, family, scale)| {
        let mut params = if family == 0 {
            CaseParams::ispd18_like(idx)
        } else {
            CaseParams::ispd19_like(idx)
        }
        .scaled(f64::from(scale) / 100.0);
        params.seed = params.seed.wrapping_add(u64::from(salt));
        params
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Routed wiring also survives the round-trip: route a random design,
    /// write the solution into the DEF, parse it back and compare net by
    /// net.
    #[test]
    fn lefdef_round_trip_preserves_routed_wiring(params in arb_case()) {
        use mr_tpl::lefdef::{lower, parse_def, parse_lef, write_def, write_lef};
        let design = params.generate();
        let guides = GlobalRouter::new(GlobalConfig::default()).route(&design);
        let result = MrTplRouter::new(MrTplConfig::default()).route(&design, &guides);
        let lef = parse_lef(&write_lef(design.tech())).expect("written LEF parses");
        let def_src = write_def(&design, Some(&result.solution));
        let def = parse_def(&def_src).expect("written DEF parses");
        let lowered = lower(&lef, &def).expect("written pair lowers");
        let routing = lowered.routing.expect("wiring survives");
        prop_assert_eq!(routing.routed_count(), result.solution.routed_count());
        for net in design.nets() {
            prop_assert_eq!(routing.get(net.id()), result.solution.get(net.id()));
        }
    }
}
