//! `bench-diff` — compares two `mrtpl-bench` JSON reports and fails on
//! counter regressions.
//!
//! ```bash
//! bench-diff BENCH_6.json fresh-report.json [--threshold 0.25]
//! ```
//!
//! The tool pairs records by `(method, case)` and compares every
//! **non-wall-clock** counter: `conflicts`, `stitches`, `cost`, `wirelength`,
//! `vias`, `search_nodes`, `rrr_iterations`.  A counter regresses when the
//! new value exceeds the old by more than the threshold (default 25%) and the
//! old value is positive; `old == 0 -> new > 0` transitions are reported as
//! warnings but do not fail the diff, since no percentage is defined.
//! Wall-clock fields (`runtime_seconds`) are ignored: CI machines are noisy,
//! and the committed baselines are deterministic-mode reports with zeroed
//! runtimes anyway.
//!
//! Exit status: 0 when no counter regressed and every baseline record is
//! present and `ok` in the new report; 1 otherwise; 2 on usage/parse errors.

use std::process::ExitCode;
use tpl_harness::json::JsonValue;

/// The counters compared, in report order.  Everything here is independent
/// of wall clock and worker count by the determinism contract of the
/// routers, so any drift is a real behaviour change.
const COUNTERS: [&str; 7] = [
    "conflicts",
    "stitches",
    "cost",
    "wirelength",
    "vias",
    "search_nodes",
    "rrr_iterations",
];

const USAGE: &str = "\
bench-diff — compare two mrtpl-bench JSON reports

USAGE:
  bench-diff <baseline.json> <new.json> [--threshold <FRACTION>]
             [--format <lines|table>] [--ignore <COUNTER>]...
             [--require-improvement <COUNTER>]...
             [--require-no-regression <COUNTER>]... [--totals] [--exact]

Fails (exit 1) when any non-wall-clock counter of any (method, case) pair
regresses by more than the threshold (default 0.25 = 25%), or when a
baseline record is missing or failed in the new report.

  --ignore <COUNTER>               skip this counter entirely (repeatable)
  --require-improvement <COUNTER>  additionally fail unless the counter's
                                   total over all paired records STRICTLY
                                   improves (new sum < old sum); repeatable
  --require-no-regression <COUNTER>
                                   additionally fail if the counter's total
                                   over all paired records grows at all
                                   (new sum > old sum); repeatable
  --totals                         compare per-method totals instead of
                                   per-(method, case) records: right for
                                   baselines where individual cases may
                                   trade against each other but aggregate
                                   quality must hold
  --exact                          any drift of any compared counter is
                                   fatal, improvements included (used to
                                   prove two runs are result-identical)

When both reports carry `phases` blocks (the metrics.json export of
`mrtpl-bench --trace`), per-phase counters are compared too; phase drift is
reported as a warning, never a failure (even under --exact, where only the
acceptance counters must match).  `--format table` prints an aligned
old/new/delta table of every compared counter instead of one line per
problem.
";

/// One record key: the `(method, case)` pair the reports are joined on.
type Key = (String, String);

/// `--totals` accumulator entry: `(method, counter) -> (old sum, new sum)`.
type MethodTotal = ((String, &'static str), (f64, f64));

/// The `ok` records of a report keyed for joining, plus its failed keys.
type KeyedRecords<'a> = (Vec<(Key, &'a JsonValue)>, Vec<Key>);

/// A comparison problem found between the two reports.
#[derive(Debug, PartialEq)]
enum Problem {
    /// A counter rose past the threshold: `(key, counter, old, new)`.
    Regression(Key, &'static str, f64, f64),
    /// A counter changed at all under `--exact`: `(key, counter, old, new)`.
    Drift(Key, &'static str, f64, f64),
    /// A `--require-improvement` counter's total did not strictly improve:
    /// `(counter, old sum, new sum)`.
    NotImproved(String, f64, f64),
    /// A `--require-no-regression` counter's total grew:
    /// `(counter, old sum, new sum)`.
    TotalRegressed(String, f64, f64),
    /// A counter went `0 -> positive`; reported, not fatal.
    FromZero(Key, &'static str, f64),
    /// A per-phase counter drifted past the threshold; reported, not fatal
    /// (phase aggregates are observability data, not acceptance counters).
    PhaseDrift(Key, String, f64, f64),
    /// The baseline record is absent from the new report.
    Missing(Key),
    /// The record exists but its `status` is not `ok`.
    Failed(Key),
}

impl Problem {
    fn is_fatal(&self) -> bool {
        !matches!(self, Problem::FromZero(..) | Problem::PhaseDrift(..))
    }

    fn render(&self) -> String {
        match self {
            Problem::Regression((m, c), counter, old, new) => format!(
                "REGRESSION {m}/{c}: {counter} {old} -> {new} (+{:.1}%)",
                100.0 * (new - old) / old
            ),
            Problem::Drift((m, c), counter, old, new) => {
                format!("DRIFT {m}/{c}: {counter} {old} -> {new} (exact mode)")
            }
            Problem::NotImproved(counter, old, new) => format!(
                "NOT IMPROVED: total {counter} {old} -> {new} (strict improvement required)"
            ),
            Problem::TotalRegressed(counter, old, new) => {
                format!("REGRESSED: total {counter} {old} -> {new} (no regression allowed)")
            }
            Problem::FromZero((m, c), counter, new) => {
                format!("warning {m}/{c}: {counter} 0 -> {new}")
            }
            Problem::PhaseDrift((m, c), name, old, new) => format!(
                "warning {m}/{c}: phase {name} {old} -> {new} ({:+.1}%)",
                100.0 * (new - old) / old
            ),
            Problem::Missing((m, c)) => format!("MISSING {m}/{c}: not in the new report"),
            Problem::Failed((m, c)) => format!("FAILED {m}/{c}: status is not ok"),
        }
    }
}

/// Extracts the `ok` records of a report as `(key, record-object)` pairs,
/// plus the keys of failed records.
fn records_by_key(report: &JsonValue) -> Result<KeyedRecords<'_>, String> {
    let records = report
        .get("records")
        .and_then(JsonValue::as_array)
        .ok_or("report has no `records` array")?;
    let mut ok = Vec::new();
    let mut failed = Vec::new();
    for record in records {
        let method = record
            .get("method")
            .and_then(JsonValue::as_str)
            .ok_or("record has no `method`")?;
        let case = record
            .get("case")
            .and_then(JsonValue::as_str)
            .ok_or("record has no `case`")?;
        let key = (method.to_string(), case.to_string());
        match record.get("status").and_then(JsonValue::as_str) {
            Some("ok") => ok.push((key, record)),
            _ => failed.push(key),
        }
    }
    Ok((ok, failed))
}

/// A record's counter value, where both a missing field and an explicit
/// `null` count as absent.  Records of externally-ingested LEF/DEF cases
/// can carry `null` for counters their flow does not track (e.g.
/// `rrr_iterations` when the DEF arrived pre-routed), and `null` is also
/// what non-finite floats serialize as; neither should be comparable.
fn counter_value(record: &JsonValue, counter: &str) -> Option<f64> {
    match record.get(counter) {
        None | Some(JsonValue::Null) => None,
        Some(value) => value.as_f64(),
    }
}

/// The per-phase counters of a record's `phases` block (empty when the
/// report was produced without `--trace`).
fn phase_counters(record: &JsonValue) -> Vec<(&str, f64)> {
    let Some(JsonValue::Object(entries)) = record.get("phases").and_then(|p| p.get("counters"))
    else {
        return Vec::new();
    };
    entries
        .iter()
        .filter_map(|(name, value)| value.as_f64().map(|v| (name.as_str(), v)))
        .collect()
}

/// How [`diff_reports`] compares the two reports.
#[derive(Debug, Clone, Default)]
struct DiffOptions {
    /// Regression threshold as a fraction (0.25 = 25%).
    threshold: f64,
    /// Counters excluded from every comparison (`--ignore`).
    ignore: Vec<String>,
    /// Counters whose totals must strictly improve
    /// (`--require-improvement`).
    require_improvement: Vec<String>,
    /// Counters whose totals must not grow (`--require-no-regression`).
    require_no_regression: Vec<String>,
    /// Compare per-method totals instead of per-(method, case) records
    /// (`--totals`).
    totals: bool,
    /// Any drift of any compared counter is fatal (`--exact`).
    exact: bool,
}

/// Compares two parsed reports; the returned problems are in baseline record
/// order, counters within a record in [`COUNTERS`] order, then per-phase
/// counters in report order, then one entry per `--require-improvement`
/// counter that failed to improve.
fn diff_reports(
    baseline: &JsonValue,
    new: &JsonValue,
    options: &DiffOptions,
) -> Result<Vec<Problem>, String> {
    let (old_records, _) = records_by_key(baseline)?;
    let (new_records, new_failed) = records_by_key(new)?;
    let mut problems = Vec::new();
    // (counter, old sum, new sum, seen on any paired record).
    let mut improvements: Vec<(&str, f64, f64, bool)> = options
        .require_improvement
        .iter()
        .map(|c| (c.as_str(), 0.0, 0.0, false))
        .collect();
    let mut no_regressions: Vec<(&str, f64, f64, bool)> = options
        .require_no_regression
        .iter()
        .map(|c| (c.as_str(), 0.0, 0.0, false))
        .collect();
    let mut method_totals: Vec<MethodTotal> = Vec::new();
    for (key, old_record) in &old_records {
        let Some((_, new_record)) = new_records.iter().find(|(k, _)| k == key) else {
            if new_failed.contains(key) {
                problems.push(Problem::Failed(key.clone()));
            } else {
                problems.push(Problem::Missing(key.clone()));
            }
            continue;
        };
        for (counter, old_sum, new_sum, seen) in
            improvements.iter_mut().chain(no_regressions.iter_mut())
        {
            if let (Some(old), Some(new)) = (
                counter_value(old_record, counter),
                counter_value(new_record, counter),
            ) {
                *old_sum += old;
                *new_sum += new;
                *seen = true;
            }
        }
        for counter in COUNTERS {
            if options.ignore.iter().any(|i| i == counter) {
                continue;
            }
            // A counter absent on either side is skipped: reports from
            // before the column existed stay comparable.
            let (Some(old), Some(new)) = (
                counter_value(old_record, counter),
                counter_value(new_record, counter),
            ) else {
                continue;
            };
            if options.totals {
                // Defer to the per-method aggregate comparison below.
                let slot = (key.0.clone(), counter);
                match method_totals.iter_mut().find(|(k, _)| *k == slot) {
                    Some((_, sums)) => {
                        sums.0 += old;
                        sums.1 += new;
                    }
                    None => method_totals.push((slot, (old, new))),
                }
                continue;
            }
            if options.exact {
                if new != old {
                    problems.push(Problem::Drift(key.clone(), counter, old, new));
                }
            } else if old > 0.0 && new > old * (1.0 + options.threshold) {
                problems.push(Problem::Regression(key.clone(), counter, old, new));
            } else if old == 0.0 && new > 0.0 {
                problems.push(Problem::FromZero(key.clone(), counter, new));
            }
        }
        // Per-phase counters (present when both reports came from a traced
        // run): drift in either direction is worth a warning, since they are
        // deterministic by the tracing contract.
        let new_phases = phase_counters(new_record);
        for (name, old) in phase_counters(old_record) {
            let Some(&(_, new)) = new_phases.iter().find(|(n, _)| *n == name) else {
                continue;
            };
            if old > 0.0 && (new - old).abs() > old * options.threshold {
                problems.push(Problem::PhaseDrift(key.clone(), name.to_string(), old, new));
            }
        }
    }
    // Per-method aggregate comparison (`--totals`): same thresholds and
    // exactness rules as the per-record path, applied to the sums, keyed as
    // `method/total`.
    for ((method, counter), (old, new)) in method_totals {
        let key = (method, "total".to_string());
        if options.exact {
            if new != old {
                problems.push(Problem::Drift(key, counter, old, new));
            }
        } else if old > 0.0 && new > old * (1.0 + options.threshold) {
            problems.push(Problem::Regression(key, counter, old, new));
        } else if old == 0.0 && new > 0.0 {
            problems.push(Problem::FromZero(key, counter, new));
        }
    }
    // A counter never seen on any paired record also fails: a typo'd
    // `--require-improvement` name must not pass silently.
    for (counter, old_sum, new_sum, seen) in improvements {
        if !seen || new_sum >= old_sum {
            problems.push(Problem::NotImproved(counter.to_string(), old_sum, new_sum));
        }
    }
    for (counter, old_sum, new_sum, seen) in no_regressions {
        if !seen || new_sum > old_sum {
            problems.push(Problem::TotalRegressed(
                counter.to_string(),
                old_sum,
                new_sum,
            ));
        }
    }
    Ok(problems)
}

/// One `--format table` row: every counter (report-level and per-phase)
/// present on both sides of a record pair, with its old/new values.
fn comparison_rows(baseline: &JsonValue, new: &JsonValue) -> Result<Vec<[String; 5]>, String> {
    let (old_records, _) = records_by_key(baseline)?;
    let (new_records, _) = records_by_key(new)?;
    let mut rows = Vec::new();
    for (key, old_record) in &old_records {
        let Some((_, new_record)) = new_records.iter().find(|(k, _)| k == key) else {
            continue;
        };
        let mut push = |counter: &str, old: f64, new: f64| {
            let delta = if old == 0.0 && new == 0.0 {
                "0.0%".to_string()
            } else if old == 0.0 {
                "n/a".to_string()
            } else {
                format!("{:+.1}%", 100.0 * (new - old) / old)
            };
            rows.push([
                key.0.clone(),
                key.1.clone(),
                counter.to_string(),
                format!("{old} -> {new}"),
                delta,
            ]);
        };
        for counter in COUNTERS {
            if let (Some(old), Some(new)) = (
                counter_value(old_record, counter),
                counter_value(new_record, counter),
            ) {
                push(counter, old, new);
            }
        }
        let new_phases = phase_counters(new_record);
        for (name, old) in phase_counters(old_record) {
            if let Some(&(_, new)) = new_phases.iter().find(|(n, _)| *n == name) {
                push(&format!("phase {name}"), old, new);
            }
        }
    }
    Ok(rows)
}

/// Renders rows as an aligned table with a header.
fn render_table(rows: &[[String; 5]]) -> String {
    const HEADER: [&str; 5] = ["method", "case", "counter", "old -> new", "delta"];
    let mut widths = HEADER.map(str::len);
    for row in rows {
        for (width, cell) in widths.iter_mut().zip(row) {
            *width = (*width).max(cell.len());
        }
    }
    let mut out = String::new();
    let mut emit = |cells: [&str; 5]| {
        for (i, (cell, width)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            if i + 1 < cells.len() {
                out.push_str(&" ".repeat(width - cell.len()));
            }
        }
        out.push('\n');
    };
    emit(HEADER);
    for row in rows {
        emit([&row[0], &row[1], &row[2], &row[3], &row[4]]);
    }
    out
}

/// Reads and parses one report, failing with the path (and, for corrupt
/// JSON, the 1-based line:column) in the message — a missing or truncated
/// committed baseline must be a clear exit-2 diagnostic, never a panic or a
/// bare byte offset.
fn load_report(path: &str) -> Result<JsonValue, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read report `{path}`: {e}"))?;
    let report = JsonValue::parse(&text)
        .map_err(|e| format!("{path}:{}:{}: invalid JSON: {}", e.line, e.col, e.message))?;
    // Reject structurally wrong documents up front so every later error can
    // assume a well-formed report.
    records_by_key(&report).map_err(|e| format!("{path}: not a bench report: {e}"))?;
    Ok(report)
}

fn run(args: &[String]) -> Result<(Vec<Problem>, Option<String>), String> {
    let mut paths = Vec::new();
    let mut options = DiffOptions {
        threshold: 0.25,
        ..DiffOptions::default()
    };
    let mut table = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = iter.next().ok_or("missing value after --threshold")?;
                options.threshold = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("invalid --threshold value `{v}`"))?;
            }
            "--ignore" => {
                let v = iter.next().ok_or("missing value after --ignore")?;
                options.ignore.push(v.clone());
            }
            "--require-improvement" => {
                let v = iter
                    .next()
                    .ok_or("missing value after --require-improvement")?;
                if !COUNTERS.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown --require-improvement counter `{v}`; one of: {}",
                        COUNTERS.join(", ")
                    ));
                }
                options.require_improvement.push(v.clone());
            }
            "--require-no-regression" => {
                let v = iter
                    .next()
                    .ok_or("missing value after --require-no-regression")?;
                if !COUNTERS.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown --require-no-regression counter `{v}`; one of: {}",
                        COUNTERS.join(", ")
                    ));
                }
                options.require_no_regression.push(v.clone());
            }
            "--totals" => options.totals = true,
            "--exact" => options.exact = true,
            "--format" => {
                let v = iter.next().ok_or("missing value after --format")?;
                table = match v.as_str() {
                    "table" => true,
                    "lines" => false,
                    _ => return Err(format!("unknown format `{v}` (lines or table)")),
                };
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, new_path] = paths.as_slice() else {
        return Err(USAGE.to_string());
    };
    let baseline = load_report(baseline_path)?;
    let new = load_report(new_path)?;
    let problems = diff_reports(&baseline, &new, &options)?;
    let rendered_table = if table {
        Some(render_table(&comparison_rows(&baseline, &new)?))
    } else {
        None
    };
    Ok((problems, rendered_table))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
        Ok((problems, table)) => {
            if let Some(table) = table {
                print!("{table}");
            }
            let fatal = problems.iter().filter(|p| p.is_fatal()).count();
            for problem in &problems {
                println!("{}", problem.render());
            }
            if fatal > 0 {
                println!("bench-diff: {fatal} regression(s)");
                ExitCode::from(1)
            } else {
                println!("bench-diff: ok");
                ExitCode::SUCCESS
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type RecordSpec<'a> = (&'a str, &'a str, &'a str, &'a [(&'a str, f64)]);

    /// Plain threshold-only options, the shape of most tests.
    fn opts(threshold: f64) -> DiffOptions {
        DiffOptions {
            threshold,
            ..DiffOptions::default()
        }
    }

    fn report(records: &[RecordSpec]) -> JsonValue {
        JsonValue::Object(vec![(
            "records".to_string(),
            JsonValue::Array(
                records
                    .iter()
                    .map(|(method, case, status, counters)| {
                        let mut entries = vec![
                            ("method".to_string(), JsonValue::str(*method)),
                            ("case".to_string(), JsonValue::str(*case)),
                            ("status".to_string(), JsonValue::str(*status)),
                        ];
                        for (name, value) in *counters {
                            entries.push((name.to_string(), JsonValue::Float(*value)));
                        }
                        JsonValue::Object(entries)
                    })
                    .collect(),
            ),
        )])
    }

    #[test]
    fn identical_reports_are_clean() {
        let r = report(&[("mrtpl", "t1", "ok", &[("conflicts", 3.0), ("cost", 100.0)])]);
        assert_eq!(diff_reports(&r, &r, &opts(0.25)).unwrap(), vec![]);
    }

    #[test]
    fn small_drift_passes_large_drift_fails() {
        let old = report(&[("mrtpl", "t1", "ok", &[("search_nodes", 1000.0)])]);
        let ok = report(&[("mrtpl", "t1", "ok", &[("search_nodes", 1200.0)])]);
        assert_eq!(diff_reports(&old, &ok, &opts(0.25)).unwrap(), vec![]);
        let bad = report(&[("mrtpl", "t1", "ok", &[("search_nodes", 1300.0)])]);
        let problems = diff_reports(&old, &bad, &opts(0.25)).unwrap();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].is_fatal());
        assert!(problems[0].render().contains("search_nodes 1000 -> 1300"));
    }

    #[test]
    fn improvements_never_fail() {
        let old = report(&[("mrtpl", "t1", "ok", &[("cost", 100.0), ("vias", 50.0)])]);
        let new = report(&[("mrtpl", "t1", "ok", &[("cost", 10.0), ("vias", 5.0)])]);
        assert_eq!(diff_reports(&old, &new, &opts(0.25)).unwrap(), vec![]);
    }

    #[test]
    fn zero_to_positive_warns_without_failing() {
        let old = report(&[("mrtpl", "t1", "ok", &[("conflicts", 0.0)])]);
        let new = report(&[("mrtpl", "t1", "ok", &[("conflicts", 2.0)])]);
        let problems = diff_reports(&old, &new, &opts(0.25)).unwrap();
        assert_eq!(problems.len(), 1);
        assert!(!problems[0].is_fatal());
        assert!(problems[0].render().starts_with("warning"));
    }

    #[test]
    fn missing_and_failed_records_are_fatal() {
        let old = report(&[
            ("mrtpl", "t1", "ok", &[]),
            ("mrtpl", "t2", "ok", &[]),
            ("dac12", "t1", "ok", &[]),
        ]);
        let new = report(&[("mrtpl", "t1", "ok", &[]), ("mrtpl", "t2", "failed", &[])]);
        let problems = diff_reports(&old, &new, &opts(0.25)).unwrap();
        assert_eq!(problems.len(), 2);
        assert!(problems.iter().all(Problem::is_fatal));
        assert!(problems[0].render().contains("FAILED mrtpl/t2"));
        assert!(problems[1].render().contains("MISSING dac12/t1"));
    }

    #[test]
    fn counters_absent_on_either_side_are_skipped() {
        let old = report(&[("mrtpl", "t1", "ok", &[("conflicts", 1.0)])]);
        let new = report(&[("mrtpl", "t1", "ok", &[("wirelength", 9999.0)])]);
        assert_eq!(diff_reports(&old, &new, &opts(0.25)).unwrap(), vec![]);
    }

    /// Externally-ingested cases report `rrr_iterations: null` (their flow
    /// has no rip-up-and-reroute loop); a `null` counter must behave exactly
    /// like an absent one on either side of the diff.
    #[test]
    fn null_counters_of_ingested_cases_are_treated_as_absent() {
        let with_null = |counters: &[(&str, f64)]| {
            let JsonValue::Object(mut entries) = report(&[("mrtpl", "ingested", "ok", counters)])
            else {
                unreachable!("report() builds an object");
            };
            let JsonValue::Array(records) = &mut entries[0].1 else {
                unreachable!("records is an array");
            };
            let JsonValue::Object(record) = &mut records[0] else {
                unreachable!("record is an object");
            };
            record.push(("rrr_iterations".to_string(), JsonValue::Null));
            JsonValue::Object(entries)
        };
        // null on both sides, null vs absent, and absent vs null: all clean,
        // while a real counter alongside still fails.
        let old_null = with_null(&[("conflicts", 1.0)]);
        let new_null = with_null(&[("conflicts", 1.0)]);
        assert_eq!(
            diff_reports(&old_null, &new_null, &opts(0.25)).unwrap(),
            vec![]
        );
        let plain = report(&[("mrtpl", "ingested", "ok", &[("conflicts", 1.0)])]);
        assert_eq!(
            diff_reports(&old_null, &plain, &opts(0.25)).unwrap(),
            vec![]
        );
        assert_eq!(
            diff_reports(&plain, &new_null, &opts(0.25)).unwrap(),
            vec![]
        );
        let worse = with_null(&[("conflicts", 9.0)]);
        let problems = diff_reports(&old_null, &worse, &opts(0.25)).unwrap();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].render().contains("conflicts 1 -> 9"));
    }

    /// A report whose single record also carries a `phases` block with the
    /// given per-phase counters.
    fn traced_report(counters: &[(&str, f64)], phases: &[(&str, f64)]) -> JsonValue {
        let JsonValue::Object(mut entries) = report(&[("mrtpl", "t1", "ok", counters)]) else {
            unreachable!("report() builds an object");
        };
        let JsonValue::Array(records) = &mut entries[0].1 else {
            unreachable!("records is an array");
        };
        let JsonValue::Object(record) = &mut records[0] else {
            unreachable!("record is an object");
        };
        record.push((
            "phases".to_string(),
            JsonValue::Object(vec![(
                "counters".to_string(),
                JsonValue::Object(
                    phases
                        .iter()
                        .map(|(n, v)| (n.to_string(), JsonValue::Float(*v)))
                        .collect(),
                ),
            )]),
        ));
        JsonValue::Object(entries)
    }

    #[test]
    fn phase_counter_drift_warns_in_both_directions_without_failing() {
        let old = traced_report(&[], &[("core.search_nodes", 1000.0)]);
        for (new_value, drifts) in [(1200.0, false), (1300.0, true), (700.0, true)] {
            let new = traced_report(&[], &[("core.search_nodes", new_value)]);
            let problems = diff_reports(&old, &new, &opts(0.25)).unwrap();
            assert_eq!(problems.len(), usize::from(drifts), "value {new_value}");
            if drifts {
                assert!(!problems[0].is_fatal());
                assert!(problems[0].render().contains("phase core.search_nodes"));
            }
        }
        // Phases on one side only: nothing to compare, nothing reported.
        let untraced = report(&[("mrtpl", "t1", "ok", &[])]);
        assert_eq!(diff_reports(&old, &untraced, &opts(0.25)).unwrap(), vec![]);
    }

    #[test]
    fn table_format_lists_report_and_phase_counters() {
        let old = traced_report(&[("conflicts", 4.0)], &[("core.search_nodes", 100.0)]);
        let new = traced_report(&[("conflicts", 2.0)], &[("core.search_nodes", 110.0)]);
        let rows = comparison_rows(&old, &new).unwrap();
        assert_eq!(rows.len(), 2);
        let table = render_table(&rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].contains("conflicts"));
        assert!(lines[1].contains("4 -> 2"));
        assert!(lines[1].contains("-50.0%"));
        assert!(lines[2].contains("phase core.search_nodes"));
        assert!(lines[2].contains("+10.0%"));
        // Columns align: every "old -> new" cell starts at the same offset.
        let offset = lines[0].find("old -> new").unwrap();
        assert_eq!(lines[1].find("4 -> 2"), Some(offset));
    }

    #[test]
    fn require_improvement_needs_a_strictly_smaller_total() {
        let old = report(&[
            ("mrtpl", "t1", "ok", &[("search_nodes", 1000.0)]),
            ("mrtpl", "t2", "ok", &[("search_nodes", 2000.0)]),
        ]);
        let options = DiffOptions {
            threshold: 0.25,
            require_improvement: vec!["search_nodes".to_string()],
            ..DiffOptions::default()
        };
        // Strictly smaller total (even with one record up): passes.
        let better = report(&[
            ("mrtpl", "t1", "ok", &[("search_nodes", 1100.0)]),
            ("mrtpl", "t2", "ok", &[("search_nodes", 800.0)]),
        ]);
        assert_eq!(diff_reports(&old, &better, &options).unwrap(), vec![]);
        // Identical total: fails (the improvement must be strict).
        let problems = diff_reports(&old, &old, &options).unwrap();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].is_fatal());
        assert!(problems[0]
            .render()
            .contains("NOT IMPROVED: total search_nodes 3000 -> 3000"));
        // Larger total: fails alongside the per-record regression check.
        let worse = report(&[
            ("mrtpl", "t1", "ok", &[("search_nodes", 1000.0)]),
            ("mrtpl", "t2", "ok", &[("search_nodes", 2001.0)]),
        ]);
        let problems = diff_reports(&old, &worse, &options).unwrap();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].render().contains("NOT IMPROVED"));
    }

    #[test]
    fn require_no_regression_allows_equal_totals_but_not_growth() {
        let old = report(&[
            ("mrtpl", "t1", "ok", &[("conflicts", 10.0)]),
            ("mrtpl", "t2", "ok", &[("conflicts", 20.0)]),
        ]);
        let options = DiffOptions {
            threshold: 0.25,
            require_no_regression: vec!["conflicts".to_string()],
            ..DiffOptions::default()
        };
        // Identical total: passes (unlike --require-improvement).
        assert_eq!(diff_reports(&old, &old, &options).unwrap(), vec![]);
        // Cases trading against each other with equal total: passes.
        let traded = report(&[
            ("mrtpl", "t1", "ok", &[("conflicts", 12.0)]),
            ("mrtpl", "t2", "ok", &[("conflicts", 18.0)]),
        ]);
        assert_eq!(diff_reports(&old, &traded, &options).unwrap(), vec![]);
        // Any growth of the total: fails.
        let worse = report(&[
            ("mrtpl", "t1", "ok", &[("conflicts", 10.0)]),
            ("mrtpl", "t2", "ok", &[("conflicts", 21.0)]),
        ]);
        let problems = diff_reports(&old, &worse, &options).unwrap();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].is_fatal());
        assert!(problems[0]
            .render()
            .contains("REGRESSED: total conflicts 30 -> 31"));
        // An unseen counter fails rather than passing silently.
        let unseen = DiffOptions {
            require_no_regression: vec!["vias".to_string()],
            ..options
        };
        let problems = diff_reports(&old, &old, &unseen).unwrap();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].render().contains("REGRESSED: total vias"));
    }

    #[test]
    fn totals_mode_compares_per_method_sums_not_cases() {
        // t1 doubles (a per-case regression) while t2 shrinks: per-case
        // mode fails, totals mode passes because the sum improved.
        let old = report(&[
            ("mrtpl", "t1", "ok", &[("conflicts", 10.0)]),
            ("mrtpl", "t2", "ok", &[("conflicts", 100.0)]),
        ]);
        let new = report(&[
            ("mrtpl", "t1", "ok", &[("conflicts", 20.0)]),
            ("mrtpl", "t2", "ok", &[("conflicts", 50.0)]),
        ]);
        assert_eq!(diff_reports(&old, &new, &opts(0.25)).unwrap().len(), 1);
        let totals = DiffOptions {
            threshold: 0.25,
            totals: true,
            ..DiffOptions::default()
        };
        assert_eq!(diff_reports(&old, &new, &totals).unwrap(), vec![]);
        // A regression of the method total past the threshold still fails,
        // keyed as `method/total`.
        let worse = report(&[
            ("mrtpl", "t1", "ok", &[("conflicts", 40.0)]),
            ("mrtpl", "t2", "ok", &[("conflicts", 100.0)]),
        ]);
        let problems = diff_reports(&old, &worse, &totals).unwrap();
        assert_eq!(problems.len(), 1);
        assert!(problems[0]
            .render()
            .contains("REGRESSION mrtpl/total: conflicts 110 -> 140"));
        // Methods are aggregated separately: a different method's totals do
        // not absorb this one's regression.
        let two_methods_old = report(&[
            ("mrtpl", "t1", "ok", &[("conflicts", 10.0)]),
            ("dac12", "t1", "ok", &[("conflicts", 100.0)]),
        ]);
        let two_methods_new = report(&[
            ("mrtpl", "t1", "ok", &[("conflicts", 20.0)]),
            ("dac12", "t1", "ok", &[("conflicts", 10.0)]),
        ]);
        let problems = diff_reports(&two_methods_old, &two_methods_new, &totals).unwrap();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].render().contains("REGRESSION mrtpl/total"));
    }

    #[test]
    fn require_improvement_of_an_unseen_counter_fails() {
        let old = report(&[("mrtpl", "t1", "ok", &[("conflicts", 1.0)])]);
        let options = DiffOptions {
            threshold: 0.25,
            require_improvement: vec!["search_nodes".to_string()],
            ..DiffOptions::default()
        };
        let problems = diff_reports(&old, &old, &options).unwrap();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].render().contains("NOT IMPROVED"));
    }

    #[test]
    fn ignored_counters_never_regress() {
        let old = report(&[("mrtpl", "t1", "ok", &[("search_nodes", 100.0)])]);
        let worse = report(&[("mrtpl", "t1", "ok", &[("search_nodes", 900.0)])]);
        assert_eq!(diff_reports(&old, &worse, &opts(0.25)).unwrap().len(), 1);
        let options = DiffOptions {
            threshold: 0.25,
            ignore: vec!["search_nodes".to_string()],
            ..DiffOptions::default()
        };
        assert_eq!(diff_reports(&old, &worse, &options).unwrap(), vec![]);
    }

    #[test]
    fn exact_mode_flags_any_drift_even_improvements() {
        let old = report(&[("mrtpl", "t1", "ok", &[("cost", 100.0), ("vias", 50.0)])]);
        let options = DiffOptions {
            threshold: 0.25,
            exact: true,
            ..DiffOptions::default()
        };
        assert_eq!(diff_reports(&old, &old, &options).unwrap(), vec![]);
        // An improvement would pass the threshold check but fails --exact.
        let improved = report(&[("mrtpl", "t1", "ok", &[("cost", 90.0), ("vias", 50.0)])]);
        let problems = diff_reports(&old, &improved, &options).unwrap();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].is_fatal());
        assert!(problems[0]
            .render()
            .contains("DRIFT mrtpl/t1: cost 100 -> 90"));
        // --ignore still applies under --exact.
        let ignoring = DiffOptions {
            ignore: vec!["cost".to_string()],
            ..options
        };
        assert_eq!(diff_reports(&old, &improved, &ignoring).unwrap(), vec![]);
    }

    #[test]
    fn run_rejects_an_unknown_improvement_counter() {
        let err = run(&[
            "a.json".to_string(),
            "b.json".to_string(),
            "--require-improvement".to_string(),
            "runtime_seconds".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown --require-improvement"));
        assert!(err.contains("search_nodes"));
    }

    /// A scratch file deleted on drop, so baseline-loading tests can feed
    /// `run` real paths without leaving droppings behind.
    struct ScratchFile(std::path::PathBuf);

    impl ScratchFile {
        fn new(name: &str, contents: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("bench_diff_{}_{name}", std::process::id()));
            std::fs::write(&path, contents).expect("write scratch report");
            ScratchFile(path)
        }

        fn path(&self) -> String {
            self.0.display().to_string()
        }
    }

    impl Drop for ScratchFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn a_missing_baseline_is_a_clear_error_with_the_path() {
        let missing = "/nonexistent/BENCH_none.json";
        let err = run(&[missing.to_string(), missing.to_string()]).unwrap_err();
        assert!(err.contains("cannot read report"), "{err}");
        assert!(err.contains(missing), "{err}");
    }

    #[test]
    fn a_corrupt_baseline_is_a_positioned_error_not_a_panic() {
        // A truncated BENCH_*.json, as a botched merge would leave it.
        let corrupt = ScratchFile::new("corrupt.json", "{\n  \"records\": [\n    {\"method\": }\n");
        let good = ScratchFile::new("good.json", &report(&[]).render());
        let err = run(&[corrupt.path(), good.path()]).unwrap_err();
        assert!(err.contains(&corrupt.path()), "{err}");
        assert!(err.contains(":3:"), "no line:col position: {err}");
        assert!(err.contains("invalid JSON"), "{err}");
        // Same diagnostic when the corrupt file is the new report.
        let err = run(&[good.path(), corrupt.path()]).unwrap_err();
        assert!(err.contains(&corrupt.path()), "{err}");
    }

    #[test]
    fn a_baseline_that_is_not_a_report_names_the_path_and_problem() {
        let not_report = ScratchFile::new("not_report.json", "{\"totals\": {}}\n");
        let err = run(&[not_report.path(), not_report.path()]).unwrap_err();
        assert!(err.contains(&not_report.path()), "{err}");
        assert!(err.contains("no `records` array"), "{err}");
    }

    #[test]
    fn run_rejects_bad_usage() {
        assert!(run(&[]).is_err());
        assert!(run(&["a.json".to_string()]).is_err());
        assert!(run(&[
            "a.json".to_string(),
            "b.json".to_string(),
            "--threshold".to_string(),
            "nope".to_string(),
        ])
        .is_err());
        assert!(run(&[
            "a.json".to_string(),
            "b.json".to_string(),
            "--format".to_string(),
            "xml".to_string(),
        ])
        .is_err());
    }
}
